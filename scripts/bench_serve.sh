#!/usr/bin/env bash
# Serving-path benchmark: start the always-on daemon on an ephemeral
# port, drive it with the seeded closed-loop load generator, and write
# the measured QPS, latency percentiles, and conditional-GET (304) hit
# rate to BENCH_SERVE.json (schema: docs/SERVING.md).
#
#   scripts/bench_serve.sh                      # scale 0.05, 4 clients x 2000
#   SERVE_SCALE=0.25 scripts/bench_serve.sh     # bigger corpus behind the daemon
#   SERVE_CLIENTS=8 SERVE_REQUESTS=5000 scripts/bench_serve.sh
#
# The request mix and per-client seeds are fixed, so everything except
# the wall times and rates is deterministic; compare BENCH_SERVE.json
# across commits for serving-path regressions. The daemon is always
# shut down through its own POST /shutdown endpoint so the run also
# exercises the closing-checkpoint flush.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SERVE_SCALE:-0.05}"
CLIENTS="${SERVE_CLIENTS:-4}"
REQUESTS="${SERVE_REQUESTS:-2000}"
WORKERS="${SERVE_WORKERS:-4}"
OUT="${SERVE_JSON:-BENCH_SERVE.json}"

echo "==> bench_serve: building release binary"
cargo build --release -q -p donorpulse-bench --bin repro

SERVE_LOG="$(mktemp)"
SERVE_PID=""
cleanup() {
  if [ -n "${SERVE_PID}" ] && kill -0 "${SERVE_PID}" 2> /dev/null; then
    kill "${SERVE_PID}" 2> /dev/null || true
  fi
  rm -f "${SERVE_LOG}"
}
trap cleanup EXIT

echo "==> bench_serve: starting daemon (scale ${SCALE}, ${WORKERS} workers)"
./target/release/repro --scale "${SCALE}" serve --port 0 --workers "${WORKERS}" \
  > "${SERVE_LOG}" 2> /dev/null &
SERVE_PID="$!"

# The daemon prints one flushed "SERVING http://ADDR" line once bound.
ADDR=""
for _ in $(seq 1 600); do
  ADDR="$(sed -n 's|^SERVING http://||p' "${SERVE_LOG}" | head -n 1)"
  [ -n "${ADDR}" ] && break
  if ! kill -0 "${SERVE_PID}" 2> /dev/null; then
    cat "${SERVE_LOG}" >&2
    echo "bench_serve: daemon exited before binding" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "${ADDR}" ]; then
  echo "bench_serve: daemon never printed its SERVING line" >&2
  exit 1
fi
echo "==> bench_serve: daemon at ${ADDR}"

echo "==> bench_serve: ${CLIENTS} clients x ${REQUESTS} requests"
./target/release/repro loadgen --addr "${ADDR}" \
  --clients "${CLIENTS}" --requests "${REQUESTS}" --json "${OUT}"

echo "==> bench_serve: shutting the daemon down"
./target/release/repro http-get --addr "${ADDR}" --path /shutdown --post > /dev/null
wait "${SERVE_PID}"
SERVE_PID=""

# Surface the daemon's own accounting next to the loadgen numbers.
sed -n '/^SERVE CLOSED$/,$p' "${SERVE_LOG}"
echo "==> bench_serve: wrote ${OUT}"
