#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests) plus the strict
# documentation build. CI and pre-merge checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --workspace --release

echo "==> tier-1: tests"
cargo test --workspace -q

echo "==> docs: rustdoc with warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "verify: OK"
