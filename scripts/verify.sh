#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests) plus the strict
# documentation build. CI and pre-merge checks run exactly this.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> tier-1: release build"
cargo build --workspace --release

echo "==> tier-1: tests"
cargo test --workspace -q

echo "==> determinism: compute_threads 1 vs 4 artifact diff"
# The analytics back-half promises bit-identical artifacts for any
# thread count (docs/PERFORMANCE.md); diff the full serialized report
# (Table I through Fig 7, including both clustering artifacts) between
# a serial and a 4-worker run to hold it to that.
DET_TMP="$(mktemp -d)"
trap 'rm -rf "${DET_TMP}"' EXIT
./target/release/repro --scale 0.05 --threads 1 --json "${DET_TMP}/report_t1.json" all > /dev/null
./target/release/repro --scale 0.05 --threads 4 --json "${DET_TMP}/report_t4.json" all > /dev/null
diff "${DET_TMP}/report_t1.json" "${DET_TMP}/report_t4.json" \
  || { echo "verify: artifacts differ between compute_threads=1 and 4" >&2; exit 1; }

echo "==> docs: rustdoc with warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "verify: OK"
