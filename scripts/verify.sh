#!/usr/bin/env bash
# Full verification gate: tier-1 (build + tests), determinism diffs,
# and the strict documentation build. CI and pre-merge checks run
# exactly this, non-interactively; the last line is always a
# machine-readable "VERIFY RESULT: PASS|FAIL|SKIP (...)" verdict and
# the exit code matches it (nonzero on FAIL).
set -euo pipefail
cd "$(dirname "$0")/.."

fail() {
  echo "verify: $*" >&2
  echo "VERIFY RESULT: FAIL ($*)"
  exit 1
}

# Sandboxed/offline environments without a registry mirror cannot
# resolve path-less dependencies; skip with a notice instead of
# reporting a spurious failure.
if ! cargo metadata --format-version 1 --locked > /dev/null 2>&1 \
  && ! cargo metadata --format-version 1 > /dev/null 2>&1; then
  echo "verify: crates.io registry unavailable; cannot build" >&2
  echo "VERIFY RESULT: SKIP (registry unavailable)"
  exit 0
fi

echo "==> tier-1: release build"
cargo build --workspace --release || fail "release build failed"

echo "==> tier-1: tests"
cargo test --workspace -q || fail "tests failed"

echo "==> wire codec: conformance + corruption sweep"
# Redundant with the workspace test run, but called out as its own
# gate: every single-bit flip and truncation point of the reference
# frames must classify, never decode wrong or panic, and the golden
# vectors must pin the encoder byte for byte (docs/ROBUSTNESS.md).
cargo test -q --test wire_codec || fail "wire codec conformance suite failed"

DET_TMP="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  if [ -n "${SERVE_PID}" ] && kill -0 "${SERVE_PID}" 2> /dev/null; then
    kill "${SERVE_PID}" 2> /dev/null || true
  fi
  rm -rf "${DET_TMP}"
}
trap cleanup EXIT

echo "==> determinism: compute_threads 1 vs 4 artifact diff"
# The analytics back-half promises bit-identical artifacts for any
# thread count (docs/PERFORMANCE.md); diff the full serialized report
# (Table I through Fig 7, including both clustering artifacts) between
# a serial and a 4-worker run to hold it to that.
./target/release/repro --scale 0.05 --threads 1 --json "${DET_TMP}/report_t1.json" all > /dev/null
./target/release/repro --scale 0.05 --threads 4 --json "${DET_TMP}/report_t4.json" all > /dev/null
diff "${DET_TMP}/report_t1.json" "${DET_TMP}/report_t4.json" \
  || fail "artifacts differ between compute_threads=1 and 4"

echo "==> resilience: clean vs recovered-faults stream snapshot diff"
# The streaming front-half promises byte-identical sensor artifacts
# when every injected fault is recoverable (docs/ROBUSTNESS.md). The
# stream subcommand also self-checks against the batch pipeline and
# exits nonzero on any divergence or unaccounted coverage gap.
./target/release/repro --scale 0.05 stream --faults off \
  > "${DET_TMP}/stream_clean.txt" 2> /dev/null \
  || fail "clean stream run failed"
./target/release/repro --scale 0.05 stream --faults recoverable \
  > "${DET_TMP}/stream_recovered.txt" 2> /dev/null \
  || fail "recovered-faults stream run failed"
diff "${DET_TMP}/stream_clean.txt" "${DET_TMP}/stream_recovered.txt" \
  || fail "stream snapshot differs between clean and recovered-faults runs"

echo "==> sharding: merged artifacts vs single-consumer stream"
# The consumer group promises snapshots byte-identical to the
# single-sensor run for every shard count, including 0 = auto
# (docs/SCALING.md). The recovered-faults snapshot from the previous
# gate is the reference.
for n in 1 2 4 0; do
  ./target/release/repro --scale 0.05 stream --faults recoverable --shards "${n}" \
    > "${DET_TMP}/stream_shards_${n}.txt" 2> /dev/null \
    || fail "sharded stream run (shards=${n}) failed"
  diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_shards_${n}.txt" \
    || fail "sharded snapshot (shards=${n}) differs from single-consumer run"
done

echo "==> wire v2: byte-identical artifacts across wire modes"
# The v2 batched frames and the zero-copy borrowed decode must be
# invisible in the artifacts: the stream snapshot on stdout is required
# to be byte-identical to the v1 wire for every fault preset, and
# through the consumer group for every shard count
# (docs/ARCHITECTURE.md). v1 references for the presets the earlier
# gates did not keep:
for f in lossy geo-outage; do
  ./target/release/repro --scale 0.05 stream --faults "${f}" --wire v1 \
    > "${DET_TMP}/stream_${f}_v1.txt" 2> /dev/null \
    || fail "stream run (faults=${f}, wire=v1) failed"
done
cp "${DET_TMP}/stream_clean.txt" "${DET_TMP}/stream_off_v1.txt"
cp "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_recoverable_v1.txt"
for w in v2 v2-borrowed; do
  for f in off recoverable lossy geo-outage; do
    ./target/release/repro --scale 0.05 stream --faults "${f}" --wire "${w}" \
      > "${DET_TMP}/stream_${f}_${w}.txt" 2> /dev/null \
      || fail "stream run (faults=${f}, wire=${w}) failed"
    diff "${DET_TMP}/stream_${f}_v1.txt" "${DET_TMP}/stream_${f}_${w}.txt" \
      || fail "wire=${w} snapshot differs from v1 (faults=${f})"
  done
  for n in 1 2 4; do
    ./target/release/repro --scale 0.05 stream --faults recoverable \
      --shards "${n}" --wire "${w}" \
      > "${DET_TMP}/stream_shards_${n}_${w}.txt" 2> /dev/null \
      || fail "sharded stream run (shards=${n}, wire=${w}) failed"
    diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_shards_${n}_${w}.txt" \
      || fail "wire=${w} sharded snapshot (shards=${n}) differs from v1"
  done
done

echo "==> sharding: kill + resume reproduces the uninterrupted snapshot"
# Crash the router mid-run, then resume from the newest complete
# checkpoint epoch; the finished run must print the exact snapshot the
# uninterrupted run printed. Retention is on (keep 1 complete epoch),
# so the store must also stay compact through the crash and the resume.
./target/release/repro --scale 0.05 stream --faults recoverable --shards 2 \
  --checkpoint-dir "${DET_TMP}/ckpt" --checkpoint-every 512 --kill-after 2000 \
  --checkpoint-retain 1 \
  > /dev/null 2> /dev/null \
  || fail "killed sharded run failed"
./target/release/repro --scale 0.05 stream --faults recoverable --shards 2 \
  --checkpoint-dir "${DET_TMP}/ckpt" --resume --checkpoint-retain 1 \
  > "${DET_TMP}/stream_resumed.txt" 2> /dev/null \
  || fail "resumed sharded run failed"
diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_resumed.txt" \
  || fail "resumed snapshot differs from the uninterrupted run"
CKPT_FILES="$(ls "${DET_TMP}/ckpt" | wc -l)"
# 2 shards x 1 retained complete epoch, plus at most one in-flight
# partial epoch per shard.
[ "${CKPT_FILES}" -le 4 ] \
  || fail "checkpoint retention left ${CKPT_FILES} files (expected <= 4)"

echo "==> dead letters: geo-outage replay restores clean coverage"
# A permanent geocoding outage abandons intact tweets into the
# dead-letter log; replaying that log through the sensor must restore
# the clean batch artifacts exactly (the verb exits nonzero otherwise).
./target/release/repro --scale 0.05 stream --faults geo-outage \
  --dead-letter-dir "${DET_TMP}/dl" \
  > /dev/null 2> /dev/null \
  || fail "geo-outage stream run failed"
./target/release/repro --scale 0.05 replay-dead-letters --faults geo-outage \
  --dead-letter-dir "${DET_TMP}/dl" \
  > "${DET_TMP}/replay.txt" 2> /dev/null \
  || fail "dead-letter replay failed"
grep -q "coverage restored       yes" "${DET_TMP}/replay.txt" \
  || fail "dead-letter replay did not restore clean coverage"
# The same contract holds for a degraded consumer group: per-shard
# flaky schedules make the sharded run reconstructible, so its log
# replays to clean coverage too (docs/ROBUSTNESS.md).
./target/release/repro --scale 0.05 stream --faults geo-outage --shards 2 \
  --dead-letter-dir "${DET_TMP}/dl_sharded" \
  > /dev/null 2> /dev/null \
  || fail "sharded geo-outage stream run failed"
./target/release/repro --scale 0.05 replay-dead-letters --faults geo-outage --shards 2 \
  --dead-letter-dir "${DET_TMP}/dl_sharded" \
  > "${DET_TMP}/replay_sharded.txt" 2> /dev/null \
  || fail "sharded dead-letter replay failed"
grep -q "coverage restored       yes" "${DET_TMP}/replay_sharded.txt" \
  || fail "sharded dead-letter replay did not restore clean coverage"

echo "==> procgroup: N processes byte-identical to N threads (and to 1 sensor)"
# The cross-process consumer group (router + supervised shard-worker
# processes over unix sockets) promises stdout byte-identical to the
# in-process group for every fault preset, and to the single-sensor
# run for clean/recoverable presets (docs/SCALING.md). The last line
# of this gate is its own machine-readable verdict so CI can report it
# independently of the overall verify result.
for n in 2 4; do
  ./target/release/repro --scale 0.05 stream --faults recoverable --procs "${n}" \
    > "${DET_TMP}/stream_procs_${n}.txt" 2> /dev/null \
    || { echo "PROCGROUP RESULT: FAIL (procs=${n} run failed)"; fail "process-group run (procs=${n}) failed"; }
  diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_procs_${n}.txt" \
    || { echo "PROCGROUP RESULT: FAIL (procs=${n} diverged)"; fail "process-group snapshot (procs=${n}) differs from single-consumer run"; }
done
for f in lossy outage geo-outage; do
  ./target/release/repro --scale 0.05 stream --faults "${f}" --shards 2 \
    > "${DET_TMP}/stream_shards2_${f}.txt" 2> /dev/null \
    || { echo "PROCGROUP RESULT: FAIL (shards=2 ${f} run failed)"; fail "sharded reference run (faults=${f}) failed"; }
  ./target/release/repro --scale 0.05 stream --faults "${f}" --procs 2 \
    > "${DET_TMP}/stream_procs2_${f}.txt" 2> /dev/null \
    || { echo "PROCGROUP RESULT: FAIL (procs=2 ${f} run failed)"; fail "process-group run (faults=${f}) failed"; }
  diff "${DET_TMP}/stream_shards2_${f}.txt" "${DET_TMP}/stream_procs2_${f}.txt" \
    || { echo "PROCGROUP RESULT: FAIL (${f} diverged)"; fail "process-group snapshot (faults=${f}) differs from in-process group"; }
done

echo "==> procgroup: kill one worker, respawn, resume — byte-identical"
# Kill worker 1 mid-epoch; the supervisor must respawn it from its
# last complete checkpoint, replay the retained window, and finish
# with the exact uninterrupted snapshot (docs/SCALING.md).
./target/release/repro --scale 0.05 stream --faults recoverable --procs 2 \
  --checkpoint-dir "${DET_TMP}/pg_ckpt" --checkpoint-every 512 \
  --kill-worker 1:1500 --worker-log-dir "${DET_TMP}/pg_logs" \
  > "${DET_TMP}/stream_killworker.txt" 2> /dev/null \
  || { echo "PROCGROUP RESULT: FAIL (kill-worker run failed)"; fail "kill-worker run failed"; }
diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_killworker.txt" \
  || { echo "PROCGROUP RESULT: FAIL (kill-worker diverged)"; fail "respawned-worker snapshot differs from the uninterrupted run"; }
grep -q "resuming from epoch" "${DET_TMP}/pg_logs/supervisor.log" \
  || { echo "PROCGROUP RESULT: FAIL (no resume recorded)"; fail "supervisor log records no worker resume"; }
echo "PROCGROUP RESULT: PASS"

echo "==> reshard: offline repartition + resume reproduces the target-count run"
# Elastic re-sharding (docs/SCALING.md): repartition a crashed store
# onto a new modulus with `repro reshard`, resume at the new count,
# and the finished snapshot must be the uninterrupted run's, byte for
# byte — growing 2->4 under recoverable faults and shrinking 4->2
# clean. The last line of this gate is its own machine-readable
# verdict so CI can report it independently.
./target/release/repro --scale 0.05 stream --faults recoverable --shards 2 \
  --checkpoint-dir "${DET_TMP}/rs_grow" --checkpoint-every 512 --kill-after 2000 \
  > /dev/null 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (grow: killed run failed)"; fail "re-shard grow: killed 2-shard run failed"; }
./target/release/repro reshard --checkpoint-dir "${DET_TMP}/rs_grow" --to-shards 4 \
  > "${DET_TMP}/reshard_grow.txt" 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (grow: reshard verb failed)"; fail "re-shard grow: repro reshard failed"; }
grep -q '^RESHARD OK' "${DET_TMP}/reshard_grow.txt" \
  || { echo "RESHARD RESULT: FAIL (grow: no RESHARD OK)"; fail "re-shard grow: verb printed no RESHARD OK block"; }
./target/release/repro --scale 0.05 stream --faults recoverable --shards 4 \
  --checkpoint-dir "${DET_TMP}/rs_grow" --resume \
  > "${DET_TMP}/stream_reshard_grow.txt" 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (grow: resume failed)"; fail "re-shard grow: resume at 4 shards failed"; }
diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_reshard_grow.txt" \
  || { echo "RESHARD RESULT: FAIL (grow diverged)"; fail "re-shard grow: resumed 2->4 snapshot differs from the uninterrupted run"; }
./target/release/repro --scale 0.05 stream --faults off --shards 4 \
  --checkpoint-dir "${DET_TMP}/rs_shrink" --checkpoint-every 512 --kill-after 2000 \
  > /dev/null 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (shrink: killed run failed)"; fail "re-shard shrink: killed 4-shard run failed"; }
./target/release/repro reshard --checkpoint-dir "${DET_TMP}/rs_shrink" --to-shards 2 \
  > /dev/null 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (shrink: reshard verb failed)"; fail "re-shard shrink: repro reshard failed"; }
./target/release/repro --scale 0.05 stream --faults off --shards 2 \
  --checkpoint-dir "${DET_TMP}/rs_shrink" --resume \
  > "${DET_TMP}/stream_reshard_shrink.txt" 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (shrink: resume failed)"; fail "re-shard shrink: resume at 2 shards failed"; }
diff "${DET_TMP}/stream_clean.txt" "${DET_TMP}/stream_reshard_shrink.txt" \
  || { echo "RESHARD RESULT: FAIL (shrink diverged)"; fail "re-shard shrink: resumed 4->2 snapshot differs from the clean run"; }
# An impossible target must be refused, not absorbed.
if ./target/release/repro reshard --checkpoint-dir "${DET_TMP}/rs_shrink" --to-shards 0 \
  > /dev/null 2> "${DET_TMP}/reshard_zero.txt"; then
  echo "RESHARD RESULT: FAIL (to-shards 0 accepted)"
  fail "re-shard accepted --to-shards 0"
fi
grep -q "at least 1" "${DET_TMP}/reshard_zero.txt" \
  || { echo "RESHARD RESULT: FAIL (wrong refusal message)"; fail "re-shard --to-shards 0 refusal lacks the pinned message"; }

echo "==> reshard: online --reshard-at swap, threads and processes"
# The online drill drains the group at a consistent cut mid-stream and
# swaps the topology in-process; stdout must stay byte-identical to
# the uninterrupted run at the target count (docs/SCALING.md).
./target/release/repro --scale 0.05 stream --faults recoverable --shards 2 \
  --reshard-at 2000:4 \
  > "${DET_TMP}/stream_swap_threads.txt" 2> "${DET_TMP}/swap_threads.err" \
  || { echo "RESHARD RESULT: FAIL (thread swap run failed)"; fail "online re-shard (threads) failed"; }
grep -q "swapped to 4 shards" "${DET_TMP}/swap_threads.err" \
  || { echo "RESHARD RESULT: FAIL (thread swap never fired)"; fail "online re-shard (threads) never swapped"; }
diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_swap_threads.txt" \
  || { echo "RESHARD RESULT: FAIL (thread swap diverged)"; fail "online re-shard (threads) snapshot differs from the uninterrupted run"; }
./target/release/repro --scale 0.05 stream --faults recoverable --procs 2 \
  --checkpoint-dir "${DET_TMP}/rs_procs" --checkpoint-every 512 \
  --reshard-at 2000:4 --worker-log-dir "${DET_TMP}/rs_logs" \
  > "${DET_TMP}/stream_swap_procs.txt" 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (procgroup swap run failed)"; fail "online re-shard (procs) failed"; }
diff "${DET_TMP}/stream_recovered.txt" "${DET_TMP}/stream_swap_procs.txt" \
  || { echo "RESHARD RESULT: FAIL (procgroup swap diverged)"; fail "online re-shard (procs) snapshot differs from the uninterrupted run"; }
grep -q "group resharded 2 -> 4" "${DET_TMP}/rs_logs/supervisor.log" \
  || { echo "RESHARD RESULT: FAIL (no procgroup swap recorded)"; fail "supervisor log records no re-shard"; }
# Geo-outage across a swap is not raw-identical (call-count keyed
# schedules restart with the new topology); the sanctioned gate is
# dead-letter replay back to full clean coverage.
./target/release/repro --scale 0.05 stream --faults geo-outage --shards 2 \
  --reshard-at 2000:4 --dead-letter-dir "${DET_TMP}/rs_dl" \
  > /dev/null 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (geo-outage swap run failed)"; fail "online re-shard under geo-outage failed"; }
./target/release/repro --scale 0.05 replay-dead-letters --faults geo-outage --shards 2 \
  --reshard-at 2000:4 --dead-letter-dir "${DET_TMP}/rs_dl" \
  > "${DET_TMP}/rs_replay.txt" 2> /dev/null \
  || { echo "RESHARD RESULT: FAIL (geo-outage replay failed)"; fail "re-shard dead-letter replay failed"; }
grep -q "coverage restored       yes" "${DET_TMP}/rs_replay.txt" \
  || { echo "RESHARD RESULT: FAIL (coverage not restored)"; fail "re-shard dead-letter replay did not restore clean coverage"; }
echo "RESHARD RESULT: PASS"

echo "==> serving: daemon smoke (ETag/304 protocol + batch-identical report)"
# The always-on daemon must bind, drain ingest, serve /report with an
# entity tag, answer a repeated conditional GET from the same epoch
# with 304, serve exactly the batch pipeline's report bytes, and flush
# its closing checkpoint on POST /shutdown (docs/SERVING.md).
SERVE_LOG="${DET_TMP}/serve.log"
./target/release/repro --scale 0.05 serve --port 0 > "${SERVE_LOG}" 2> /dev/null &
SERVE_PID="$!"
ADDR=""
for _ in $(seq 1 600); do
  ADDR="$(sed -n 's|^SERVING http://||p' "${SERVE_LOG}" | head -n 1)"
  [ -n "${ADDR}" ] && break
  kill -0 "${SERVE_PID}" 2> /dev/null || fail "serve daemon exited before binding"
  sleep 0.1
done
[ -n "${ADDR}" ] || fail "serve daemon never printed its SERVING line"
INGESTED=""
for _ in $(seq 1 600); do
  if ./target/release/repro http-get --addr "${ADDR}" --path /healthz 2> /dev/null \
    | grep -q '"ingest_done": true'; then
    INGESTED=1
    break
  fi
  sleep 0.1
done
[ -n "${INGESTED}" ] || fail "serve daemon never finished ingest"
./target/release/repro http-get --addr "${ADDR}" --path /report \
  > "${DET_TMP}/served_report.txt" 2> "${DET_TMP}/served_headers.txt" \
  || fail "GET /report failed"
grep -q '^# status: 200$' "${DET_TMP}/served_headers.txt" \
  || fail "GET /report did not answer 200"
ETAG="$(sed -n 's/^# etag: //p' "${DET_TMP}/served_headers.txt")"
[ -n "${ETAG}" ] || fail "GET /report carried no ETag"
./target/release/repro http-get --addr "${ADDR}" --path /report \
  --if-none-match "${ETAG}" \
  > "${DET_TMP}/served_304.txt" 2> "${DET_TMP}/cond_headers.txt" \
  || fail "conditional GET /report failed"
grep -q '^# status: 304$' "${DET_TMP}/cond_headers.txt" \
  || fail "repeated conditional GET within the epoch did not answer 304"
[ ! -s "${DET_TMP}/served_304.txt" ] || fail "304 carried a body"
# The served report plus the println newline must be the batch verb's
# stdout, byte for byte.
./target/release/repro --scale 0.05 all > "${DET_TMP}/batch_report.txt" 2> /dev/null \
  || fail "batch report run failed"
printf '\n' >> "${DET_TMP}/served_report.txt"
diff "${DET_TMP}/batch_report.txt" "${DET_TMP}/served_report.txt" \
  || fail "served /report differs from the batch report"
./target/release/repro http-get --addr "${ADDR}" --path /shutdown --post \
  > /dev/null 2> "${DET_TMP}/shutdown_headers.txt" \
  || fail "POST /shutdown failed"
grep -q '^# status: 200$' "${DET_TMP}/shutdown_headers.txt" \
  || fail "POST /shutdown did not answer 200"
wait "${SERVE_PID}" || fail "serve daemon exited nonzero"
SERVE_PID=""
grep -Eq '^  closing fingerprint     [0-9a-f]{16}$' "${SERVE_LOG}" \
  || fail "daemon did not report a closing fingerprint"

echo "==> campaigns: extra tenants leave the primary byte-identical"
# A two-campaign run (examples/campaigns.toml) must reproduce the
# single-campaign stdout exactly once the added CAMPAIGN lines are
# filtered out — through the single consumer, the sharded group, and
# the process group — and the CAMPAIGN fingerprint lines themselves
# must agree across topologies (docs/CAMPAIGNS.md). The last line of
# this gate is its own machine-readable verdict so CI can report it
# independently of the overall verify result.
for n in 1 2; do
  ./target/release/repro --scale 0.05 stream --faults recoverable --shards "${n}" \
    --campaigns examples/campaigns.toml \
    > "${DET_TMP}/campaign_shards_${n}.txt" 2> /dev/null \
    || { echo "CAMPAIGN RESULT: FAIL (shards=${n} run failed)"; fail "two-campaign run (shards=${n}) failed"; }
  diff "${DET_TMP}/stream_recovered.txt" \
    <(grep -v '^CAMPAIGN ' "${DET_TMP}/campaign_shards_${n}.txt") \
    || { echo "CAMPAIGN RESULT: FAIL (shards=${n} diverged)"; fail "two-campaign primary artifacts (shards=${n}) differ from the single-campaign run"; }
done
./target/release/repro --scale 0.05 stream --faults recoverable --procs 2 \
  --campaigns examples/campaigns.toml \
  > "${DET_TMP}/campaign_procs_2.txt" 2> /dev/null \
  || { echo "CAMPAIGN RESULT: FAIL (procs=2 run failed)"; fail "two-campaign run (procs=2) failed"; }
diff "${DET_TMP}/stream_recovered.txt" \
  <(grep -v '^CAMPAIGN ' "${DET_TMP}/campaign_procs_2.txt") \
  || { echo "CAMPAIGN RESULT: FAIL (procs=2 diverged)"; fail "two-campaign primary artifacts (procs=2) differ from the single-campaign run"; }
grep -q '^CAMPAIGN blood-drive ' "${DET_TMP}/campaign_shards_1.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (no blood-drive line)"; fail "two-campaign run printed no blood-drive CAMPAIGN line"; }
diff <(grep '^CAMPAIGN ' "${DET_TMP}/campaign_shards_1.txt") \
  <(grep '^CAMPAIGN ' "${DET_TMP}/campaign_procs_2.txt") \
  || { echo "CAMPAIGN RESULT: FAIL (CAMPAIGN lines diverged)"; fail "CAMPAIGN fingerprint lines differ across topologies"; }

echo "==> campaigns: daemon serves per-tenant routes with per-campaign ETags"
# A multi-tenant daemon must list the roster at /campaigns, serve the
# extra tenant's report with its own strong entity tag (304 on the
# repeated conditional GET), and keep the legacy /report the primary's
# batch-identical bytes (docs/CAMPAIGNS.md, docs/SERVING.md).
CSERVE_LOG="${DET_TMP}/campaign_serve.log"
./target/release/repro --scale 0.05 serve --port 0 \
  --campaigns examples/campaigns.toml > "${CSERVE_LOG}" 2> /dev/null &
SERVE_PID="$!"
ADDR=""
for _ in $(seq 1 600); do
  ADDR="$(sed -n 's|^SERVING http://||p' "${CSERVE_LOG}" | head -n 1)"
  [ -n "${ADDR}" ] && break
  kill -0 "${SERVE_PID}" 2> /dev/null \
    || { echo "CAMPAIGN RESULT: FAIL (daemon died)"; fail "campaign serve daemon exited before binding"; }
  sleep 0.1
done
[ -n "${ADDR}" ] || { echo "CAMPAIGN RESULT: FAIL (no SERVING line)"; fail "campaign serve daemon never printed its SERVING line"; }
INGESTED=""
for _ in $(seq 1 600); do
  if ./target/release/repro http-get --addr "${ADDR}" --path /healthz 2> /dev/null \
    | grep -q '"ingest_done": true'; then
    INGESTED=1
    break
  fi
  sleep 0.1
done
[ -n "${INGESTED}" ] || { echo "CAMPAIGN RESULT: FAIL (ingest never finished)"; fail "campaign serve daemon never finished ingest"; }
./target/release/repro http-get --addr "${ADDR}" --path /campaigns \
  > "${DET_TMP}/campaign_roster.json" 2> /dev/null \
  || { echo "CAMPAIGN RESULT: FAIL (GET /campaigns failed)"; fail "GET /campaigns failed"; }
grep -q '"blood-drive"' "${DET_TMP}/campaign_roster.json" \
  || { echo "CAMPAIGN RESULT: FAIL (roster missing tenant)"; fail "/campaigns roster does not list blood-drive"; }
./target/release/repro http-get --addr "${ADDR}" --path /campaigns/blood-drive/report \
  > "${DET_TMP}/campaign_report.txt" 2> "${DET_TMP}/campaign_headers.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (tenant report failed)"; fail "GET /campaigns/blood-drive/report failed"; }
grep -q '^# status: 200$' "${DET_TMP}/campaign_headers.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (tenant report not 200)"; fail "GET /campaigns/blood-drive/report did not answer 200"; }
CETAG="$(sed -n 's/^# etag: //p' "${DET_TMP}/campaign_headers.txt")"
[ -n "${CETAG}" ] || { echo "CAMPAIGN RESULT: FAIL (no tenant ETag)"; fail "tenant report carried no ETag"; }
./target/release/repro http-get --addr "${ADDR}" --path /campaigns/blood-drive/report \
  --if-none-match "${CETAG}" \
  > /dev/null 2> "${DET_TMP}/campaign_cond_headers.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (conditional GET failed)"; fail "conditional tenant GET failed"; }
grep -q '^# status: 304$' "${DET_TMP}/campaign_cond_headers.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (no 304)"; fail "repeated conditional tenant GET did not answer 304"; }
./target/release/repro http-get --addr "${ADDR}" --path /report \
  > "${DET_TMP}/campaign_primary_report.txt" 2> /dev/null \
  || { echo "CAMPAIGN RESULT: FAIL (legacy /report failed)"; fail "legacy /report on the campaign daemon failed"; }
printf '\n' >> "${DET_TMP}/campaign_primary_report.txt"
diff "${DET_TMP}/batch_report.txt" "${DET_TMP}/campaign_primary_report.txt" \
  || { echo "CAMPAIGN RESULT: FAIL (primary report diverged)"; fail "legacy /report on the campaign daemon differs from the batch report"; }
./target/release/repro http-get --addr "${ADDR}" --path /shutdown --post \
  > /dev/null 2> /dev/null \
  || { echo "CAMPAIGN RESULT: FAIL (shutdown failed)"; fail "campaign daemon POST /shutdown failed"; }
wait "${SERVE_PID}" || { echo "CAMPAIGN RESULT: FAIL (daemon exited nonzero)"; fail "campaign serve daemon exited nonzero"; }
SERVE_PID=""
echo "CAMPAIGN RESULT: PASS"

echo "==> docs: rustdoc with warnings denied"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps \
  || fail "rustdoc warnings"

echo "VERIFY RESULT: PASS"
