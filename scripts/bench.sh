#!/usr/bin/env bash
# Criterion-free smoke benchmark: one instrumented pipeline run at the
# paper_scaled configuration with a fixed seed, written to the first
# unused BENCH_<n>.json in the repo root (schema: docs/PERFORMANCE.md).
#
#   scripts/bench.sh                 # scale 0.25, all cores
#   BENCH_SCALE=1.0 scripts/bench.sh # full paper corpus
#   BENCH_THREADS=1 scripts/bench.sh # serial baseline for a speedup ratio
#
# Repeated runs accumulate BENCH_0.json, BENCH_1.json, ... so wall-time
# trajectories across commits stay comparable. Everything except the
# wall times is deterministic in the seed; compare a threads=1 file
# against a threads=0 file to measure the parallel back-half speedup.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-0.25}"
SEED="${BENCH_SEED:-218302379}"
THREADS="${BENCH_THREADS:-0}"

echo "==> bench: building release binary"
cargo build --release -q -p donorpulse-bench --bin repro

echo "==> bench: scale ${SCALE}, seed ${SEED}, compute threads ${THREADS}"
./target/release/repro --scale "${SCALE}" --seed "${SEED}" --threads "${THREADS}" bench "$@"
