#!/usr/bin/env bash
# Throughput-regression gate against the committed BENCH_BASELINE.json.
#
# Re-runs the smoke bench at the baseline's exact (scale, seed,
# threads), then compares wall time *normalized by the calibration
# workload* — `calibration_nanos` times a fixed FNV loop on the same
# machine in the same process, so the ratio total/calibration is a
# machine-independent cost figure and the gate transfers between a
# laptop and a CI runner. Fails when the normalized cost regresses by
# more than BENCH_TOLERANCE (default 0.15 = 15%).
#
#   scripts/bench_check.sh                   # gate against BENCH_BASELINE.json
#   BENCH_TOLERANCE=0.25 scripts/bench_check.sh
#
# Also runs the shard-scaling smoke (`repro bench-shards`, N = 1, 2, 4)
# so the consumer-group path is exercised and its table lands in the CI
# log. The last line is always "BENCH CHECK: PASS|FAIL (...)" and the
# exit code matches.
#
# Parsing is sed-only on the bench JSON's fixed key layout — no jq, no
# python, so the gate runs anywhere the repo builds.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${BENCH_BASELINE:-BENCH_BASELINE.json}"
TOLERANCE="${BENCH_TOLERANCE:-0.15}"

fail() {
  echo "bench_check: $*" >&2
  echo "BENCH CHECK: FAIL ($*)"
  exit 1
}

field() { # field <name> <file> — first integer/float value of a JSON key
  sed -n "s/.*\"$1\": \([0-9][0-9.]*\).*/\1/p" "$2" | head -n 1
}

[ -f "${BASELINE}" ] || fail "missing baseline ${BASELINE}"
SCALE="$(field scale "${BASELINE}")"
SEED="$(field seed "${BASELINE}")"
THREADS="$(field compute_threads "${BASELINE}")"
BASE_TOTAL="$(field total_wall_nanos "${BASELINE}")"
BASE_CAL="$(field calibration_nanos "${BASELINE}")"
[ -n "${SCALE}" ] && [ -n "${BASE_TOTAL}" ] && [ -n "${BASE_CAL}" ] \
  || fail "baseline ${BASELINE} is missing fields"

echo "==> bench_check: building release binary"
cargo build --release -q -p donorpulse-bench --bin repro

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "==> bench_check: scale ${SCALE}, seed ${SEED}, threads ${THREADS}"
./target/release/repro --scale "${SCALE}" --seed "${SEED}" \
  --threads "${THREADS}" bench --json "${TMP}/bench.json" > /dev/null
CUR_TOTAL="$(field total_wall_nanos "${TMP}/bench.json")"
CUR_CAL="$(field calibration_nanos "${TMP}/bench.json")"
[ -n "${CUR_TOTAL}" ] && [ -n "${CUR_CAL}" ] || fail "bench JSON unparsable"

# ratio > 1 means this run is more expensive per unit of machine speed
# than the committed baseline.
read -r RATIO VERDICT <<EOF
$(awk -v ct="${CUR_TOTAL}" -v cc="${CUR_CAL}" \
      -v bt="${BASE_TOTAL}" -v bc="${BASE_CAL}" -v tol="${TOLERANCE}" \
  'BEGIN {
     cur = ct / cc; base = bt / bc; ratio = cur / base;
     printf "%.4f %s\n", ratio, (ratio > 1 + tol ? "FAIL" : "PASS");
   }')
EOF
echo "    baseline: ${BASE_TOTAL} ns (cal ${BASE_CAL} ns)"
echo "    current:  ${CUR_TOTAL} ns (cal ${CUR_CAL} ns)"
echo "    normalized cost ratio: ${RATIO} (tolerance 1 + ${TOLERANCE})"
if [ "${VERDICT}" = "FAIL" ]; then
  fail "normalized cost ratio ${RATIO} exceeds tolerance ${TOLERANCE}"
fi

echo "==> bench_check: shard-scaling smoke (N = 1, 2, 4)"
./target/release/repro --scale "${SCALE}" --seed "${SEED}" bench-shards \
  2> /dev/null \
  || fail "shard-scaling bench failed"

# Stream wire-path gate against the committed BENCH_STREAM_BASELINE.json:
# the zero-copy v2 decode path must stay >= MIN_SPEEDUP faster than v1
# (measured fresh, not read from the baseline), and its own normalized
# cost must not regress against the committed baseline.
STREAM_BASELINE="${BENCH_STREAM_BASELINE:-BENCH_STREAM_BASELINE.json}"
MIN_SPEEDUP="${BENCH_STREAM_MIN_SPEEDUP:-2.0}"
[ -f "${STREAM_BASELINE}" ] || fail "missing stream baseline ${STREAM_BASELINE}"
S_SCALE="$(field scale "${STREAM_BASELINE}")"
S_SEED="$(field seed "${STREAM_BASELINE}")"
BASE_FAST="$(sed -n '/"wire": "v2-borrowed"/s/.*"best_nanos": \([0-9]*\).*/\1/p' "${STREAM_BASELINE}" | head -n 1)"
BASE_SCAL="$(field calibration_nanos "${STREAM_BASELINE}")"
[ -n "${S_SCALE}" ] && [ -n "${BASE_FAST}" ] && [ -n "${BASE_SCAL}" ] \
  || fail "stream baseline ${STREAM_BASELINE} is missing fields"

echo "==> bench_check: stream wire paths (v1 / v2 / v2-borrowed) at scale ${S_SCALE}"
./target/release/repro --scale "${S_SCALE}" --seed "${S_SEED}" bench-stream \
  --json "${TMP}/bench_stream.json" > /dev/null 2> /dev/null \
  || fail "stream wire bench failed"
CUR_SPEEDUP="$(field speedup_v2_borrowed_vs_v1 "${TMP}/bench_stream.json")"
CUR_FAST="$(sed -n '/"wire": "v2-borrowed"/s/.*"best_nanos": \([0-9]*\).*/\1/p' "${TMP}/bench_stream.json" | head -n 1)"
CUR_SCAL="$(field calibration_nanos "${TMP}/bench_stream.json")"
[ -n "${CUR_SPEEDUP}" ] && [ -n "${CUR_FAST}" ] && [ -n "${CUR_SCAL}" ] \
  || fail "stream bench JSON unparsable"

read -r S_RATIO S_VERDICT <<EOF
$(awk -v cf="${CUR_FAST}" -v cc="${CUR_SCAL}" \
      -v bf="${BASE_FAST}" -v bc="${BASE_SCAL}" -v tol="${TOLERANCE}" \
      -v sp="${CUR_SPEEDUP}" -v min="${MIN_SPEEDUP}" \
  'BEGIN {
     ratio = (cf / cc) / (bf / bc);
     ok = (ratio <= 1 + tol) && (sp + 0 >= min + 0);
     printf "%.4f %s\n", ratio, (ok ? "PASS" : "FAIL");
   }')
EOF
echo "    v2-borrowed vs v1 speedup: ${CUR_SPEEDUP} (required >= ${MIN_SPEEDUP})"
echo "    v2-borrowed normalized cost ratio: ${S_RATIO} (tolerance 1 + ${TOLERANCE})"
if [ "${S_VERDICT}" = "FAIL" ]; then
  fail "stream wire gate: speedup ${CUR_SPEEDUP} (need >= ${MIN_SPEEDUP}) or cost ratio ${S_RATIO} out of tolerance"
fi

echo "BENCH CHECK: PASS (normalized cost ratio ${RATIO}, stream speedup ${CUR_SPEEDUP})"
