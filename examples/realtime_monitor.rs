//! Real-time awareness monitoring — the paper's conclusion proposes the
//! characterization as a *real-time* social sensor. This example plants
//! a viral kidney-donation story in the simulated stream (two weeks,
//! ~40% of conversation), consumes the stream chronologically, and shows
//! the burst detector recovering the event: organ, window, magnitude.
//!
//! ```sh
//! cargo run --release --example realtime_monitor
//! ```
//!
//! The monitor is instrumented through `donorpulse::obs`: collection,
//! series building, and burst detection each run under a span, and the
//! closing metrics table shows where the wall time went.

use donorpulse::core::temporal::{detect_bursts, BurstConfig, DailySeries};
use donorpulse::prelude::*;
use donorpulse::twitter::AwarenessEvent;

fn main() {
    let metrics = MetricsRegistry::enabled();
    // A viral story: kidney donation dominates days 200–213.
    let event = AwarenessEvent {
        organ: Organ::Kidney,
        start_day: 200,
        end_day: 214,
        intensity: 0.4,
    };

    let mut config = GeneratorConfig::paper_scaled(0.08);
    config.seed = 2024;
    config.events.push(event);
    let sim = TwitterSimulation::generate(config).expect("sim");

    println!("== real-time organ-awareness monitor ==");
    println!(
        "planted event: {} days {}..{} at intensity {}\n",
        event.organ, event.start_day, event.end_day, event.intensity
    );

    // Consume the stream as a collector would and build the daily series.
    let mut span = metrics.stage("collect");
    let corpus: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    span.set_items(corpus.len() as u64);
    span.finish();
    metrics
        .counter("collected_tweets_total")
        .add(corpus.len() as u64);

    let mut span = metrics.stage("daily_series");
    let series = DailySeries::from_corpus(&corpus);
    span.set_items(corpus.len() as u64);
    span.finish();

    // Print the kidney share around the event window.
    println!("kidney share (14-day context around the event):");
    for day in (event.start_day as usize - 7)..(event.end_day as usize + 7) {
        let share = series.share(day, Organ::Kidney).unwrap_or(0.0);
        let bar = "#".repeat((share * 80.0).round() as usize);
        let marker = if (event.start_day as usize..event.end_day as usize).contains(&day) {
            "*"
        } else {
            " "
        };
        println!(
            "day {day:>3}{marker} {share:>5.1}% {bar}",
            share = share * 100.0
        );
    }

    // Detect bursts.
    let mut span = metrics.stage("burst_detect");
    let bursts = detect_bursts(&series, BurstConfig::default()).expect("detector");
    span.set_items(corpus.len() as u64);
    span.finish();
    metrics
        .counter("bursts_detected_total")
        .add(bursts.len() as u64);
    println!("\ndetected bursts:");
    if bursts.is_empty() {
        println!("  (none)");
    }
    for b in &bursts {
        println!(
            "  {:<9} days {:>3}..{:<3} peak day {} (share {:.1}% vs baseline {:.1}%, z = {:.1})",
            b.organ.name(),
            b.start_day,
            b.end_day,
            b.peak_day,
            b.peak_share * 100.0,
            b.baseline_share * 100.0,
            b.peak_z
        );
    }

    println!("\n== where the time went ==");
    println!("{}", metrics.snapshot().render_table());
}
