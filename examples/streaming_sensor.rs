//! Streaming sensor — the deployment shape of the paper's system. A
//! collector process consumes the tracked stream tweet-by-tweet through
//! the [`donorpulse::core::incremental::IncrementalSensor`] and publishes
//! a monthly situation report: located-user coverage, the current
//! relative-risk hot list, and any active awareness bursts. Snapshots
//! come from the sensor's live state; nothing is recomputed from scratch.
//!
//! ```sh
//! cargo run --release --example streaming_sensor
//! ```
//!
//! The collector is instrumented through `donorpulse::obs`: the stream
//! consumption runs under a span, every ingested tweet and published
//! report bumps a counter, and the run closes with the metrics table —
//! the same accounting `repro metrics` prints for the batch pipeline.

use donorpulse::core::incremental::IncrementalSensor;
use donorpulse::core::temporal::{detect_bursts, BurstConfig};
use donorpulse::prelude::*;
use donorpulse::twitter::AwarenessEvent;

const REPORT_EVERY_DAYS: u32 = 30;

fn main() {
    // Platform with a planted mid-collection liver event to catch.
    let mut config = GeneratorConfig::paper_scaled(0.08);
    config.seed = 55;
    config.events.push(AwarenessEvent {
        organ: Organ::Liver,
        start_day: 160,
        end_day: 170,
        intensity: 0.45,
    });
    let sim = TwitterSimulation::generate(config).expect("sim");
    let geocoder = Geocoder::new();

    let mut sensor = IncrementalSensor::new(&geocoder, |id| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    });

    println!("== streaming organ-awareness sensor (monthly reports) ==");
    let metrics = MetricsRegistry::enabled();
    let ingested = metrics.counter("tweets_ingested_total");
    let reports = metrics.counter("reports_published_total");
    let mut span = metrics.stage("stream_consume");
    let mut next_report = REPORT_EVERY_DAYS;
    for tweet in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
        let day = tweet.created_at.day();
        if day >= next_report {
            report(&sensor, next_report);
            reports.incr();
            next_report += REPORT_EVERY_DAYS;
        }
        sensor.ingest(&tweet);
        ingested.incr();
    }
    report(&sensor, 385);
    reports.incr();
    span.set_items(ingested.value());
    span.finish();

    println!("\n== collector metrics ==");
    println!("{}", metrics.snapshot().render_table());
}

fn report(sensor: &IncrementalSensor<'_>, day: u32) {
    if sensor.ensure_nonempty().is_err() {
        println!("\n-- day {day}: no located data yet");
        return;
    }
    println!(
        "\n-- day {day}: {} collected tweets, {} located users, {} USA tweets",
        sensor.tweets_seen(),
        sensor.located_users(),
        sensor.usa_tweet_count()
    );

    // Current relative-risk hot list (top 3 by RR among highlighted).
    if let Ok(risk) = sensor.risk_map(0.05) {
        let mut hot: Vec<(String, String, f64)> = risk
            .entries
            .iter()
            .filter(|e| e.is_highlighted())
            .filter_map(|e| {
                e.risk
                    .map(|r| (e.state.name().to_string(), e.organ.name().to_string(), r.rr))
            })
            .collect();
        hot.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite RR"));
        if hot.is_empty() {
            println!("   no significant state excesses yet");
        } else {
            for (state, organ, rr) in hot.into_iter().take(3) {
                println!("   hot: {state} {organ} (RR {rr:.2})");
            }
        }
    }

    // Active bursts in the accumulated series.
    let series = sensor.daily_series();
    if let Ok(bursts) = detect_bursts(&series, BurstConfig::default()) {
        for b in bursts {
            // Only surface bursts still near the report horizon.
            if b.end_day + 30 >= day as usize {
                println!(
                    "   burst: {} days {}..{} (peak share {:.0}% vs {:.0}% baseline)",
                    b.organ.name(),
                    b.start_day,
                    b.end_day,
                    b.peak_share * 100.0,
                    b.baseline_share * 100.0
                );
            }
        }
    }
}
