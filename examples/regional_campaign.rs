//! Regional campaign targeting — the application the paper's
//! introduction motivates: an organ-procurement organization planning a
//! kidney-donation awareness campaign wants to know *where* kidney
//! conversations already run hot (piggyback on engagement) and *which
//! states behave alike* (reuse campaign material across a cluster).
//!
//! ```sh
//! cargo run --example regional_campaign
//! ```

use donorpulse::core::report::Fig5;
use donorpulse::prelude::*;

fn main() {
    let mut config = PipelineConfig::paper_scaled(0.15);
    config.generator.seed = 7;
    config.run_user_clustering = false; // not needed for this analysis
    let run = Pipeline::new().run(config).expect("pipeline");

    println!("== kidney campaign planner ==\n");

    // 1. Where is kidney conversation significantly above the national
    //    expectation? (Fig. 5's relative-risk rule.)
    let fig5 = Fig5::from_run(&run);
    let mut hot: Vec<(UsState, f64)> = fig5
        .highlighted
        .iter()
        .filter(|(_, organs)| organs.contains(&Organ::Kidney))
        .filter_map(|&(state, _)| {
            run.risk
                .entry(state, Organ::Kidney)
                .and_then(|e| e.risk.map(|r| (state, r.rr)))
        })
        .collect();
    hot.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite RR"));

    println!("states with significant kidney-conversation excess:");
    for (state, rr) in &hot {
        let sig = run.regions.signature(*state).expect("state characterized");
        println!(
            "  {:<16} RR = {:.2}  ({} users, kidney share {:.1}%)",
            state.name(),
            rr,
            sig.users,
            sig.distribution[Organ::Kidney.index()] * 100.0
        );
    }
    if hot.is_empty() {
        println!("  (none at this scale — increase --scale)");
        return;
    }

    // 2. Which states *talk like* the hottest state? Campaign material
    //    tuned for one should transfer inside its cluster (Fig. 6).
    let anchor = hot[0].0;
    if let Some(cluster) = run.state_clusters.cluster_of(anchor, 6).expect("valid cut") {
        let peers: Vec<&str> = cluster
            .iter()
            .filter(|&&s| s != anchor)
            .map(|s| s.abbr())
            .collect();
        println!(
            "\nconversation cluster around {} (share material with): {}",
            anchor.name(),
            peers.join(" ")
        );
    }

    // 3. Cross-organ angle: users attending to kidney also attend to…
    //    (Fig. 3's non-reciprocal co-attention) — tells the campaign
    //    which secondary message lands.
    if let Some(row) = run.organ_k.row_for(Organ::Kidney) {
        let mut pairs: Vec<(Organ, f64)> = Organ::ALL
            .into_iter()
            .filter(|&o| o != Organ::Kidney)
            .map(|o| (o, row[o.index()]))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        println!(
            "\nkidney-focused users also mention: {}",
            pairs
                .iter()
                .take(3)
                .map(|(o, v)| format!("{} ({:.1}%)", o.name(), v * 100.0))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
}
