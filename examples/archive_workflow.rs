//! Archive workflow — collect once, analyze forever. A real collection
//! pipeline records the filtered stream to disk (JSONL, one tweet per
//! line, the de-facto tweet-archive format) and runs analyses offline.
//! This example collects a corpus, writes it to a temporary archive,
//! reloads it, and verifies the characterization is identical.
//!
//! ```sh
//! cargo run --release --example archive_workflow
//! ```

use donorpulse::core::AttentionMatrix;
use donorpulse::prelude::*;
use donorpulse::twitter::io::{read_corpus, write_corpus};
use std::fs::File;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut config = GeneratorConfig::paper_scaled(0.02);
    config.seed = 31;
    let sim = TwitterSimulation::generate(config)?;

    // 1. Collect through the tracked stream (as a live crawler would).
    let corpus: Corpus = sim
        .stream()
        .with_filter(Box::new(KeywordQuery::paper()))
        .collect();
    println!(
        "collected {} tweets from {} users",
        corpus.len(),
        corpus.user_count()
    );

    // 2. Archive to JSONL.
    let path = std::env::temp_dir().join("donorpulse_archive.jsonl");
    write_corpus(&corpus, File::create(&path)?)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("archived to {} ({} KiB)", path.display(), bytes / 1024);

    // 3. Reload in a "different process" and re-analyze.
    let reloaded = read_corpus(File::open(&path)?)?;
    assert_eq!(reloaded.tweets(), corpus.tweets());

    let live = AttentionMatrix::from_corpus(&corpus)?;
    let replay = AttentionMatrix::from_corpus(&reloaded)?;
    assert_eq!(live, replay);
    println!(
        "reloaded {} tweets; attention matrix identical ({} users x {} organs)",
        reloaded.len(),
        replay.user_count(),
        donorpulse::text::Organ::COUNT
    );

    // 4. The archive is plain text — peek at the first record.
    let first_line = std::fs::read_to_string(&path)?
        .lines()
        .next()
        .map(str::to_string)
        .unwrap_or_default();
    println!("first record: {first_line}");

    std::fs::remove_file(&path)?;
    Ok(())
}
