//! Quickstart: run the full paper pipeline on a small simulated corpus
//! and print every table and figure.
//!
//! ```sh
//! cargo run --example quickstart
//! cargo run --release --example quickstart -- 0.25   # bigger corpus
//! ```

use donorpulse::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);

    println!("== donorpulse quickstart (scale {scale}) ==\n");

    // 1. Configure the simulated Twitter platform and the pipeline.
    //    `paper_scaled` keeps every distribution of the paper-calibrated
    //    generative model and only shrinks the user count.
    let mut config = PipelineConfig::paper_scaled(scale);
    config.generator.seed = 42;

    // 2. Run: collect through the Stream API with the Q = Context x
    //    Subject filter, geolocate users (geo-tag, then profile), keep
    //    the USA, and characterize.
    let run = Pipeline::new().run(config).expect("pipeline");

    println!(
        "firehose {} tweets -> collected {} -> USA {} ({:.1}%), {} located users\n",
        run.firehose_tweets,
        run.collected_tweets,
        run.usa.len(),
        run.usa_fraction() * 100.0,
        run.user_states.len(),
    );

    // 3. Render the paper's tables and figures.
    let report = PaperReport::from_run(&run).expect("report");
    println!("{}", report.render());
}
