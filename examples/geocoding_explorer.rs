//! Geocoding explorer — shows how the paper's location-augmentation
//! step (Sec. III-A) resolves the messy self-reported profile strings
//! real Twitter users type, and how GPS geo-tags override them.
//!
//! ```sh
//! cargo run --example geocoding_explorer                # demo strings
//! cargo run --example geocoding_explorer -- "NOLA ✈ NYC"  # your own
//! ```

use donorpulse::geo::{Geocoder, ParseOutcome};

fn main() {
    let geocoder = Geocoder::new();
    let args: Vec<String> = std::env::args().skip(1).collect();

    let samples: Vec<&str> = if args.is_empty() {
        vec![
            "Wichita, KS",
            "NYC",
            "the windy city",
            "Kansas City",
            "Kansas City, MO",
            "NOLA",
            "Portland",
            "Portland, ME",
            "Washington, D.C.",
            "São Paulo, Brazil",
            "London",
            "Paris, Texas",
            "planet earth",
            "TX",
            "hi",
            "somewhere over the rainbow",
            "🌴 Miami, FL 🌴",
            "proud nurse in the Seattle area",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!("{:<36} resolution", "profile location");
    println!("{:-<72}", "");
    for s in samples {
        let outcome = geocoder.resolve_profile(s);
        let desc = match outcome {
            ParseOutcome::Resolved {
                state,
                confidence,
                method,
            } => format!(
                "{} ({:?}, confidence {:.2})",
                state.name(),
                method,
                confidence
            ),
            ParseOutcome::NonUs => "outside the USA".to_string(),
            ParseOutcome::Unknown => "unresolvable".to_string(),
        };
        println!("{s:<36} {desc}");
    }

    // GPS precedence: profile says New York, coordinates say Wichita.
    println!("\nGPS beats profile (the paper's augmentation order):");
    let located = geocoder.locate(Some("NYC"), Some((37.69, -97.34)));
    println!(
        "profile \"NYC\" + geotag (37.69, -97.34) -> {} via {:?}",
        located.state.map(|s| s.name()).unwrap_or("?"),
        located.source
    );
}
