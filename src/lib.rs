//! # donorpulse
//!
//! A production-quality Rust reproduction of *"Characterizing Organ
//! Donation Awareness from Social Media"* (Pacheco, Pinheiro, Cadeiras,
//! Menezes — ICDE 2017): a social sensor that characterizes
//! organ-donation awareness from Twitter conversations.
//!
//! This facade crate re-exports the full workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `donorpulse-core` | the paper's method: `Û`, `L`, `K = (LᵀL)⁻¹LᵀÛ`, relative risk, clusterings, pipeline, reports |
//! | [`twitter`] | `donorpulse-twitter` | simulated Twitter platform (generative model, Stream API, corpus) |
//! | [`geo`] | `donorpulse-geo` | offline US geocoding (gazetteer, location parser, point-in-state) |
//! | [`text`] | `donorpulse-text` | tweet tokenizer, Aho–Corasick matcher, keyword model `Q` |
//! | [`cluster`] | `donorpulse-cluster` | agglomerative clustering, K-Means, silhouette, validation |
//! | [`stats`] | `donorpulse-stats` | correlation, relative risk, distributions, distances |
//! | [`linalg`] | `donorpulse-linalg` | dense matrices, LU solves/inverses |
//! | [`obs`] | `donorpulse-obs` | per-stage metrics: counters, gauges, spans, snapshots |
//!
//! # Quickstart
//!
//! ```
//! use donorpulse::prelude::*;
//!
//! // A small simulated corpus (1% of the paper's scale), end to end.
//! let mut config = PipelineConfig::paper_scaled(0.01);
//! config.run_user_clustering = false; // keep the doctest fast
//! let run = Pipeline::new().run(config).unwrap();
//!
//! // Table I statistics of the USA corpus:
//! let stats = run.usa.stats();
//! assert!(stats.users > 0);
//!
//! // Fig. 3: how heart-focused users attend to other organs.
//! let heart = run.organ_k.row_for(Organ::Heart).unwrap();
//! assert!(heart[Organ::Heart.index()] > heart[Organ::Intestine.index()]);
//! ```
//!
//! # Observability
//!
//! Attach an enabled [`MetricsRegistry`](obs::MetricsRegistry) to the
//! pipeline configuration and the run reports per-stage wall times,
//! throughput, and domain counters (see `docs/OBSERVABILITY.md`):
//!
//! ```
//! use donorpulse::prelude::*;
//!
//! let mut config = PipelineConfig::paper_scaled(0.01);
//! config.run_user_clustering = false; // keep the doctest fast
//! config.metrics = MetricsRegistry::enabled();
//! let run = Pipeline::new().run(config).unwrap();
//!
//! assert_eq!(
//!     run.metrics.counter("collected_tweets_total"),
//!     Some(run.collected_tweets)
//! );
//! println!("{}", run.metrics.render_table());
//! ```

pub use donorpulse_cluster as cluster;
pub use donorpulse_core as core;
pub use donorpulse_geo as geo;
pub use donorpulse_linalg as linalg;
pub use donorpulse_obs as obs;
pub use donorpulse_stats as stats;
pub use donorpulse_text as text;
pub use donorpulse_twitter as twitter;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use donorpulse_cluster::{Linkage, Metric};
    pub use donorpulse_core::pipeline::{Pipeline, PipelineConfig, PipelineRun, RunMetrics};
    pub use donorpulse_core::report::PaperReport;
    pub use donorpulse_core::AttentionMatrix;
    pub use donorpulse_geo::{Geocoder, UsState};
    pub use donorpulse_obs::{MetricsRegistry, MetricsSnapshot};
    pub use donorpulse_text::{KeywordQuery, Organ, TrackFilter};
    pub use donorpulse_twitter::{Corpus, GeneratorConfig, TwitterSimulation};
}
