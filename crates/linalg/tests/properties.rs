//! Property-based tests for the linear-algebra substrate.

use donorpulse_linalg::{Matrix, QrDecomposition};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix built as D + R where D is a
/// dominant diagonal — guarantees invertibility for inverse round-trips.
fn diag_dominant(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |mut data| {
        for i in 0..n {
            // Make each diagonal strictly dominate its row.
            data[i * n + i] = (n as f64) + 1.0 + data[i * n + i].abs();
        }
        Matrix::from_vec(n, n, data).unwrap()
    })
}

fn any_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).unwrap())
}

proptest! {
    #[test]
    fn transpose_is_involution(m in any_matrix(4, 7)) {
        prop_assert!(m.transpose().transpose().approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_with_identity_is_noop(m in any_matrix(5, 5)) {
        let i = Matrix::identity(5).unwrap();
        prop_assert!(m.matmul(&i).unwrap().approx_eq(&m, 1e-9));
        prop_assert!(i.matmul(&m).unwrap().approx_eq(&m, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in any_matrix(3, 4),
        b in any_matrix(4, 2),
        c in any_matrix(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-6));
    }

    #[test]
    fn transpose_of_product_is_reversed_product(
        a in any_matrix(3, 4),
        b in any_matrix(4, 5),
    ) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn inverse_round_trip(m in diag_dominant(5)) {
        let inv = m.inverse().unwrap();
        let prod = m.matmul(&inv).unwrap();
        prop_assert!(prod.approx_eq(&Matrix::identity(5).unwrap(), 1e-8));
        let prod2 = inv.matmul(&m).unwrap();
        prop_assert!(prod2.approx_eq(&Matrix::identity(5).unwrap(), 1e-8));
    }

    #[test]
    fn solve_agrees_with_inverse(m in diag_dominant(4), b in any_matrix(4, 3)) {
        let x1 = m.solve(&b).unwrap();
        let x2 = m.inverse().unwrap().matmul(&b).unwrap();
        prop_assert!(x1.approx_eq(&x2, 1e-7));
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        a in diag_dominant(3),
        b in diag_dominant(3),
    ) {
        let lhs = a.matmul(&b).unwrap().determinant().unwrap();
        let rhs = a.determinant().unwrap() * b.determinant().unwrap();
        // Relative tolerance: determinants can be large.
        prop_assert!((lhs - rhs).abs() <= 1e-8 * rhs.abs().max(1.0));
    }

    #[test]
    fn qr_reconstruction_and_orthonormality(m in diag_dominant(5)) {
        // Diag-dominant square matrices are full rank.
        let qr = QrDecomposition::new(&m).unwrap();
        prop_assert!(qr.q().matmul(qr.r()).unwrap().approx_eq(&m, 1e-8));
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(5).unwrap(), 1e-8));
    }

    #[test]
    fn qr_least_squares_agrees_with_normal_equations(
        m in diag_dominant(4),
        b in any_matrix(4, 2),
    ) {
        let qr_x = m.least_squares(&b).unwrap();
        let mt = m.transpose();
        let ne_x = mt.matmul(&m).unwrap().inverse().unwrap()
            .matmul(&mt).unwrap().matmul(&b).unwrap();
        prop_assert!(qr_x.approx_eq(&ne_x, 1e-6));
    }

    #[test]
    fn normalized_rows_sum_to_one(m in prop::collection::vec(0.0..10.0f64, 24)) {
        let mut mat = Matrix::from_vec(4, 6, m).unwrap();
        let skipped = mat.normalize_rows();
        for (i, row) in mat.iter_rows().enumerate() {
            if skipped.contains(&i) {
                continue;
            }
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn row_argmax_is_maximal(m in any_matrix(3, 6)) {
        for i in 0..3 {
            let j = m.row_argmax(i);
            let row = m.row(i);
            for &v in row {
                prop_assert!(row[j] >= v);
            }
        }
    }
}
