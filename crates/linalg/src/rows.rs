//! [`Rows`]: a contiguous row-major observation buffer.
//!
//! The clustering back-half of the pipeline (K-Means sweep, silhouette,
//! distance matrices) iterates over tens of thousands of short rows.
//! Storing them as `Vec<Vec<f64>>` costs one heap allocation and one
//! pointer chase per row; `Rows` packs the same data into a single flat
//! `Vec<f64>` with a fixed row dimension, so row access is a bounds
//! check plus a slice — cache-friendly and trivially shareable across
//! worker threads (`&Rows` is `Sync`).
//!
//! Unlike [`Matrix`](crate::Matrix), `Rows` is allowed to be empty
//! (zero rows) and is append-friendly, which fits its role as a column
//! of observations rather than an algebraic operand.

use crate::{LinalgError, Matrix, Result};
use serde::{Deserialize, Serialize};

/// A contiguous row-major buffer of equal-length `f64` rows.
///
/// ```
/// use donorpulse_linalg::Rows;
///
/// let mut rows = Rows::new(2);
/// rows.push(&[1.0, 2.0]).unwrap();
/// rows.push(&[3.0, 4.0]).unwrap();
/// assert_eq!(rows.len(), 2);
/// assert_eq!(rows.row(1), &[3.0, 4.0]);
/// assert_eq!(rows.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rows {
    dim: usize,
    data: Vec<f64>,
}

impl Rows {
    /// Creates an empty buffer whose rows will have length `dim`.
    ///
    /// # Panics
    /// Panics when `dim` is zero — a zero-width observation carries no
    /// information and would make every index computation degenerate.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "row dimension must be nonzero");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Like [`Rows::new`] with capacity for `n` rows preallocated.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "row dimension must be nonzero");
        Self {
            dim,
            data: Vec::with_capacity(dim * n),
        }
    }

    /// Builds from a flat row-major vector.
    pub fn from_flat(dim: usize, data: Vec<f64>) -> Result<Self> {
        if dim == 0 {
            return Err(LinalgError::InvalidShape {
                reason: "row dimension must be nonzero".to_string(),
            });
        }
        if data.len() % dim != 0 {
            return Err(LinalgError::InvalidShape {
                reason: format!("flat length {} is not a multiple of dim {dim}", data.len()),
            });
        }
        Ok(Self { dim, data })
    }

    /// Copies a slice of `Vec<f64>` rows into one contiguous buffer.
    /// All rows must be nonempty and of equal length.
    pub fn from_vecs(rows: &[Vec<f64>]) -> Result<Self> {
        let first = rows.first().ok_or_else(|| LinalgError::InvalidShape {
            reason: "no rows given".to_string(),
        })?;
        if first.is_empty() {
            return Err(LinalgError::InvalidShape {
                reason: "rows are empty".to_string(),
            });
        }
        let dim = first.len();
        let mut data = Vec::with_capacity(dim * rows.len());
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(LinalgError::InvalidShape {
                    reason: format!("row {i} has length {}, expected {dim}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { dim, data })
    }

    /// Copies a [`Matrix`]'s storage (already row-major and contiguous).
    ///
    /// # Panics
    /// Panics when the matrix has zero columns.
    pub fn from_matrix(m: &Matrix) -> Self {
        assert!(m.cols() > 0, "row dimension must be nonzero");
        Self {
            dim: m.cols(),
            data: m.as_slice().to_vec(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.dim {
            return Err(LinalgError::InvalidShape {
                reason: format!("pushed row has length {}, expected {}", row.len(), self.dim),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row length.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over rows as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copies the selected rows (in the given order) into a new buffer.
    /// Used by the silhouette stride subsample.
    ///
    /// # Panics
    /// Panics when any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Rows {
        let mut out = Rows::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.data.extend_from_slice(self.row(i));
        }
        out
    }

    /// Expands back into per-row vectors (compatibility/serialization
    /// helper — not for hot paths).
    pub fn to_vecs(&self) -> Vec<Vec<f64>> {
        self.iter().map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut r = Rows::new(3);
        assert!(r.is_empty());
        r.push(&[1.0, 2.0, 3.0]).unwrap();
        r.push(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.dim(), 3);
        assert_eq!(r.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(r.row(1), &[4.0, 5.0, 6.0]);
        assert!(r.push(&[1.0]).is_err());
    }

    #[test]
    fn from_vecs_round_trip() {
        let vecs = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let r = Rows::from_vecs(&vecs).unwrap();
        assert_eq!(r.to_vecs(), vecs);
        assert_eq!(r.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_vecs_rejects_bad_input() {
        assert!(Rows::from_vecs(&[]).is_err());
        assert!(Rows::from_vecs(&[vec![]]).is_err());
        assert!(Rows::from_vecs(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn from_flat_checks_divisibility() {
        assert!(Rows::from_flat(0, vec![]).is_err());
        assert!(Rows::from_flat(2, vec![1.0; 3]).is_err());
        let r = Rows::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn from_matrix_copies_storage() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let r = Rows::from_matrix(&m);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dim(), 2);
        assert_eq!(r.as_slice(), m.as_slice());
    }

    #[test]
    fn subset_selects_in_order() {
        let r = Rows::from_vecs(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = r.subset(&[3, 1]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn iter_yields_all_rows() {
        let r = Rows::from_vecs(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let collected: Vec<&[f64]> = r.iter().collect();
        assert_eq!(collected, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dim_panics() {
        let _ = Rows::new(0);
    }

    #[test]
    fn serde_round_trip() {
        let r = Rows::from_vecs(&[vec![1.5, -2.0], vec![0.0, 4.25]]).unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: Rows = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
