use std::fmt;

/// Errors produced by linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Two operands have incompatible shapes for the requested operation.
    ShapeMismatch {
        /// Shape of the left operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A square matrix was required but the operand is rectangular.
    NotSquare {
        /// Shape of the offending matrix.
        shape: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized or inverted.
    Singular,
    /// A constructor was handed inconsistent row lengths or an empty shape.
    InvalidShape {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Requested index `(row, col)`.
        index: (usize, usize),
        /// Actual shape of the matrix.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "expected square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::InvalidShape { reason } => write!(f, "invalid shape: {reason}"),
            LinalgError::OutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        assert_eq!(
            LinalgError::NotSquare { shape: (1, 2) }.to_string(),
            "expected square matrix, got 1x2"
        );
        assert_eq!(LinalgError::Singular.to_string(), "matrix is singular");
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(LinalgError::Singular, LinalgError::Singular);
        assert_ne!(
            LinalgError::Singular,
            LinalgError::NotSquare { shape: (2, 3) }
        );
    }
}
