//! Dense linear algebra substrate for `donorpulse`.
//!
//! The paper's aggregation step (Eq. 3) computes
//! `K = (LᵀL)⁻¹ Lᵀ Û` where `L` is a membership-indicator matrix and `Û`
//! is the row-normalized user-attention contingency matrix. This crate
//! provides the minimal — but complete and well-tested — dense matrix
//! toolkit needed to evaluate that expression and to support the
//! clustering and statistics crates: row-major [`Matrix`] storage,
//! arithmetic, transposition, LU decomposition with partial pivoting,
//! linear solves, and matrix inversion.
//!
//! The matrices involved are small (users × 6 organs collapses to at most
//! `states × organs` after aggregation), so the implementation favours
//! clarity and numerical robustness over blocked/SIMD kernels. All
//! operations are `O(n³)` classical algorithms with partial pivoting where
//! relevant.
//!
//! # Example
//!
//! ```
//! use donorpulse_linalg::Matrix;
//!
//! // K = (LᵀL)⁻¹ Lᵀ Û  with a 3-user / 2-group membership matrix.
//! let l = Matrix::from_rows(&[
//!     vec![1.0, 0.0],
//!     vec![1.0, 0.0],
//!     vec![0.0, 1.0],
//! ]).unwrap();
//! let u = Matrix::from_rows(&[
//!     vec![0.5, 0.5],
//!     vec![0.7, 0.3],
//!     vec![0.1, 0.9],
//! ]).unwrap();
//! let ltl = l.transpose().matmul(&l).unwrap();
//! let k = ltl.inverse().unwrap()
//!     .matmul(&l.transpose()).unwrap()
//!     .matmul(&u).unwrap();
//! assert!((k.get(0, 0) - 0.6).abs() < 1e-12); // mean of the two group-0 users
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod decompose;
mod error;
mod matrix;
mod ops;
mod qr;
mod rows;
mod vector;

pub use decompose::LuDecomposition;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use qr::QrDecomposition;
pub use rows::Rows;
pub use vector::{dot, norm2, scale as scale_vec, sub as sub_vec};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
