//! Arithmetic operations on [`Matrix`]: multiplication, transpose,
//! elementwise combination, and scalar maps.

use crate::{LinalgError, Matrix, Result};

impl Matrix {
    /// Matrix product `self * rhs`.
    ///
    /// Classical `O(n³)` triple loop with the inner loop arranged for
    /// row-major locality (`ikj` order).
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols() != rhs.rows() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let (m, k, n) = (self.rows(), self.cols(), rhs.cols());
        let mut out = Matrix::zeros(m, n)?;
        for i in 0..m {
            for p in 0..k {
                let a = self.get(i, p);
                if a == 0.0 {
                    continue; // membership matrices are sparse in practice
                }
                let rrow = rhs.row(p);
                let orow = out.row_mut(i);
                for j in 0..n {
                    orow[j] += a * rrow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols() != v.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), self.rows()).expect("nonzero dims");
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise sum.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.as_slice().iter().map(|&v| f(v)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data).expect("same shape")
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|v| v * s)
    }

    /// Sum of every element.
    pub fn sum(&self) -> f64 {
        self.as_slice().iter().sum()
    }

    /// Per-column sums (length `cols`).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols()];
        for row in self.iter_rows() {
            for (s, v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums
    }

    /// Per-row sums (length `rows`).
    pub fn row_sums(&self) -> Vec<f64> {
        self.iter_rows().map(|r| r.iter().sum()).collect()
    }

    /// Per-column means.
    pub fn column_means(&self) -> Vec<f64> {
        let n = self.rows() as f64;
        self.column_sums().into_iter().map(|s| s / n).collect()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        let data = self
            .as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2x3() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn matmul_known_product() {
        let a = m2x3();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![58.0, 64.0], vec![139.0, 154.0]]).unwrap();
        assert!(c.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = m2x3();
        let i3 = Matrix::identity(3).unwrap();
        assert!(a.matmul(&i3).unwrap().approx_eq(&a, 0.0));
        let i2 = Matrix::identity(2).unwrap();
        assert!(i2.matmul(&a).unwrap().approx_eq(&a, 0.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = m2x3();
        assert!(matches!(
            a.matmul(&a),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = m2x3();
        let v = vec![1.0, 0.5, -1.0];
        let got = a.matvec(&v).unwrap();
        assert_eq!(got, vec![1.0 + 1.0 - 3.0, 4.0 + 2.5 - 6.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = m2x3();
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert!(t.transpose().approx_eq(&a, 0.0));
    }

    #[test]
    fn elementwise_ops() {
        let a = m2x3();
        let sum = a.add(&a).unwrap();
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = a.sub(&a).unwrap();
        assert_eq!(diff.sum(), 0.0);
        let had = a.hadamard(&a).unwrap();
        assert_eq!(had.get(0, 2), 9.0);
        let other = Matrix::zeros(3, 2).unwrap();
        assert!(a.add(&other).is_err());
    }

    #[test]
    fn map_and_scale() {
        let a = m2x3();
        assert_eq!(a.scale(2.0).get(0, 0), 2.0);
        assert_eq!(a.map(|v| v - 1.0).get(0, 0), 0.0);
    }

    #[test]
    fn sums_and_means() {
        let a = m2x3();
        assert_eq!(a.sum(), 21.0);
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.row_sums(), vec![6.0, 15.0]);
        assert_eq!(a.column_means(), vec![2.5, 3.5, 4.5]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn matmul_skips_zero_entries_correctly() {
        // Sparse-ish membership-style matrix: result must equal dense math.
        let l = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let u = Matrix::from_rows(&[vec![0.2, 0.8], vec![0.5, 0.5], vec![0.6, 0.4]]).unwrap();
        let ltu = l.transpose().matmul(&u).unwrap();
        let expected = Matrix::from_rows(&[vec![0.8, 1.2], vec![0.5, 0.5]]).unwrap();
        assert!(ltu.approx_eq(&expected, 1e-12));
    }
}
