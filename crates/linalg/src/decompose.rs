//! LU decomposition with partial pivoting, and the solves/inverses built
//! on top of it.
//!
//! The paper's Eq. 3 requires `(LᵀL)⁻¹`. `LᵀL` is diagonal when `L` is a
//! disjoint membership-indicator matrix, but we implement the general
//! factorization so the aggregation code stays faithful to the published
//! formula and works for overlapping/weighted memberships too.

use crate::{LinalgError, Matrix, Result};

/// Threshold below which a pivot is considered numerically zero.
const PIVOT_EPS: f64 = 1e-12;

/// An LU decomposition `P·A = L·U` of a square matrix, with partial
/// pivoting.
///
/// `L` (unit lower triangular) and `U` (upper triangular) are packed into
/// a single matrix; `perm` records the row permutation; `sign` tracks the
/// permutation parity for determinant computation.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuDecomposition {
    /// Factorizes `a`. Fails when `a` is not square or is singular.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for col in 0..n {
            // Partial pivoting: find the row with the largest magnitude in
            // this column at or below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = lu.get(col, col).abs();
            for r in (col + 1)..n {
                let v = lu.get(r, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinalgError::Singular);
            }
            if pivot_row != col {
                lu.swap_rows(pivot_row, col);
                perm.swap(pivot_row, col);
                sign = -sign;
            }
            let pivot = lu.get(col, col);
            for r in (col + 1)..n {
                let factor = lu.get(r, col) / pivot;
                lu.set(r, col, factor);
                for c in (col + 1)..n {
                    let v = lu.get(r, c) - factor * lu.get(col, c);
                    lu.set(r, c, v);
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix: product of `U`'s diagonal times
    /// the permutation sign.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu.get(i, i);
        }
        det
    }

    /// Solves `A·x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "solve_vec",
            });
        }
        // Apply permutation, then forward substitution (L has unit diag).
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc;
        }
        // Back substitution through U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                acc -= self.lu.get(i, j) * xj;
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "solve",
            });
        }
        let mut out = Matrix::zeros(n, b.cols())?;
        for j in 0..b.cols() {
            let col = b.column(j);
            let x = self.solve_vec(&col)?;
            for (i, v) in x.into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Ok(out)
    }

    /// Computes `A⁻¹` by solving against the identity.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve(&Matrix::identity(self.dim())?)
    }
}

impl Matrix {
    /// Convenience wrapper: inverse via LU decomposition.
    pub fn inverse(&self) -> Result<Matrix> {
        LuDecomposition::new(self)?.inverse()
    }

    /// Convenience wrapper: determinant via LU decomposition. Returns `0`
    /// for singular matrices instead of an error.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare {
                shape: self.shape(),
            });
        }
        match LuDecomposition::new(self) {
            Ok(lu) => Ok(lu.determinant()),
            Err(LinalgError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Convenience wrapper: solves `self · x = b`.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        LuDecomposition::new(self)?.solve(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lu_rejects_rectangular() {
        let a = Matrix::zeros(2, 3).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn lu_rejects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn determinant_known_values() {
        let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]).unwrap();
        assert!((a.determinant().unwrap() - (-6.0)).abs() < 1e-12);
        let i = Matrix::identity(5).unwrap();
        assert!((i.determinant().unwrap() - 1.0).abs() < 1e-12);
        // Singular determinant reported as zero, not an error.
        let s = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(s.determinant().unwrap(), 0.0);
    }

    #[test]
    fn determinant_tracks_permutation_sign() {
        // Needs pivoting: leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!((a.determinant().unwrap() - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x + 4y = 11  =>  x = 1, y = 2
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve_vec(&[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_vec_length_checked() {
        let a = Matrix::identity(3).unwrap();
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(lu.solve_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ])
        .unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3).unwrap(), 1e-10));
    }

    #[test]
    fn inverse_of_diagonal_is_reciprocal_diagonal() {
        // This is the actual LᵀL case from Eq. 3: diagonal of group sizes.
        let d = Matrix::diagonal(&[4.0, 9.0, 25.0]).unwrap();
        let inv = d.inverse().unwrap();
        assert!((inv.get(0, 0) - 0.25).abs() < 1e-12);
        assert!((inv.get(1, 1) - 1.0 / 9.0).abs() < 1e-12);
        assert!((inv.get(2, 2) - 0.04).abs() < 1e-12);
        assert_eq!(inv.get(0, 1), 0.0);
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 5.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![6.0, 9.0], vec![10.0, 20.0]]).unwrap();
        let x = a.solve(&b).unwrap();
        let expected = Matrix::from_rows(&[vec![2.0, 3.0], vec![2.0, 4.0]]).unwrap();
        assert!(x.approx_eq(&expected, 1e-12));
        // Mismatched RHS rows.
        let bad = Matrix::zeros(3, 1).unwrap();
        assert!(a.solve(&bad).is_err());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]).unwrap();
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(2).unwrap(), 1e-12));
    }
}
