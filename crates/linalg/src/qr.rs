//! QR decomposition (Householder reflections) and least squares.
//!
//! Eq. 3's `K = (LᵀL)⁻¹LᵀÛ` is the normal-equation solution of the least
//! squares problem `min ‖L·K − Û‖_F`. For a 0/1 disjoint membership the
//! normal equations are perfectly conditioned (diagonal `LᵀL`), but for
//! weighted or overlapping memberships they square the condition number;
//! [`Matrix::least_squares`] solves the same problem through a
//! Householder QR factorization instead, which is stable whenever `L`
//! has full column rank.

use crate::{LinalgError, Matrix, Result};

/// A thin QR decomposition `A = Q·R` of an `m × n` matrix with `m ≥ n`:
/// `Q` is `m × n` with orthonormal columns, `R` is `n × n` upper
/// triangular.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    q: Matrix,
    r: Matrix,
}

impl QrDecomposition {
    /// Factorizes `a` via Householder reflections.
    ///
    /// Errors when `a` has more columns than rows or is column-rank
    /// deficient (a zero diagonal appears in `R`).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::InvalidShape {
                reason: format!("QR requires rows >= cols, got {m}x{n}"),
            });
        }
        // Work on a copy; accumulate Q implicitly by applying the same
        // reflections to an identity block.
        let mut r_full = a.clone();
        let mut q_full = Matrix::identity(m)?;

        for k in 0..n {
            // Householder vector for column k below the diagonal.
            let mut norm = 0.0;
            for i in k..m {
                let v = r_full.get(i, k);
                norm += v * v;
            }
            let norm = norm.sqrt();
            if norm < 1e-12 {
                return Err(LinalgError::Singular);
            }
            let alpha = if r_full.get(k, k) >= 0.0 { -norm } else { norm };
            let mut v = vec![0.0; m];
            for (i, slot) in v.iter_mut().enumerate().skip(k) {
                *slot = r_full.get(i, k);
            }
            v[k] -= alpha;
            let v_norm2: f64 = v.iter().map(|x| x * x).sum();
            if v_norm2 < 1e-300 {
                // Column already triangular here; nothing to reflect.
                continue;
            }

            // Apply H = I − 2vvᵀ/‖v‖² to R (columns k..n).
            for j in k..n {
                let dot: f64 = (k..m).map(|i| v[i] * r_full.get(i, j)).sum();
                let scale = 2.0 * dot / v_norm2;
                for (i, &vi) in v.iter().enumerate().skip(k) {
                    let val = r_full.get(i, j) - scale * vi;
                    r_full.set(i, j, val);
                }
            }
            // Apply H to Q (all columns) from the right: Q ← Q·H.
            for row in 0..m {
                let dot: f64 = (k..m).map(|i| q_full.get(row, i) * v[i]).sum();
                let scale = 2.0 * dot / v_norm2;
                for (i, &vi) in v.iter().enumerate().skip(k) {
                    let val = q_full.get(row, i) - scale * vi;
                    q_full.set(row, i, val);
                }
            }
        }

        // Extract the thin factors.
        let mut q = Matrix::zeros(m, n)?;
        let mut r = Matrix::zeros(n, n)?;
        for i in 0..m {
            for j in 0..n {
                q.set(i, j, q_full.get(i, j));
            }
        }
        for i in 0..n {
            for j in i..n {
                r.set(i, j, r_full.get(i, j));
            }
        }
        Ok(Self { q, r })
    }

    /// The orthonormal factor `Q` (`m × n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves `A·X = B` in the least-squares sense: `X = R⁻¹·Qᵀ·B`
    /// (back substitution; `R` is triangular).
    pub fn solve(&self, b: &Matrix) -> Result<Matrix> {
        let (m, n) = self.q.shape();
        if b.rows() != m {
            return Err(LinalgError::ShapeMismatch {
                left: (m, n),
                right: b.shape(),
                op: "qr_solve",
            });
        }
        let qtb = self.q.transpose().matmul(b)?;
        let mut x = qtb.clone();
        // Back substitution, column by column of the RHS.
        for col in 0..x.cols() {
            for i in (0..n).rev() {
                let mut acc = x.get(i, col);
                for j in (i + 1)..n {
                    acc -= self.r.get(i, j) * x.get(j, col);
                }
                let diag = self.r.get(i, i);
                if diag.abs() < 1e-12 {
                    return Err(LinalgError::Singular);
                }
                x.set(i, col, acc / diag);
            }
        }
        Ok(x)
    }
}

impl Matrix {
    /// Least-squares solution of `self · X ≈ b` via Householder QR.
    pub fn least_squares(&self, b: &Matrix) -> Result<Matrix> {
        QrDecomposition::new(self)?.solve(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 4.0],
            vec![5.0, 6.0],
            vec![7.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = tall();
        let qr = QrDecomposition::new(&a).unwrap();
        let back = qr.q().matmul(qr.r()).unwrap();
        assert!(back.approx_eq(&a, 1e-10), "{back:?}");
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = tall();
        let qr = QrDecomposition::new(&a).unwrap();
        let qtq = qr.q().transpose().matmul(qr.q()).unwrap();
        assert!(
            qtq.approx_eq(&Matrix::identity(2).unwrap(), 1e-10),
            "{qtq:?}"
        );
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = tall();
        let qr = QrDecomposition::new(&a).unwrap();
        for i in 0..2 {
            for j in 0..i {
                assert_eq!(qr.r().get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        // Overdetermined system: compare QR against (AᵀA)⁻¹Aᵀb.
        let a = tall();
        let b = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![2.5], vec![4.0]]).unwrap();
        let qr_x = a.least_squares(&b).unwrap();
        let at = a.transpose();
        let normal_x = at
            .matmul(&a)
            .unwrap()
            .inverse()
            .unwrap()
            .matmul(&at)
            .unwrap()
            .matmul(&b)
            .unwrap();
        assert!(qr_x.approx_eq(&normal_x, 1e-9), "{qr_x:?} vs {normal_x:?}");
    }

    #[test]
    fn exact_system_recovered() {
        // Square invertible: least squares = exact solve.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x_true = Matrix::from_rows(&[vec![1.0], vec![-2.0]]).unwrap();
        let b = a.matmul(&x_true).unwrap();
        let x = a.least_squares(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn rank_deficient_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert!(matches!(
            QrDecomposition::new(&a),
            Err(LinalgError::Singular)
        ));
    }

    #[test]
    fn wide_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        assert!(QrDecomposition::new(&a).is_err());
    }

    #[test]
    fn rhs_shape_checked() {
        let a = tall();
        let qr = QrDecomposition::new(&a).unwrap();
        let bad = Matrix::zeros(3, 1).unwrap();
        assert!(qr.solve(&bad).is_err());
    }

    #[test]
    fn membership_least_squares_is_group_mean() {
        // The Eq. 3 connection: for a 0/1 disjoint membership, the least
        // squares solution equals the per-group means.
        let l = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let u = Matrix::from_rows(&[vec![0.2, 0.8], vec![0.6, 0.4], vec![0.0, 1.0]]).unwrap();
        let k = l.least_squares(&u).unwrap();
        assert!((k.get(0, 0) - 0.4).abs() < 1e-10);
        assert!((k.get(0, 1) - 0.6).abs() < 1e-10);
        assert!((k.get(1, 1) - 1.0).abs() < 1e-10);
    }
}
