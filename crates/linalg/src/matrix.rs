use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse type of the crate. Storage is a single `Vec<f64>`
/// of length `rows * cols`; element `(i, j)` lives at `i * cols + j`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with `value`.
    ///
    /// Returns an error if either dimension is zero.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidShape {
                reason: format!("dimensions must be nonzero, got {rows}x{cols}"),
            });
        }
        Ok(Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        })
    }

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Result<Self> {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Result<Self> {
        let mut m = Self::zeros(n, n)?;
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        Ok(m)
    }

    /// Builds a matrix from a slice of rows. All rows must be nonempty and
    /// of equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        if nrows == 0 {
            return Err(LinalgError::InvalidShape {
                reason: "no rows given".to_string(),
            });
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(LinalgError::InvalidShape {
                reason: "rows are empty".to_string(),
            });
        }
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::InvalidShape {
                    reason: format!("row {i} has length {}, expected {ncols}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::InvalidShape {
                reason: format!("dimensions must be nonzero, got {rows}x{cols}"),
            });
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                reason: format!("data length {} does not match {rows}x{cols}", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn diagonal(diag: &[f64]) -> Result<Self> {
        let mut m = Self::zeros(diag.len(), diag.len())?;
        for (i, &d) in diag.iter().enumerate() {
            m.set(i, i, d);
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns element `(i, j)`.
    ///
    /// # Panics
    /// Panics when the index is out of bounds; use [`Matrix::try_get`] for
    /// a fallible variant.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Fallible element access.
    pub fn try_get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::OutOfBounds {
                index: (i, j),
                shape: self.shape(),
            });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Sets element `(i, j)` to `value`.
    ///
    /// # Panics
    /// Panics when the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix, yielding the row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Swaps rows `a` and `b` in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let (head, tail) = self.data.split_at_mut(hi * self.cols);
        head[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }

    /// Normalizes every row to sum to 1. Rows whose sum is zero (or not
    /// finite) are left untouched and reported back by index.
    ///
    /// The paper's Û matrix (Sec. III-B) is produced exactly this way:
    /// raw per-user organ mention counts become per-user attention
    /// distributions.
    pub fn normalize_rows(&mut self) -> Vec<usize> {
        let mut skipped = Vec::new();
        for i in 0..self.rows {
            let row = self.row_mut(i);
            let sum: f64 = row.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                skipped.push(i);
            }
        }
        skipped
    }

    /// Maximum absolute difference between two matrices of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "max_abs_diff",
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0_f64, f64::max))
    }

    /// Approximate equality within `tol` (elementwise absolute).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other).map(|d| d <= tol).unwrap_or(false)
    }

    /// Index of the maximum entry of row `i` (first one on ties), used by
    /// the paper's Eq. 1 argmax membership assignment.
    pub fn row_argmax(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        let mut best_val = row[0];
        for (j, &v) in row.iter().enumerate().skip(1) {
            if v > best_val {
                best = j;
                best_val = v;
            }
        }
        best
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(10) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > 10 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_zeros() {
        let m = Matrix::filled(2, 3, 7.0).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 7.0));
        let z = Matrix::zeros(3, 1).unwrap();
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(Matrix::zeros(0, 3).is_err());
        assert!(Matrix::zeros(3, 0).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![]]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        match err {
            LinalgError::InvalidShape { reason } => assert!(reason.contains("row 1")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let i = Matrix::identity(4).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::diagonal(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn get_set_row_column() {
        let mut m = Matrix::zeros(2, 3).unwrap();
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.column(2), vec![0.0, 5.0]);
    }

    #[test]
    fn try_get_out_of_bounds() {
        let m = Matrix::zeros(2, 2).unwrap();
        assert!(matches!(
            m.try_get(2, 0),
            Err(LinalgError::OutOfBounds { .. })
        ));
        assert_eq!(m.try_get(1, 1).unwrap(), 0.0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn get_panics_out_of_bounds() {
        let m = Matrix::zeros(2, 2).unwrap();
        let _ = m.get(0, 5);
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn normalize_rows_produces_stochastic_rows() {
        let mut m = Matrix::from_rows(&[vec![2.0, 2.0], vec![0.0, 0.0], vec![1.0, 3.0]]).unwrap();
        let skipped = m.normalize_rows();
        assert_eq!(skipped, vec![1]);
        assert_eq!(m.row(0), &[0.5, 0.5]);
        assert_eq!(m.row(2), &[0.25, 0.75]);
        assert_eq!(m.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn row_argmax_first_on_tie() {
        let m = Matrix::from_rows(&[vec![1.0, 3.0, 3.0], vec![5.0, 1.0, 2.0]]).unwrap();
        assert_eq!(m.row_argmax(0), 1);
        assert_eq!(m.row_argmax(1), 0);
    }

    #[test]
    fn approx_eq_and_diff() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 2.0 + 1e-12]]).unwrap();
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        let c = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(!a.approx_eq(&c, 1.0));
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let rows: Vec<&[f64]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }

    #[test]
    fn debug_output_is_bounded() {
        let m = Matrix::zeros(20, 20).unwrap();
        let s = format!("{m:?}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains("..."));
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_rows(&[vec![1.5, -2.0], vec![0.0, 4.25]]).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
