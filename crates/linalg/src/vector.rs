//! Small free-function helpers on `&[f64]` vectors, shared by the
//! clustering and statistics crates.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics when lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Elementwise difference `a - b`.
///
/// # Panics
/// Panics when lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scales a vector by `s`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn sub_and_scale() {
        assert_eq!(sub(&[3.0, 1.0], &[1.0, 1.0]), vec![2.0, 0.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
    }
}
