//! Property-based tests for the text substrate.

use donorpulse_text::matcher::AhoCorasick;
use donorpulse_text::normalize::normalize;
use donorpulse_text::{extract_mentions, tokenize, KeywordQuery, Organ, TrackFilter};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tokenizer_never_panics_and_spans_are_valid(text in "\\PC{0,200}") {
        let tokens = tokenize(&text);
        for t in &tokens {
            prop_assert!(t.start < t.end);
            prop_assert!(t.end <= text.len());
            prop_assert!(text.is_char_boundary(t.start));
            prop_assert!(text.is_char_boundary(t.end));
            prop_assert!(!t.text.is_empty() || !text[t.start..t.end].is_empty());
        }
        // Spans are strictly increasing and non-overlapping.
        for pair in tokens.windows(2) {
            prop_assert!(pair[0].end <= pair[1].start);
        }
    }

    #[test]
    fn normalize_is_idempotent(text in "\\PC{0,200}") {
        let once = normalize(&text);
        prop_assert_eq!(normalize(&once), once);
    }

    #[test]
    fn normalize_output_has_no_uppercase_ascii(text in "\\PC{0,200}") {
        let n = normalize(&text);
        prop_assert!(!n.chars().any(|c| c.is_ascii_uppercase()));
        prop_assert!(!n.contains("  "));
    }

    #[test]
    fn extractor_never_panics(text in "\\PC{0,300}") {
        let _ = extract_mentions(&text);
    }

    #[test]
    fn extraction_is_case_insensitive(words in prop::collection::vec("[a-z]{1,8}", 1..10)) {
        let lower = words.join(" ");
        let upper = lower.to_uppercase();
        prop_assert_eq!(
            extract_mentions(&lower).as_array(),
            extract_mentions(&upper).as_array()
        );
    }

    #[test]
    fn query_matches_imply_extraction_nonempty(
        ctx_idx in 0usize..5,
        organ_idx in 0usize..6,
        pad in "[a-z ]{0,40}",
    ) {
        // Any tweet built from a context word and an organ word passes the
        // filter AND produces at least one extracted mention.
        let contexts = ["donor", "donate", "donation", "transplant", "transplantation"];
        let organ = Organ::from_index(organ_idx).unwrap();
        let text = format!("{} {} {}", contexts[ctx_idx], pad, organ.name());
        let q = KeywordQuery::paper();
        prop_assert!(q.matches(&text));
        let mc = extract_mentions(&text);
        prop_assert!(mc.count(organ) >= 1);
    }

    #[test]
    fn aho_corasick_agrees_with_naive_search(
        needles in prop::collection::hash_set("[a-c]{1,3}", 1..6),
        haystack in "[a-c]{0,40}",
    ) {
        let needles: Vec<String> = needles.into_iter().collect();
        let ac = AhoCorasick::new(needles.clone());
        let mut expected = 0usize;
        for n in &needles {
            let mut at = 0;
            while let Some(pos) = haystack[at..].find(n.as_str()) {
                expected += 1;
                at += pos + 1;
            }
        }
        prop_assert_eq!(ac.find_all(&haystack).len(), expected);
    }

    #[test]
    fn track_filter_never_panics(
        phrases in prop::collection::vec("\\PC{0,20}", 0..5),
        text in "\\PC{0,100}",
    ) {
        let f = TrackFilter::new(phrases);
        let _ = f.matches(&text);
    }

    #[test]
    fn mention_counts_merge_is_commutative(
        a in "[a-z ]{0,60}",
        b in "[a-z ]{0,60}",
    ) {
        let ma = extract_mentions(&a);
        let mb = extract_mentions(&b);
        let mut ab = ma;
        ab.merge(&mb);
        let mut ba = mb;
        ba.merge(&ma);
        prop_assert_eq!(ab.as_array(), ba.as_array());
        prop_assert_eq!(ab.total(), ma.total() + mb.total());
    }
}
