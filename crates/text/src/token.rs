//! A tweet-aware tokenizer.
//!
//! Splits raw tweet text into typed tokens: plain words, `#hashtags`,
//! `@mentions`, URLs, and numbers. The tokenizer operates on the
//! *original* text and normalizes each token's matchable form with
//! [`crate::normalize::normalize`], so downstream matching is
//! case/diacritic-insensitive while byte offsets still refer to the
//! original string.

use crate::normalize::{is_word_char, normalize};
use serde::{Deserialize, Serialize};

/// The type of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TokenKind {
    /// A plain word (letters, possibly with internal `'`/`-`/`_`).
    Word,
    /// A `#hashtag` (stored without the `#`).
    Hashtag,
    /// A `@mention` (stored without the `@`).
    Mention,
    /// A URL starting with `http://`, `https://` or `www.`.
    Url,
    /// A number (all-digit word, possibly with `.`/`,` separators).
    Number,
}

/// One token with its normalized text and source span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Normalized (lowercased, accent-folded) token text, sigil stripped.
    pub text: String,
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the token start in the original string.
    pub start: usize,
    /// Byte offset one past the token end in the original string.
    pub end: usize,
}

/// Tokenizes tweet text.
///
/// Rules, in priority order at each position:
/// 1. `http://…`, `https://…`, `www.…` — a [`TokenKind::Url`] running to
///    the next whitespace;
/// 2. `#` or `@` followed by a word — hashtag / mention (sigil stripped);
/// 3. a maximal run of word characters — [`TokenKind::Number`] if every
///    char is an ASCII digit, otherwise [`TokenKind::Word`];
/// 4. anything else (punctuation, emoji) is skipped.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes: Vec<(usize, char)> = text.char_indices().collect();
    let n = bytes.len();
    let mut i = 0;

    while i < n {
        let (start, c) = bytes[i];

        // URLs.
        if starts_url(text, start) {
            let mut j = i;
            while j < n && !bytes[j].1.is_whitespace() {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            tokens.push(Token {
                text: text[start..end].to_lowercase(),
                kind: TokenKind::Url,
                start,
                end,
            });
            i = j;
            continue;
        }

        // Hashtags and mentions.
        if (c == '#' || c == '@') && i + 1 < n && is_word_char(bytes[i + 1].1) {
            let mut j = i + 1;
            while j < n && is_word_char(bytes[j].1) {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            let body_start = bytes[i + 1].0;
            tokens.push(Token {
                text: normalize(&text[body_start..end]),
                kind: if c == '#' {
                    TokenKind::Hashtag
                } else {
                    TokenKind::Mention
                },
                start,
                end,
            });
            i = j;
            continue;
        }

        // Words and numbers.
        if is_word_char(c) {
            let mut j = i;
            while j < n && is_word_char(bytes[j].1) {
                j += 1;
            }
            let end = if j < n { bytes[j].0 } else { text.len() };
            let raw = &text[start..end];
            let kind = if raw.chars().all(|ch| ch.is_ascii_digit()) {
                TokenKind::Number
            } else {
                TokenKind::Word
            };
            tokens.push(Token {
                text: normalize(raw),
                kind,
                start,
                end,
            });
            i = j;
            continue;
        }

        i += 1;
    }
    tokens
}

fn starts_url(text: &str, at: usize) -> bool {
    let rest = &text[at..];
    let lower_prefix: String = rest.chars().take(8).collect::<String>().to_lowercase();
    lower_prefix.starts_with("http://")
        || lower_prefix.starts_with("https://")
        || lower_prefix.starts_with("www.")
}

/// Returns only the normalized text of word-like tokens (words, hashtags,
/// numbers) — the "content tokens" used for keyword matching. Mentions
/// and URLs are excluded: the paper's predicates are about conversation
/// content, and Twitter's own `track` parameter does not match inside
/// URLs or user names.
pub fn content_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| {
            matches!(
                t.kind,
                TokenKind::Word | TokenKind::Hashtag | TokenKind::Number
            )
        })
        .map(|t| t.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(String, TokenKind)> {
        tokenize(text)
            .into_iter()
            .map(|t| (t.text, t.kind))
            .collect()
    }

    #[test]
    fn simple_words() {
        assert_eq!(
            kinds("I need a kidney transplant"),
            vec![
                ("i".into(), TokenKind::Word),
                ("need".into(), TokenKind::Word),
                ("a".into(), TokenKind::Word),
                ("kidney".into(), TokenKind::Word),
                ("transplant".into(), TokenKind::Word),
            ]
        );
    }

    #[test]
    fn hashtags_and_mentions() {
        let t = kinds("#OrganDonation saves lives @UNOSNews");
        assert_eq!(t[0], ("organdonation".into(), TokenKind::Hashtag));
        assert_eq!(t[3], ("unosnews".into(), TokenKind::Mention));
    }

    #[test]
    fn urls_are_single_tokens() {
        let t = tokenize("read https://donate.gov/organs?x=1 now");
        assert_eq!(t[1].kind, TokenKind::Url);
        assert_eq!(t[1].text, "https://donate.gov/organs?x=1");
        assert_eq!(t[2].text, "now");
        let t2 = tokenize("see www.unos.org");
        assert_eq!(t2[1].kind, TokenKind::Url);
    }

    #[test]
    fn numbers_detected() {
        let t = kinds("22 people die every day");
        assert_eq!(t[0], ("22".into(), TokenKind::Number));
        assert_eq!(t[1].1, TokenKind::Word);
    }

    #[test]
    fn apostrophes_and_hyphens_stay_inside_words() {
        let t = kinds("don't be half-hearted");
        assert_eq!(t[0].0, "don't");
        assert_eq!(t[2].0, "half-hearted");
    }

    #[test]
    fn punctuation_and_emoji_skipped() {
        let t = kinds("heart!!! ❤️ (liver)");
        assert_eq!(
            t,
            vec![
                ("heart".into(), TokenKind::Word),
                ("liver".into(), TokenKind::Word)
            ]
        );
    }

    #[test]
    fn spans_index_original_text() {
        let text = "Go #Heart now";
        let t = tokenize(text);
        assert_eq!(&text[t[1].start..t[1].end], "#Heart");
    }

    #[test]
    fn unicode_words_normalized() {
        let t = kinds("Doação de órgãos");
        assert_eq!(t[0].0, "doacao");
        assert_eq!(t[2].0, "orgaos");
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \n\t ").is_empty());
    }

    #[test]
    fn bare_sigils_are_skipped() {
        assert!(tokenize("# @ #!").is_empty());
    }

    #[test]
    fn trailing_token_at_end_of_string() {
        let t = tokenize("donate #liver");
        assert_eq!(t[1].text, "liver");
        assert_eq!(t[1].end, "donate #liver".len());
    }

    #[test]
    fn content_tokens_filter() {
        let toks = content_tokens("RT @user check https://x.co #kidney 22 donors");
        assert_eq!(toks, vec!["rt", "check", "kidney", "22", "donors"]);
    }
}
