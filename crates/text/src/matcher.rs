//! A from-scratch Aho–Corasick multi-pattern string matcher.
//!
//! The stream filter and the organ extractor both need to scan every
//! incoming tweet against dozens of patterns (context words, organ
//! lexicon). A single automaton pass per tweet keeps the collection
//! pipeline linear in the input size — the property that made the paper's
//! 385-day live collection feasible.
//!
//! The automaton operates on bytes of the (already normalized) haystack.
//! Matches can optionally be constrained to whole words via
//! [`AhoCorasick::find_words`], which checks that the match is not
//! embedded in a longer word-character run (so `heart` does not fire
//! inside `heartless` unless asked to).

use crate::normalize::is_word_char;
use std::collections::VecDeque;

/// A match reported by the automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the pattern (in construction order).
    pub pattern: usize,
    /// Byte offset of the match start in the haystack.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

const ALPHABET: usize = 256;

/// True when `[start, end)` sits on word boundaries in `haystack`:
/// the character before `start` and the character at `end` must not be
/// word characters.
fn word_aligned(haystack: &str, start: usize, end: usize) -> bool {
    let before_ok = start == 0
        || haystack[..start]
            .chars()
            .next_back()
            .is_some_and(|c| !is_word_char(c));
    let after_ok = end >= haystack.len()
        || haystack[end..]
            .chars()
            .next()
            .is_some_and(|c| !is_word_char(c));
    before_ok && after_ok
}

#[derive(Debug, Clone)]
struct Node {
    /// Dense next-state table over bytes (usize::MAX = no edge yet).
    next: Box<[u32; ALPHABET]>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node.
    output: Vec<u32>,
}

impl Node {
    fn new() -> Self {
        Self {
            next: Box::new([u32::MAX; ALPHABET]),
            fail: 0,
            output: Vec::new(),
        }
    }
}

/// The Aho–Corasick automaton.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    nodes: Vec<Node>,
    patterns: Vec<String>,
}

impl AhoCorasick {
    /// Builds the automaton from `patterns`. Empty patterns are rejected.
    ///
    /// # Panics
    /// Panics if any pattern is empty — the caller controls the lexicon,
    /// and an empty pattern would match everywhere.
    pub fn new<I, S>(patterns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let patterns: Vec<String> = patterns.into_iter().map(Into::into).collect();
        assert!(
            patterns.iter().all(|p| !p.is_empty()),
            "empty pattern in AhoCorasick"
        );

        let mut nodes = vec![Node::new()];
        // Trie construction.
        for (pi, pat) in patterns.iter().enumerate() {
            let mut cur = 0usize;
            for &b in pat.as_bytes() {
                let slot = nodes[cur].next[b as usize];
                cur = if slot == u32::MAX {
                    nodes.push(Node::new());
                    let id = (nodes.len() - 1) as u32;
                    nodes[cur].next[b as usize] = id;
                    id as usize
                } else {
                    slot as usize
                };
            }
            nodes[cur].output.push(pi as u32);
        }

        // BFS to set failure links and convert to a full goto function.
        let mut queue = VecDeque::new();
        for b in 0..ALPHABET {
            let child = nodes[0].next[b];
            if child == u32::MAX {
                nodes[0].next[b] = 0;
            } else {
                nodes[child as usize].fail = 0;
                queue.push_back(child);
            }
        }
        while let Some(state) = queue.pop_front() {
            let state = state as usize;
            for b in 0..ALPHABET {
                let child = nodes[state].next[b];
                let fail_next = nodes[nodes[state].fail as usize].next[b];
                if child == u32::MAX {
                    nodes[state].next[b] = fail_next;
                } else {
                    nodes[child as usize].fail = fail_next;
                    // Merge outputs of the failure target.
                    let inherited = nodes[fail_next as usize].output.clone();
                    nodes[child as usize].output.extend(inherited);
                    queue.push_back(child);
                }
            }
        }

        Self { nodes, patterns }
    }

    /// Number of patterns.
    pub fn pattern_count(&self) -> usize {
        self.patterns.len()
    }

    /// The pattern with index `i`.
    pub fn pattern(&self, i: usize) -> &str {
        &self.patterns[i]
    }

    /// Finds all (possibly overlapping) occurrences of any pattern.
    pub fn find_all(&self, haystack: &str) -> Vec<Match> {
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.as_bytes().iter().enumerate() {
            state = self.nodes[state as usize].next[b as usize];
            for &pi in &self.nodes[state as usize].output {
                let pat_len = self.patterns[pi as usize].len();
                out.push(Match {
                    pattern: pi as usize,
                    start: i + 1 - pat_len,
                    end: i + 1,
                });
            }
        }
        out
    }

    /// Like [`AhoCorasick::find_all`] but only reports matches aligned on
    /// word boundaries: the byte before `start` and the byte at `end`
    /// must not be word characters. Multi-word patterns ("organ donor")
    /// work naturally since spaces are not word characters.
    pub fn find_words(&self, haystack: &str) -> Vec<Match> {
        self.find_all(haystack)
            .into_iter()
            .filter(|m| word_aligned(haystack, m.start, m.end))
            .collect()
    }

    /// Calls `f` with the pattern index of every word-aligned match,
    /// in the order [`AhoCorasick::find_words`] would report them,
    /// without allocating a match vector. This is the stream hot
    /// path's extraction primitive.
    pub fn for_each_word_match<F: FnMut(usize)>(&self, haystack: &str, mut f: F) {
        let mut state = 0u32;
        for (i, &b) in haystack.as_bytes().iter().enumerate() {
            state = self.nodes[state as usize].next[b as usize];
            let node = &self.nodes[state as usize];
            for &pi in &node.output {
                let start = i + 1 - self.patterns[pi as usize].len();
                if word_aligned(haystack, start, i + 1) {
                    f(pi as usize);
                }
            }
        }
    }

    /// True when any pattern occurs in `haystack` (whole-word
    /// matching). Returns at the first word-aligned hit and allocates
    /// nothing, so filters over the stream hot path pay only for the
    /// prefix of the text they need.
    pub fn contains_word(&self, haystack: &str) -> bool {
        let mut state = 0u32;
        for (i, &b) in haystack.as_bytes().iter().enumerate() {
            state = self.nodes[state as usize].next[b as usize];
            let node = &self.nodes[state as usize];
            for &pi in &node.output {
                let start = i + 1 - self.patterns[pi as usize].len();
                if word_aligned(haystack, start, i + 1) {
                    return true;
                }
            }
        }
        false
    }

    /// Indices of the distinct patterns that occur (whole-word) in
    /// `haystack`, in first-occurrence order.
    pub fn matched_patterns(&self, haystack: &str) -> Vec<usize> {
        let mut seen = vec![false; self.patterns.len()];
        let mut out = Vec::new();
        for m in self.find_words(haystack) {
            if !seen[m.pattern] {
                seen[m.pattern] = true;
                out.push(m.pattern);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_pattern() {
        let ac = AhoCorasick::new(["kidney"]);
        let m = ac.find_all("need a kidney now");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].pattern, 0);
        assert_eq!(&"need a kidney now"[m[0].start..m[0].end], "kidney");
    }

    #[test]
    fn finds_overlapping_patterns() {
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        let matches = ac.find_all("ushers");
        let found: Vec<&str> = matches.iter().map(|m| ac.pattern(m.pattern)).collect();
        // Classic Aho-Corasick example: "ushers" contains she, he, hers.
        assert_eq!(found.len(), 3);
        assert!(found.contains(&"she"));
        assert!(found.contains(&"he"));
        assert!(found.contains(&"hers"));
    }

    #[test]
    fn word_boundaries_respected() {
        let ac = AhoCorasick::new(["heart"]);
        assert!(ac.contains_word("my heart aches"));
        assert!(ac.contains_word("heart"));
        assert!(ac.contains_word("(heart)"));
        assert!(!ac.contains_word("heartless"));
        assert!(!ac.contains_word("sweetheart"));
        assert!(!ac.contains_word("hearts")); // plural is a separate pattern
    }

    #[test]
    fn multiword_patterns() {
        let ac = AhoCorasick::new(["organ donor"]);
        assert!(ac.contains_word("register as an organ donor today"));
        assert!(!ac.contains_word("organ donors")); // 's' embeds the tail
        assert!(!ac.contains_word("organdonor"));
    }

    #[test]
    fn matched_patterns_dedup_in_order() {
        let ac = AhoCorasick::new(["a", "b"]);
        assert_eq!(ac.matched_patterns("b a b a"), vec![1, 0]);
    }

    #[test]
    fn no_match_in_empty_or_disjoint() {
        let ac = AhoCorasick::new(["liver"]);
        assert!(ac.find_all("").is_empty());
        assert!(ac.find_all("lungs and pancreas").is_empty());
    }

    #[test]
    fn duplicate_patterns_each_fire() {
        let ac = AhoCorasick::new(["x", "x"]);
        let m = ac.find_all("x");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn unicode_haystack_is_safe() {
        // Patterns are ASCII but the haystack has multi-byte chars around
        // them; byte-level matching must still be utf8-boundary safe in
        // the word check.
        let ac = AhoCorasick::new(["lung"]);
        assert!(ac.contains_word("❤️ lung ❤️"));
        assert!(!ac.contains_word("❤️lungs❤️"));
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn empty_pattern_rejected() {
        let _ = AhoCorasick::new([""]);
    }

    #[test]
    fn suffix_output_inheritance() {
        // "donation" contains pattern "nation" ending at the same spot.
        let ac = AhoCorasick::new(["donation", "nation"]);
        let m = ac.find_all("donation");
        assert_eq!(m.len(), 2);
        let words = ac.find_words("donation");
        // Only "donation" is word-aligned.
        assert_eq!(words.len(), 1);
        assert_eq!(ac.pattern(words[0].pattern), "donation");
    }

    #[test]
    fn for_each_word_match_agrees_with_find_words() {
        let ac = AhoCorasick::new(["heart", "he", "art", "organ donor"]);
        for text in [
            "my heart is an organ donor heart",
            "he said heartless art",
            "",
            "❤️ heart ❤️ he-art",
        ] {
            let expected: Vec<usize> = ac.find_words(text).iter().map(|m| m.pattern).collect();
            let mut got = Vec::new();
            ac.for_each_word_match(text, |pi| got.push(pi));
            assert_eq!(got, expected, "disagree on: {text}");
            assert_eq!(ac.contains_word(text), !expected.is_empty());
        }
    }

    #[test]
    fn pattern_accessors() {
        let ac = AhoCorasick::new(["a", "bc"]);
        assert_eq!(ac.pattern_count(), 2);
        assert_eq!(ac.pattern(1), "bc");
    }
}
