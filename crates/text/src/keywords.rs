//! The paper's keyword model: `Q = Context × Subject` (Fig. 1) and the
//! Twitter Stream API `track` filter semantics.
//!
//! The collection predicate guarantees every collected tweet contains at
//! least one *Context* word (an organ-donation term) **and** at least one
//! *Subject* word (an organ). We model each element of the Cartesian
//! product as a track phrase (Twitter's `track` parameter matches a
//! phrase when *all* of its terms appear in the tweet, in any order,
//! case-insensitively) — so matching any single `(context, subject)` pair
//! is exactly the paper's conjunction.

use crate::matcher::AhoCorasick;
use crate::normalize::{normalize, with_normalized};
use serde::{Deserialize, Serialize};

/// Anything that can accept/reject a tweet by its text — the interface a
/// stream endpoint filters through. Implemented by both [`TrackFilter`]
/// (faithful Twitter `track` semantics over the expanded Cartesian
/// product) and [`KeywordQuery`] (the equivalent two-automaton
/// conjunction, a single scan and much faster at collection scale).
pub trait TextFilter {
    /// True when the tweet should be delivered.
    fn accepts(&self, text: &str) -> bool;
}

impl TextFilter for TrackFilter {
    fn accepts(&self, text: &str) -> bool {
        self.matches(text)
    }
}

impl TextFilter for KeywordQuery {
    fn accepts(&self, text: &str) -> bool {
        self.matches(text)
    }
}

/// Context terms: the organ-donation vocabulary (left set of Fig. 1).
pub const CONTEXT_TERMS: &[&str] = &[
    "donor",
    "donors",
    "donate",
    "donated",
    "donating",
    "donation",
    "donations",
    "transplant",
    "transplants",
    "transplanted",
    "transplantation",
];

/// Subject terms: every surface form of the six organs (right set of
/// Fig. 1), flattened from [`crate::Organ::lexicon`].
pub fn subject_terms() -> Vec<&'static str> {
    crate::Organ::ALL
        .into_iter()
        .flat_map(|o| o.lexicon().iter().copied())
        .collect()
}

/// The compiled keyword query `Q = Context × Subject`.
///
/// Rather than materializing the full Cartesian product as phrases (the
/// Stream API would), the filter compiles one automaton per side and
/// requires a whole-word hit from each — semantically identical and a
/// single scan cheaper.
///
/// ```
/// use donorpulse_text::KeywordQuery;
///
/// let q = KeywordQuery::paper();
/// assert!(q.matches("be a kidney donor today"));
/// assert!(!q.matches("my heart is broken"));        // organ, no context
/// assert!(!q.matches("please donate to the drive")); // context, no organ
/// ```
#[derive(Debug, Clone)]
pub struct KeywordQuery {
    context: AhoCorasick,
    subject: AhoCorasick,
}

impl Default for KeywordQuery {
    fn default() -> Self {
        Self::paper()
    }
}

impl KeywordQuery {
    /// The paper's query: organ-donation context terms × organ lexicon.
    pub fn paper() -> Self {
        Self::new(CONTEXT_TERMS.iter().copied(), subject_terms())
    }

    /// A custom query from arbitrary context/subject sets.
    pub fn new<C, S>(context: C, subject: S) -> Self
    where
        C: IntoIterator,
        C::Item: Into<String>,
        S: IntoIterator,
        S::Item: Into<String>,
    {
        Self {
            context: AhoCorasick::new(context.into_iter().map(|s| normalize(&s.into()))),
            subject: AhoCorasick::new(subject.into_iter().map(|s| normalize(&s.into()))),
        }
    }

    /// True when the tweet text satisfies `Q`: at least one context term
    /// and at least one subject term, whole-word, case-insensitive.
    ///
    /// Runs allocation-free in steady state: normalization reuses a
    /// thread-local buffer and each automaton pass early-exits at its
    /// first word-aligned hit — this predicate gates every tweet on
    /// the stream hot path.
    pub fn matches(&self, raw_text: &str) -> bool {
        with_normalized(raw_text, |text| {
            self.context.contains_word(text) && self.subject.contains_word(text)
        })
    }

    /// Number of `(context, subject)` pairs in the logical Cartesian
    /// product — the size of `Q` as the paper defines it.
    pub fn cartesian_size(&self) -> usize {
        self.context.pattern_count() * self.subject.pattern_count()
    }
}

/// A faithful model of the Twitter Stream API `track` parameter, used by
/// the simulated stream endpoint.
///
/// Each track entry is a *phrase*; a tweet matches the filter when, for
/// at least one phrase, **every** term of that phrase occurs in the tweet
/// (whole-word, any order, case-insensitive). This is the documented
/// behaviour of the real endpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrackFilter {
    phrases: Vec<Vec<String>>,
}

impl TrackFilter {
    /// Compiles a track filter from phrases like `"kidney donor"`.
    pub fn new<I, S>(phrases: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let phrases = phrases
            .into_iter()
            .map(|p| {
                normalize(p.as_ref())
                    .split(' ')
                    .filter(|t| !t.is_empty())
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .filter(|terms| !terms.is_empty())
            .collect();
        Self { phrases }
    }

    /// Builds the full Cartesian-product track list of the paper's query:
    /// one two-term phrase per `(context, subject)` pair.
    pub fn paper_cartesian() -> Self {
        let mut phrases = Vec::new();
        for c in CONTEXT_TERMS {
            for s in subject_terms() {
                phrases.push(format!("{c} {s}"));
            }
        }
        Self::new(phrases)
    }

    /// Number of phrases tracked.
    pub fn len(&self) -> usize {
        self.phrases.len()
    }

    /// True when no phrases are tracked (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.phrases.is_empty()
    }

    /// Twitter `track` semantics: any phrase fully present.
    pub fn matches(&self, raw_text: &str) -> bool {
        if self.phrases.is_empty() {
            return false;
        }
        let tokens: std::collections::HashSet<String> =
            crate::token::content_tokens(raw_text).into_iter().collect();
        self.phrases
            .iter()
            .any(|phrase| phrase.iter().all(|term| tokens.contains(term)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_requires_both_sides() {
        let q = KeywordQuery::paper();
        assert!(q.matches("Be an organ donor, give a kidney"));
        assert!(q.matches("KIDNEY DONATION saves lives"));
        assert!(q.matches("she had a liver transplant yesterday"));
        // Context without subject.
        assert!(!q.matches("please donate to our charity"));
        // Subject without context.
        assert!(!q.matches("my heart is broken"));
        // Neither.
        assert!(!q.matches("good morning everyone"));
    }

    #[test]
    fn query_is_whole_word() {
        let q = KeywordQuery::paper();
        assert!(!q.matches("heartless dictator transplanting nothing"));
        // "transplanting" is not in the context list, "heartless" embeds
        // heart — neither side fires.
    }

    #[test]
    fn synonyms_count_as_subjects() {
        let q = KeywordQuery::paper();
        assert!(q.matches("renal transplant waiting list grows"));
        assert!(q.matches("pulmonary transplantation program expanded"));
    }

    #[test]
    fn hashtags_match_via_normalization() {
        let q = KeywordQuery::paper();
        // The '#' is not a word character, so the tag body is word-aligned.
        assert!(q.matches("#donate your #kidney"));
    }

    #[test]
    fn cartesian_size_matches_product() {
        let q = KeywordQuery::paper();
        assert_eq!(
            q.cartesian_size(),
            CONTEXT_TERMS.len() * subject_terms().len()
        );
    }

    #[test]
    fn custom_query() {
        let q = KeywordQuery::new(["give"], ["blood"]);
        assert!(q.matches("Give Blood today"));
        assert!(!q.matches("give money today"));
    }

    #[test]
    fn track_filter_all_terms_any_order() {
        let f = TrackFilter::new(["kidney donor"]);
        assert!(f.matches("donor of a kidney"));
        assert!(f.matches("kidney needed, any donor out there?"));
        assert!(!f.matches("kidney needed"));
        assert!(!f.matches("donor needed"));
    }

    #[test]
    fn track_filter_multiple_phrases_or() {
        let f = TrackFilter::new(["heart donor", "liver transplant"]);
        assert!(f.matches("heart donor registered"));
        assert!(f.matches("liver transplant done"));
    }

    #[test]
    fn track_filter_cross_phrase_terms_do_not_combine() {
        let f = TrackFilter::new(["heart donor", "liver transplant"]);
        // "heart" from phrase 1 + "transplant" from phrase 2 is NOT a match.
        assert!(!f.matches("heart transplant support group"));
    }

    #[test]
    fn paper_cartesian_has_full_product() {
        let f = TrackFilter::paper_cartesian();
        assert_eq!(f.len(), CONTEXT_TERMS.len() * subject_terms().len());
        assert!(!f.is_empty());
        assert!(f.matches("kidney donation drive"));
        assert!(!f.matches("kidney stones hurt"));
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = TrackFilter::new(Vec::<String>::new());
        assert!(f.is_empty());
        assert!(!f.matches("anything at all"));
        let blank = TrackFilter::new(["   "]);
        assert!(blank.is_empty());
    }

    #[test]
    fn track_semantics_equal_keyword_query_on_paper_terms() {
        // The logical conjunction filter and the expanded Cartesian track
        // list accept the same tweets (for word-token text).
        let q = KeywordQuery::paper();
        let f = TrackFilter::paper_cartesian();
        for text in [
            "be a kidney donor",
            "liver transplantation is amazing",
            "donate your lungs",
            "heart surgery went fine",
            "donated blood today",
            "pancreas transplant list",
        ] {
            assert_eq!(q.matches(text), f.matches(text), "disagree on: {text}");
        }
    }
}
