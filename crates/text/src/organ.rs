//! The six major solid organs and their mention lexicon.
//!
//! The paper characterizes conversations about the six most-transplanted
//! solid organs in the USA: heart, kidney, liver, lung, pancreas, and
//! intestine. Each organ owns a small lexicon of surface forms (plural,
//! hashtag-style compounds are handled by the tokenizer, and common
//! adjectival/medical forms such as *renal* or *hepatic* are included so
//! clinically-phrased tweets still count).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the six major solid transplant organs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Organ {
    /// Heart — the most mentioned organ on Twitter in the paper's corpus.
    Heart,
    /// Kidney — the most transplanted organ in the USA.
    Kidney,
    /// Liver.
    Liver,
    /// Lung.
    Lung,
    /// Pancreas.
    Pancreas,
    /// Intestine — the least mentioned and least transplanted.
    Intestine,
}

impl Organ {
    /// All six organs in canonical order (the column order of `Û` and `K`).
    pub const ALL: [Organ; 6] = [
        Organ::Heart,
        Organ::Kidney,
        Organ::Liver,
        Organ::Lung,
        Organ::Pancreas,
        Organ::Intestine,
    ];

    /// Number of organs (the `n` of the paper's `m × n` matrices).
    pub const COUNT: usize = 6;

    /// Canonical column index of this organ.
    pub fn index(self) -> usize {
        match self {
            Organ::Heart => 0,
            Organ::Kidney => 1,
            Organ::Liver => 2,
            Organ::Lung => 3,
            Organ::Pancreas => 4,
            Organ::Intestine => 5,
        }
    }

    /// The organ with canonical index `i`.
    pub fn from_index(i: usize) -> Option<Organ> {
        Organ::ALL.get(i).copied()
    }

    /// Lowercase canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Organ::Heart => "heart",
            Organ::Kidney => "kidney",
            Organ::Liver => "liver",
            Organ::Lung => "lung",
            Organ::Pancreas => "pancreas",
            Organ::Intestine => "intestine",
        }
    }

    /// Surface forms that count as a mention of this organ. All lowercase
    /// ASCII; matching happens on normalized text.
    pub fn lexicon(self) -> &'static [&'static str] {
        match self {
            Organ::Heart => &["heart", "hearts", "cardiac"],
            Organ::Kidney => &["kidney", "kidneys", "renal"],
            Organ::Liver => &["liver", "livers", "hepatic"],
            Organ::Lung => &["lung", "lungs", "pulmonary"],
            Organ::Pancreas => &["pancreas", "pancreatic"],
            Organ::Intestine => &["intestine", "intestines", "intestinal", "bowel"],
        }
    }

    /// Resolves a normalized token to an organ, if it is in any lexicon.
    pub fn from_token(token: &str) -> Option<Organ> {
        Organ::ALL
            .into_iter()
            .find(|o| o.lexicon().contains(&token))
    }

    /// Number of transplants performed in the USA in 2012 (OPTN/SRTR 2012
    /// Annual Data Report), the external correlate of Fig. 2(a).
    pub fn transplants_2012(self) -> u64 {
        match self {
            Organ::Heart => 2_378,
            Organ::Kidney => 16_487,
            Organ::Liver => 6_256,
            Organ::Lung => 1_754,
            Organ::Pancreas => 1_043,
            Organ::Intestine => 106,
        }
    }
}

impl fmt::Display for Organ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Organ {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_lowercase();
        Organ::from_token(&lower).ok_or_else(|| format!("unknown organ: {s}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, organ) in Organ::ALL.into_iter().enumerate() {
            assert_eq!(organ.index(), i);
            assert_eq!(Organ::from_index(i), Some(organ));
        }
        assert_eq!(Organ::from_index(6), None);
        assert_eq!(Organ::ALL.len(), Organ::COUNT);
    }

    #[test]
    fn lexicon_resolves_tokens() {
        assert_eq!(Organ::from_token("kidneys"), Some(Organ::Kidney));
        assert_eq!(Organ::from_token("renal"), Some(Organ::Kidney));
        assert_eq!(Organ::from_token("hepatic"), Some(Organ::Liver));
        assert_eq!(Organ::from_token("pulmonary"), Some(Organ::Lung));
        assert_eq!(Organ::from_token("bowel"), Some(Organ::Intestine));
        assert_eq!(Organ::from_token("spleen"), None);
    }

    #[test]
    fn lexicons_are_disjoint_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for organ in Organ::ALL {
            for term in organ.lexicon() {
                assert_eq!(&term.to_lowercase(), term, "{term} not lowercase");
                assert!(seen.insert(*term), "{term} appears in two lexicons");
            }
        }
    }

    #[test]
    fn from_str_parses_names_and_synonyms() {
        assert_eq!("Heart".parse::<Organ>().unwrap(), Organ::Heart);
        assert_eq!("RENAL".parse::<Organ>().unwrap(), Organ::Kidney);
        assert!("brain".parse::<Organ>().is_err());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Organ::Pancreas.to_string(), "pancreas");
    }

    #[test]
    fn transplant_counts_match_optn_2012_ordering() {
        // Kidney > liver > heart > lung > pancreas > intestine — the
        // registry ordering the paper contrasts with Twitter popularity.
        let t: Vec<u64> = Organ::ALL.iter().map(|o| o.transplants_2012()).collect();
        assert!(t[Organ::Kidney.index()] > t[Organ::Liver.index()]);
        assert!(t[Organ::Liver.index()] > t[Organ::Heart.index()]);
        assert!(t[Organ::Heart.index()] > t[Organ::Lung.index()]);
        assert!(t[Organ::Lung.index()] > t[Organ::Pancreas.index()]);
        assert!(t[Organ::Pancreas.index()] > t[Organ::Intestine.index()]);
    }
}
