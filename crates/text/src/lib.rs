//! Tweet text processing for `donorpulse`.
//!
//! The paper collects tweets with the *Twitter Stream API* using a
//! predicate set `Q = Context × Subject` (Fig. 1): the Cartesian product
//! of organ-donation context words and organ names. Every collected tweet
//! therefore contains at least one Context word and at least one Subject
//! word. This crate reimplements that text machinery from scratch:
//!
//! * [`token`] — a tweet-aware tokenizer (hashtags, mentions, URLs,
//!   numbers, words) over arbitrary unicode;
//! * [`normalize`] — case folding, accent stripping, and whitespace
//!   normalization applied before any matching;
//! * [`matcher`] — a from-scratch Aho–Corasick multi-pattern automaton
//!   used to scan hundreds of thousands of tweets per second;
//! * [`keywords`] — the Context/Subject sets and the `Q` filter exactly as
//!   defined in the paper;
//! * [`organ`] — the six major solid organs with their mention lexicon
//!   (plurals, hashtag forms, adjectival forms such as *renal*);
//! * [`extract`] — per-tweet organ mention extraction, the raw signal
//!   behind the attention matrix `Û`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod keywords;
pub mod matcher;
pub mod normalize;
pub mod organ;
pub mod token;

pub use extract::{extract_mentions, MentionCounts};
pub use keywords::{KeywordQuery, TextFilter, TrackFilter};
pub use matcher::AhoCorasick;
pub use organ::Organ;
pub use token::{tokenize, Token, TokenKind};
