//! Organ mention extraction — the raw signal behind the attention matrix.
//!
//! For each tweet the extractor counts how many times each organ is
//! mentioned (whole-word over the organ lexicon). The paper reports 1.03
//! organs mentioned per tweet and 1.13 per user (Table I): most tweets
//! talk about a single organ, and multi-organ attention mostly emerges
//! when tweets are aggregated per user (Fig. 2b) — which is exactly why
//! the characterization is user-based.

use crate::matcher::AhoCorasick;
use crate::normalize::with_normalized;
use crate::organ::Organ;
use serde::{Deserialize, Serialize};

/// Per-organ mention counts for one piece of text (or one user's
/// aggregated texts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MentionCounts {
    counts: [u32; Organ::COUNT],
}

impl MentionCounts {
    /// An all-zero count vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count for one organ.
    pub fn count(&self, organ: Organ) -> u32 {
        self.counts[organ.index()]
    }

    /// Adds `delta` mentions of `organ`.
    pub fn add(&mut self, organ: Organ, delta: u32) {
        self.counts[organ.index()] += delta;
    }

    /// Merges another count vector into this one (used when aggregating a
    /// user's tweets).
    pub fn merge(&mut self, other: &MentionCounts) {
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }

    /// Total mentions across organs.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Number of *distinct* organs mentioned — the x axis of Fig. 2(b).
    pub fn distinct(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// True when nothing was mentioned.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// The organ with the most mentions (first in canonical order on
    /// ties), or `None` when empty — Eq. 1's `argmax`.
    pub fn dominant(&self) -> Option<Organ> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for i in 1..Organ::COUNT {
            if self.counts[i] > self.counts[best] {
                best = i;
            }
        }
        Organ::from_index(best)
    }

    /// Raw counts in canonical organ order — one row of the (un-normalized)
    /// contingency matrix `U`.
    pub fn as_array(&self) -> [u32; Organ::COUNT] {
        self.counts
    }

    /// Normalized attention distribution (row of `Û`), or `None` when the
    /// vector is empty.
    pub fn to_distribution(&self) -> Option<[f64; Organ::COUNT]> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let mut out = [0.0; Organ::COUNT];
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64 / total as f64;
        }
        Some(out)
    }
}

impl FromIterator<Organ> for MentionCounts {
    fn from_iter<I: IntoIterator<Item = Organ>>(iter: I) -> Self {
        let mut mc = MentionCounts::new();
        for organ in iter {
            mc.add(organ, 1);
        }
        mc
    }
}

/// A reusable organ-mention extractor (compile the automaton once, scan
/// many tweets).
#[derive(Debug, Clone)]
pub struct OrganExtractor {
    automaton: AhoCorasick,
    organ_of_pattern: Vec<Organ>,
}

impl Default for OrganExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl OrganExtractor {
    /// Builds the extractor over the full organ lexicon.
    pub fn new() -> Self {
        let mut patterns = Vec::new();
        let mut organ_of_pattern = Vec::new();
        for organ in Organ::ALL {
            for term in organ.lexicon() {
                patterns.push(*term);
                organ_of_pattern.push(organ);
            }
        }
        Self {
            automaton: AhoCorasick::new(patterns),
            organ_of_pattern,
        }
    }

    /// Builds an extractor over custom per-slot lexicons — the campaign
    /// registry maps each named category onto one of the six canonical
    /// [`Organ`] slots and supplies its surface forms here. Terms are
    /// normalized the same way scanned text is, so manifest authors may
    /// write them in any case. Slots beyond `Organ::COUNT` are ignored;
    /// an empty term list leaves its slot permanently zero.
    pub fn with_lexicons<'a, I, T>(lexicons: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = &'a str>,
    {
        let mut patterns = Vec::new();
        let mut organ_of_pattern = Vec::new();
        for (slot, terms) in lexicons.into_iter().take(Organ::COUNT).enumerate() {
            let organ = Organ::from_index(slot).expect("slot bounded by take()");
            for term in terms {
                patterns.push(crate::normalize::normalize(term));
                organ_of_pattern.push(organ);
            }
        }
        Self {
            automaton: AhoCorasick::new(patterns),
            organ_of_pattern,
        }
    }

    /// Counts organ mentions in `raw_text` (every occurrence counts, so a
    /// tweet saying "kidney kidney kidney" records three mentions).
    ///
    /// Allocation-free in steady state: normalization reuses a
    /// thread-local buffer and the automaton walk reports matches
    /// through a callback instead of a match vector.
    pub fn extract(&self, raw_text: &str) -> MentionCounts {
        with_normalized(raw_text, |text| {
            let mut counts = MentionCounts::new();
            self.automaton.for_each_word_match(text, |pi| {
                counts.add(self.organ_of_pattern[pi], 1);
            });
            counts
        })
    }
}

/// One-shot convenience wrapper around [`OrganExtractor`].
pub fn extract_mentions(raw_text: &str) -> MentionCounts {
    OrganExtractor::new().extract(raw_text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_organ_single_mention() {
        let mc = extract_mentions("I registered as a kidney donor");
        assert_eq!(mc.count(Organ::Kidney), 1);
        assert_eq!(mc.total(), 1);
        assert_eq!(mc.distinct(), 1);
        assert_eq!(mc.dominant(), Some(Organ::Kidney));
    }

    #[test]
    fn multiple_organs_one_tweet() {
        let mc = extract_mentions("heart and lung transplant, also a liver");
        assert_eq!(mc.count(Organ::Heart), 1);
        assert_eq!(mc.count(Organ::Lung), 1);
        assert_eq!(mc.count(Organ::Liver), 1);
        assert_eq!(mc.distinct(), 3);
    }

    #[test]
    fn repeated_mentions_counted() {
        let mc = extract_mentions("kidney kidney KIDNEYS");
        assert_eq!(mc.count(Organ::Kidney), 3);
    }

    #[test]
    fn synonyms_resolve() {
        let mc = extract_mentions("renal failure and hepatic disease, pulmonary too");
        assert_eq!(mc.count(Organ::Kidney), 1);
        assert_eq!(mc.count(Organ::Liver), 1);
        assert_eq!(mc.count(Organ::Lung), 1);
    }

    #[test]
    fn embedded_words_do_not_count() {
        let mc = extract_mentions("heartless sweetheart hearty");
        assert!(mc.is_empty());
        assert_eq!(mc.dominant(), None);
    }

    #[test]
    fn hashtag_mentions_count() {
        let mc = extract_mentions("#kidney #HeartTransplant heart");
        // "#kidney" -> kidney; "#HeartTransplant" normalizes to
        // "hearttransplant" (embedded, no match); bare "heart" counts.
        assert_eq!(mc.count(Organ::Kidney), 1);
        assert_eq!(mc.count(Organ::Heart), 1);
    }

    #[test]
    fn dominant_tie_break_is_canonical_order() {
        let mut mc = MentionCounts::new();
        mc.add(Organ::Liver, 2);
        mc.add(Organ::Kidney, 2);
        // Kidney precedes Liver in canonical order.
        assert_eq!(mc.dominant(), Some(Organ::Kidney));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = extract_mentions("kidney donor");
        let b = extract_mentions("kidney and heart donation");
        a.merge(&b);
        assert_eq!(a.count(Organ::Kidney), 2);
        assert_eq!(a.count(Organ::Heart), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn distribution_normalizes() {
        let mut mc = MentionCounts::new();
        mc.add(Organ::Heart, 3);
        mc.add(Organ::Lung, 1);
        let d = mc.to_distribution().unwrap();
        assert!((d[Organ::Heart.index()] - 0.75).abs() < 1e-12);
        assert!((d[Organ::Lung.index()] - 0.25).abs() < 1e-12);
        assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(MentionCounts::new().to_distribution(), None);
    }

    #[test]
    fn from_iterator() {
        let mc: MentionCounts = [Organ::Heart, Organ::Heart, Organ::Liver]
            .into_iter()
            .collect();
        assert_eq!(mc.count(Organ::Heart), 2);
        assert_eq!(mc.count(Organ::Liver), 1);
    }

    #[test]
    fn extractor_is_reusable() {
        let ex = OrganExtractor::new();
        assert_eq!(ex.extract("lung").count(Organ::Lung), 1);
        assert_eq!(ex.extract("liver").count(Organ::Liver), 1);
    }
}
