//! Text normalization applied before keyword matching.
//!
//! Tweets are messy: mixed case, curly quotes, accents, decorative
//! unicode. Matching happens over a normalized view — lowercased,
//! common Latin diacritics folded to ASCII, fancy punctuation mapped to
//! its plain form, and whitespace collapsed — while the original text is
//! left untouched for display.

/// Folds a single character: lowercases and strips common Latin
/// diacritics. Characters without a fold are returned unchanged
/// (lowercased where possible).
pub fn fold_char(c: char) -> char {
    let lower = c.to_lowercase().next().unwrap_or(c);
    match lower {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'ý' | 'ÿ' => 'y',
        'ñ' => 'n',
        'ç' => 'c',
        '’' | '‘' | 'ʼ' => '\'',
        '“' | '”' => '"',
        '–' | '—' | '‐' | '‑' => '-',
        other => other,
    }
}

/// Normalizes a whole string: per-char folding plus whitespace collapse
/// (any run of unicode whitespace becomes a single ASCII space, leading
/// and trailing whitespace removed).
pub fn normalize(text: &str) -> String {
    let mut out = String::new();
    normalize_into(text, &mut out);
    out
}

/// [`normalize`] into a caller-owned buffer (cleared first), so a hot
/// loop can normalize tweet after tweet without allocating.
pub fn normalize_into(text: &str, out: &mut String) {
    out.clear();
    out.reserve(text.len());
    let mut last_was_space = true; // trims leading whitespace
    for c in text.chars() {
        if c.is_whitespace() {
            if !last_was_space {
                out.push(' ');
                last_was_space = true;
            }
        } else {
            out.push(fold_char(c));
            last_was_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
}

thread_local! {
    /// Reusable normalization buffers for [`with_normalized`]. A small
    /// stack (not a single slot) so nested calls stay allocation-free
    /// instead of panicking on a double borrow.
    static SCRATCH: std::cell::RefCell<Vec<String>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` over the normalized form of `text`, reusing a
/// thread-local buffer — the steady-state cost is the fold pass, with
/// no per-call allocation. This is what the stream hot path's filter
/// and extractor normalize through.
pub fn with_normalized<R>(text: &str, f: impl FnOnce(&str) -> R) -> R {
    let mut buf = SCRATCH.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    normalize_into(text, &mut buf);
    let out = f(&buf);
    SCRATCH.with(|s| s.borrow_mut().push(buf));
    out
}

/// True for characters that can appear *inside* a word token: letters,
/// digits, apostrophes and hyphens (so "don't" and "e-mail" stay whole).
pub fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '-' || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases() {
        assert_eq!(normalize("HeArT Donor"), "heart donor");
    }

    #[test]
    fn strips_accents() {
        assert_eq!(normalize("José Muñoz çédille"), "jose munoz cedille");
        assert_eq!(normalize("NAÏVE RÉSUMÉ"), "naive resume");
    }

    #[test]
    fn folds_fancy_punctuation() {
        assert_eq!(normalize("don’t — “quote”"), "don't - \"quote\"");
    }

    #[test]
    fn collapses_whitespace() {
        assert_eq!(normalize("  a\t\tb\n\nc  "), "a b c");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize("   "), "");
    }

    #[test]
    fn preserves_emoji_and_symbols() {
        assert_eq!(normalize("I ❤ my donor"), "i ❤ my donor");
    }

    #[test]
    fn word_chars() {
        assert!(is_word_char('a'));
        assert!(is_word_char('9'));
        assert!(is_word_char('\''));
        assert!(is_word_char('-'));
        assert!(is_word_char('_'));
        assert!(!is_word_char(' '));
        assert!(!is_word_char('#'));
        assert!(!is_word_char('!'));
    }

    #[test]
    fn idempotent() {
        let once = normalize("Liver  TRANSPLANT… très bien");
        assert_eq!(normalize(&once), once);
    }

    #[test]
    fn scratch_normalization_matches_and_nests() {
        let outer = "HeArT  Donor";
        let inner = "José  ❤";
        let got = with_normalized(outer, |a| {
            let a = a.to_string();
            with_normalized(inner, |b| (a.clone(), b.to_string()))
        });
        assert_eq!(got.0, normalize(outer));
        assert_eq!(got.1, normalize(inner));
        // Reuses the buffer: still correct after the stack warms up.
        assert_eq!(with_normalized("  x  ", |s| s.to_string()), "x");
    }
}
