//! The simulated Twitter Stream API endpoint.
//!
//! The paper collects through the public Stream API with a `track`
//! predicate (Fig. 1's `Q`). This module reproduces that endpoint's
//! observable behaviour over the simulated firehose:
//!
//! * `track` filtering with the documented all-terms-of-any-phrase
//!   semantics ([`donorpulse_text::TrackFilter`]);
//! * optional random sampling (the real endpoint delivers at most ~1% of
//!   the firehose; our organ-donation volume is far below the cap, but
//!   the knob exists and is exercised in tests);
//! * delivery statistics (delivered / filtered / sampled-out), matching
//!   the bookkeeping a collection pipeline needs for Table I's
//!   "134,986 out of 975,021" accounting.

use crate::generator::TwitterSimulation;
use crate::tweet::Tweet;
use crate::wire::WireMode;
use donorpulse_text::{TextFilter, TrackFilter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters describing one stream session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Tweets delivered to the consumer.
    pub delivered: u64,
    /// Tweets dropped by the track filter.
    pub filtered_out: u64,
    /// Tweets dropped by sampling.
    pub sampled_out: u64,
}

/// A streaming connection over the simulated firehose.
pub struct StreamApi<'a> {
    sim: &'a TwitterSimulation,
    pos: usize,
    track: Option<Box<dyn TextFilter + Send>>,
    sample_rate: f64,
    sampling_rng: StdRng,
    stats: StreamStats,
}

impl<'a> StreamApi<'a> {
    /// Opens a connection over the full firehose (no filter).
    pub fn new(sim: &'a TwitterSimulation) -> Self {
        Self {
            sim,
            pos: 0,
            track: None,
            sample_rate: 1.0,
            sampling_rng: StdRng::seed_from_u64(sim.config().seed ^ 0x57AE_AA11),
            stats: StreamStats::default(),
        }
    }

    /// Applies a `track` filter (consumes and returns the connection,
    /// mirroring connection parameters being fixed at connect time).
    pub fn with_track(self, track: TrackFilter) -> Self {
        self.with_filter(Box::new(track))
    }

    /// Applies any [`TextFilter`] — e.g. the fast
    /// [`donorpulse_text::KeywordQuery`] equivalent of the paper's
    /// Cartesian track list.
    pub fn with_filter(mut self, filter: Box<dyn TextFilter + Send>) -> Self {
        self.track = Some(filter);
        self
    }

    /// Applies a delivery sampling rate in `(0, 1]`.
    ///
    /// # Panics
    /// Panics when the rate is outside `(0, 1]`.
    pub fn with_sample_rate(mut self, rate: f64) -> Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "sample rate must be in (0, 1], got {rate}"
        );
        self.sample_rate = rate;
        self
    }

    /// Session statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Switches the connection to byte-level delivery: every tweet is
    /// handed out as an encoded [`TweetFrame`](crate::wire::TweetFrame)
    /// — what a real endpoint puts on the socket. The fault adapter
    /// ([`crate::fault::FaultyStreamApi`]) speaks the same framing.
    pub fn frames(self) -> FrameStream<'a> {
        self.frames_with(WireMode::V1)
    }

    /// Byte-level delivery in an explicit wire mode: v1 emits one
    /// [`TweetFrame`](crate::wire::TweetFrame) per tweet, v2 packs up
    /// to `batch` tweets per [`BatchFrame`](crate::wire::BatchFrame)
    /// (the final frame may be shorter).
    pub fn frames_with(self, mode: WireMode) -> FrameStream<'a> {
        FrameStream { inner: self, mode }
    }
}

impl Iterator for StreamApi<'_> {
    type Item = Tweet;

    fn next(&mut self) -> Option<Tweet> {
        while self.pos < self.sim.firehose_len() {
            let tweet = self.sim.realize(self.pos);
            self.pos += 1;
            if let Some(track) = &self.track {
                if !track.accepts(&tweet.text) {
                    self.stats.filtered_out += 1;
                    continue;
                }
            }
            if self.sample_rate < 1.0 && !self.sampling_rng.gen_bool(self.sample_rate) {
                self.stats.sampled_out += 1;
                continue;
            }
            self.stats.delivered += 1;
            return Some(tweet);
        }
        None
    }
}

/// A [`StreamApi`] connection delivering encoded wire frames instead
/// of parsed tweets (see [`StreamApi::frames`] and
/// [`StreamApi::frames_with`]).
pub struct FrameStream<'a> {
    inner: StreamApi<'a>,
    mode: WireMode,
}

impl FrameStream<'_> {
    /// Session statistics so far.
    pub fn stats(&self) -> StreamStats {
        self.inner.stats()
    }
}

impl Iterator for FrameStream<'_> {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Vec<u8>> {
        match self.mode {
            WireMode::V1 => self
                .inner
                .next()
                .map(|t| crate::wire::TweetFrame::encode(&t)),
            WireMode::V2 { batch } => {
                let cap = batch.clamp(1, crate::wire::MAX_BATCH);
                let mut tweets = Vec::with_capacity(cap);
                while tweets.len() < cap {
                    match self.inner.next() {
                        Some(t) => tweets.push(t),
                        None => break,
                    }
                }
                if tweets.is_empty() {
                    None
                } else {
                    Some(crate::wire::BatchFrame::encode(&tweets))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmodel::GeneratorConfig;

    fn sim() -> TwitterSimulation {
        let mut cfg = GeneratorConfig::paper_scaled(0.002); // ~1k users
        cfg.seed = 7;
        TwitterSimulation::generate(cfg).expect("valid")
    }

    #[test]
    fn firehose_delivers_everything_in_order() {
        let s = sim();
        let tweets: Vec<Tweet> = s.stream().collect();
        assert_eq!(tweets.len(), s.firehose_len());
        for pair in tweets.windows(2) {
            assert!(pair[0].created_at <= pair[1].created_at);
        }
    }

    #[test]
    fn track_filter_keeps_only_on_topic() {
        let s = sim();
        let mut conn = s.stream().with_track(TrackFilter::paper_cartesian());
        let collected: Vec<Tweet> = conn.by_ref().collect();
        assert_eq!(collected.len(), s.on_topic_len());
        let stats = conn.stats();
        assert_eq!(stats.delivered as usize, collected.len());
        assert_eq!(
            stats.delivered + stats.filtered_out,
            s.firehose_len() as u64
        );
        assert_eq!(stats.sampled_out, 0);
    }

    #[test]
    fn sampling_reduces_delivery() {
        let s = sim();
        let mut conn = s.stream().with_sample_rate(0.25);
        let n = conn.by_ref().count();
        let expect = s.firehose_len() as f64 * 0.25;
        assert!(
            (n as f64 - expect).abs() < expect * 0.2 + 30.0,
            "sampled {n}, expected ~{expect}"
        );
        assert_eq!(
            conn.stats().delivered + conn.stats().sampled_out,
            s.firehose_len() as u64
        );
    }

    #[test]
    #[should_panic(expected = "sample rate must be in (0, 1]")]
    fn invalid_sample_rate_panics() {
        let s = sim();
        let _ = s.stream().with_sample_rate(0.0);
    }

    #[test]
    fn stream_is_replayable() {
        let s = sim();
        let a: Vec<Tweet> = s.stream().take(50).collect();
        let b: Vec<Tweet> = s.stream().take(50).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn frames_decode_back_to_the_typed_stream() {
        let s = sim();
        let typed: Vec<Tweet> = s
            .stream()
            .with_track(TrackFilter::paper_cartesian())
            .collect();
        let mut framed = s
            .stream()
            .with_track(TrackFilter::paper_cartesian())
            .frames();
        let decoded: Vec<Tweet> = framed
            .by_ref()
            .map(|f| crate::wire::TweetFrame::decode(&f).expect("clean stream"))
            .collect();
        assert_eq!(decoded, typed);
        assert_eq!(framed.stats().delivered as usize, typed.len());
    }

    #[test]
    fn v2_batched_frames_decode_back_to_the_typed_stream() {
        let s = sim();
        let typed: Vec<Tweet> = s
            .stream()
            .with_track(TrackFilter::paper_cartesian())
            .collect();
        let mut framed = s
            .stream()
            .with_track(TrackFilter::paper_cartesian())
            .frames_with(WireMode::V2 { batch: 7 });
        let mut decoded = Vec::new();
        let mut frames = 0usize;
        for frame in framed.by_ref() {
            let batch = crate::wire::BatchFrame::decode(&frame).expect("clean stream");
            assert!(batch.len() <= 7, "batch of {} exceeds cap", batch.len());
            decoded.extend(batch);
            frames += 1;
        }
        assert_eq!(decoded, typed);
        // Full batches plus at most one short tail.
        assert_eq!(frames, typed.len().div_ceil(7));
        assert_eq!(framed.stats().delivered as usize, typed.len());
    }
}
