//! Template-based tweet text generation.
//!
//! On-topic tweets must pass the paper's filter `Q = Context × Subject`
//! (contain ≥1 donation-context word and ≥1 organ word); chatter tweets
//! are realistic near-misses the Stream API filter must reject — organ
//! words without donation context ("my heart is broken"), donation
//! context without organs ("donate to our fundraiser"), and generic
//! noise. The split exercises the real collection code path instead of
//! assuming pre-filtered input.

use donorpulse_text::Organ;
use rand::Rng;

/// On-topic templates mentioning exactly one organ. `{o}` is replaced by
/// an organ surface form.
const SINGLE_ORGAN_TEMPLATES: &[&str] = &[
    "just registered as a {o} donor, you should too",
    "my mom needs a {o} transplant, please keep her in your thoughts",
    "proud to support {o} donation awareness this month",
    "22 people die daily waiting, sign up to donate your {o}",
    "celebrating 5 years since my {o} transplant!",
    "who knew one {o} donor could save a life? register today",
    "the {o} transplant waiting list keeps growing, be a donor",
    "huge thanks to the surgeons, the {o} transplantation went great",
    "share to honor every {o} donor out there",
    "spoke at school today about {o} donation, kids asked great questions",
    "donate life: a single {o} donor can change everything",
    "waiting for the call... {o} transplant list day 200",
    "my cousin just became a living {o} donor, so proud",
    "research on {o} transplants has come so far, donate to support it",
    "hospital says the donated {o} is a match!!! surgery tomorrow",
    "april is donate life month, talk to your family about {o} donation",
    "my license now says {o} donor and i could not be prouder",
    "one year ago a stranger donated their {o} to my sister",
    "organ procurement team just flew out with a donor {o}, godspeed",
    "the {o} donation myths in my mentions are wild, read the facts",
    "church group signed 40 new {o} donors at the fair today",
    "living {o} donor surgery is safer than people think, ask me anything",
    "every {o} transplant starts with someone saying yes to donation",
    "nurse on the {o} transplant ward here, your donor decision matters",
    "paired {o} donation matched four families today, science is amazing",
];

/// On-topic templates mentioning two organs: `{o}` and `{p}`.
const DUAL_ORGAN_TEMPLATES: &[&str] = &[
    "dual {o} and {p} transplant scheduled, one brave donor made it possible",
    "dad needs both a {o} and a {p}, please register as a donor",
    "amazing: one donor gave a {o} and a {p} and saved two lives",
    "{o} failure often follows {p} disease, donation awareness matters",
    "fundraiser for combined {o} and {p} transplantation research, donate below",
];

/// Hashtag suffixes appended to a share of on-topic tweets.
const HASHTAGS: &[&str] = &[
    " #OrganDonation",
    " #DonateLife",
    " #BeADonor",
    " #TransplantStrong",
    " #GiftOfLife",
    "",
    "",
    "", // most tweets carry no hashtag
];

/// Chatter: organ word, no donation context — the filter must drop these.
const ORGAN_CHATTER_TEMPLATES: &[&str] = &[
    "my {o} is broken after that game",
    "this song hits me right in the {o}",
    "ate way too much, my {o} hates me",
    "cardio day... my {o} and my {o} disagree",
    "{o} to {o} talk with my best friend tonight",
    "pouring my {o} out in this thread",
    "that workout destroyed my {o} capacity",
    "cold weather and my {o} do not get along",
    "tattoo over my {o} healed up nicely",
    "grandma's secret is good for the {o} she says",
];

/// Chatter: donation context, no organ.
const DONATION_CHATTER_TEMPLATES: &[&str] = &[
    "please donate to our school fundraiser",
    "donated my old clothes today, feels good",
    "blood donation drive at the gym tomorrow",
    "every donor to the campaign gets a sticker",
    "donate retweets please, trying to go viral",
    "thank you to every donation, we hit our goal",
    "plasma donor appointment booked for friday",
    "the library accepts book donations until june",
    "hair donation day at the salon, 12 inches gone",
    "monthly donor to three charities and proud of it",
];

/// Chatter: generic noise.
const GENERIC_CHATTER_TEMPLATES: &[&str] = &[
    "good morning everyone, coffee first",
    "can't believe that ending, no spoilers please",
    "monday again. how.",
    "new photo up, link in bio",
    "traffic on the interstate is unreal today",
    "happy birthday to my favorite person!!",
    "this playlist understands me on a cellular level",
    "why is the wifi always down when deadlines hit",
    "farmers market haul was unreal this weekend",
    "three alarms and i still overslept, incredible",
];

fn organ_surface<R: Rng + ?Sized>(rng: &mut R, organ: Organ) -> &'static str {
    // Prefer the canonical name; occasionally use another lexicon form so
    // the extractor's synonym handling is exercised.
    let lex = organ.lexicon();
    if rng.gen_bool(0.8) {
        lex[0]
    } else {
        lex[rng.gen_range(0..lex.len())]
    }
}

fn pick<'a, R: Rng + ?Sized>(rng: &mut R, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

/// Generates an on-topic tweet mentioning the given organs (1 or 2 used;
/// extras ignored). Always passes the paper's `Q` filter.
pub fn on_topic<R: Rng + ?Sized>(rng: &mut R, organs: &[Organ]) -> String {
    debug_assert!(!organs.is_empty(), "on_topic needs at least one organ");
    let mut text = if organs.len() >= 2 {
        let template = pick(rng, DUAL_ORGAN_TEMPLATES);
        template
            .replace("{o}", organ_surface(rng, organs[0]))
            .replace("{p}", organ_surface(rng, organs[1]))
    } else {
        let template = pick(rng, SINGLE_ORGAN_TEMPLATES);
        template.replace("{o}", organ_surface(rng, organs[0]))
    };
    text.push_str(pick(rng, HASHTAGS));
    text
}

/// The kind of chatter to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChatterKind {
    /// Organ word without donation context.
    OrganNoContext,
    /// Donation context without an organ.
    ContextNoOrgan,
    /// Neither.
    Generic,
}

/// Generates an off-topic tweet of the given kind. Never passes `Q`.
pub fn chatter<R: Rng + ?Sized>(rng: &mut R, kind: ChatterKind, organ: Organ) -> String {
    match kind {
        ChatterKind::OrganNoContext => {
            pick(rng, ORGAN_CHATTER_TEMPLATES).replace("{o}", organ.name())
        }
        ChatterKind::ContextNoOrgan => pick(rng, DONATION_CHATTER_TEMPLATES).to_string(),
        ChatterKind::Generic => pick(rng, GENERIC_CHATTER_TEMPLATES).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::KeywordQuery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn on_topic_always_passes_filter() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = KeywordQuery::paper();
        for organ in Organ::ALL {
            for _ in 0..200 {
                let t = on_topic(&mut rng, &[organ]);
                assert!(q.matches(&t), "filter rejected on-topic tweet: {t}");
            }
        }
    }

    #[test]
    fn dual_organ_tweets_mention_both() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let t = on_topic(&mut rng, &[Organ::Heart, Organ::Kidney]);
            let mc = donorpulse_text::extract_mentions(&t);
            assert!(mc.count(Organ::Heart) >= 1, "{t}");
            assert!(mc.count(Organ::Kidney) >= 1, "{t}");
        }
    }

    #[test]
    fn on_topic_mentions_requested_organ() {
        let mut rng = StdRng::seed_from_u64(3);
        for organ in Organ::ALL {
            for _ in 0..100 {
                let t = on_topic(&mut rng, &[organ]);
                let mc = donorpulse_text::extract_mentions(&t);
                assert!(mc.count(organ) >= 1, "{organ}: {t}");
            }
        }
    }

    #[test]
    fn chatter_never_passes_filter() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = KeywordQuery::paper();
        for kind in [
            ChatterKind::OrganNoContext,
            ChatterKind::ContextNoOrgan,
            ChatterKind::Generic,
        ] {
            for organ in Organ::ALL {
                for _ in 0..100 {
                    let t = chatter(&mut rng, kind, organ);
                    assert!(!q.matches(&t), "filter accepted chatter: {t}");
                }
            }
        }
    }

    #[test]
    fn tweets_fit_the_2015_length_limit() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let t = on_topic(&mut rng, &[Organ::Pancreas, Organ::Intestine]);
            assert!(t.chars().count() <= 140, "too long: {t}");
        }
    }
}
