//! Simulated tweets.

use crate::time::SimInstant;
use crate::user::UserId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique tweet identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TweetId(pub u64);

impl fmt::Display for TweetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One tweet as the Stream API would deliver it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tweet {
    /// Unique id (monotone in emission order).
    pub id: TweetId,
    /// Author.
    pub user: UserId,
    /// Creation instant.
    pub created_at: SimInstant,
    /// Tweet text (≤ 140 chars in the 2015–2016 era).
    pub text: String,
    /// Optional GPS tag `(lat, lon)` — present on ~1.4% of tweets.
    pub geo: Option<(f64, f64)>,
}

impl Tweet {
    /// True when the tweet carries GPS coordinates.
    pub fn is_geotagged(&self) -> bool {
        self.geo.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geotag_flag() {
        let t = Tweet {
            id: TweetId(1),
            user: UserId(2),
            created_at: SimInstant(0),
            text: "kidney donor".into(),
            geo: None,
        };
        assert!(!t.is_geotagged());
        let g = Tweet {
            geo: Some((37.69, -97.34)),
            ..t
        };
        assert!(g.is_geotagged());
    }

    #[test]
    fn tweet_id_display() {
        assert_eq!(TweetId(5).to_string(), "t5");
    }
}
