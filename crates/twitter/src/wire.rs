//! Byte-level record framing for the stream path.
//!
//! A real Stream API hands the client length-delimited bytes, not
//! parsed structs — the wire feed is the untrusted input surface
//! (Morstatter et al. treat it exactly that way in the Streaming-API
//! bias study). This module is the codec for that surface: a
//! [`TweetFrame`] encodes one tweet into a self-delimiting binary
//! frame (version 1), a [`BatchFrame`] packs many tweets behind a
//! single checksum (version 2), and a [`FrameReader`] walks a byte
//! stream, sniffing the version of each frame, parsing it, and
//! resynchronizing on the magic after damage.
//!
//! # Frame layout (version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------
//!      0     4  magic          "DPWF"
//!      4     1  kind           3 (tweet frame)
//!      5     2  version        u16 LE, 1
//!      7     4  payload length u32 LE (payload bytes only)
//!     11     n  payload        one tweet record (below)
//!   11+n     8  checksum       FNV-1a u64 LE over bytes [0, 11+n)
//! ```
//!
//! # Frame layout (version 2)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------
//!      0     4  magic          "DPWF"
//!      4     1  kind           3 (tweet frame)
//!      5     2  version        u16 LE, 2
//!      7     p  payload length canonical LEB128 varint (record bytes only)
//!    7+p     c  tweet count    canonical LEB128 varint, 1..=MAX_BATCH
//!  7+p+c     n  payload        `count` tweet records back to back
//!      …     8  checksum       word-FNV u64 LE over all bytes before it
//! ```
//!
//! Version 2 exists for the hot path: one checksum per *batch* instead
//! of per tweet, varint lengths instead of fixed u32 fields, and a
//! borrowed decode ([`TweetView`]) that leaves the text bytes in the
//! receive buffer instead of allocating a `String` per tweet.
//!
//! Varints are canonical LEB128: little-endian base-128 with a
//! continuation bit, at most 10 bytes, and the final byte of a
//! multi-byte varint must be non-zero (exactly one encoding per
//! value). The v2 checksum is *word-FNV*: FNV-1a over the buffer read
//! as little-endian u64 words (final partial word zero-padded), with
//! the byte length mixed in as a final word. It walks eight bytes per
//! multiply instead of one, and keeps the property that matters: each
//! step `h → (h ^ w) * P` is bijective in `h` and injective in `w`
//! (P is odd), so two equal-length buffers differing anywhere hash
//! differently.
//!
//! The payload is the same little-endian tweet record in both
//! versions, and it is the layout the checkpoint format embeds
//! (`core::checkpoint` delegates here): id, user, created-at as u64,
//! text as u32-length-prefixed UTF-8, then a geo flag byte followed by
//! two `f64::to_bits` u64s when present.
//!
//! # Error taxonomy
//!
//! Decoding classifies every failure as one of four [`FrameError`]s:
//! [`Truncated`](FrameError::Truncated) (the buffer ends before the
//! declared frame does), [`BadChecksum`](FrameError::BadChecksum)
//! (the trailer disagrees), [`BadMagic`](FrameError::BadMagic)
//! (the bytes at the cursor are not a frame start), and
//! [`BadPayload`](FrameError::BadPayload) (the envelope is sound but
//! the record inside is not: unknown kind or version, non-UTF-8 text,
//! a bad geo flag, a malformed varint, an absurd count, trailing
//! bytes).
//!
//! # Detection guarantee
//!
//! Strict decode ([`TweetFrame::decode`], [`BatchFrame::decode`])
//! checks that the declared total length equals the buffer length
//! *before* verifying the checksum. That ordering makes single-bit
//! damage provably detectable, not just probabilistically. For v1: a
//! flip in the length field changes the declared total and fails the
//! length check, and a flip anywhere else is caught by the checksum.
//! For v2 the same case split holds even though the lengths are
//! varints: if a flip changes the computed total (value or varint
//! width), the length check fails; if the total happens to come out
//! equal, the checksum — whose coverage in strict mode is everything
//! but the final eight bytes — covers the flipped byte and fails by
//! word-FNV injectivity. A single-bit flip can also never turn one
//! version into the other: the version words `0x0001` and `0x0002`
//! differ in two bits. `tests/wire_codec.rs` sweeps every single-bit
//! flip and every truncation point of reference frames in both
//! versions to pin this down.
//!
//! # Resynchronization
//!
//! After a bad frame, [`FrameReader`] scans forward from the byte
//! after the failed frame start for the next `DPWF` magic and resumes
//! there. The scan skips directly between candidate `D` bytes rather
//! than sliding a window one byte at a time, so recovering from a
//! multi-kilobyte damaged gap costs one cheap pass. A magic-like byte
//! pattern inside a payload can produce extra classified errors
//! during the scan, but never a wrong tweet: any candidate start that
//! is not a real frame fails the checksum.

use crate::time::SimInstant;
use crate::tweet::{Tweet, TweetId};
use crate::user::UserId;
use std::collections::VecDeque;
use std::fmt;

/// First bytes of every frame — shared with the checkpoint envelope.
pub const MAGIC: [u8; 4] = *b"DPWF";
/// Envelope kind: a tweet frame on the stream path (both versions).
pub const KIND_TWEET: u8 = 3;
/// Envelope kind: a process-group handshake (worker hello / router
/// resume offer).
pub const KIND_HANDSHAKE: u8 = 4;
/// Envelope kind: a Chandy-Lamport cut marker on the process-group
/// wire.
pub const KIND_MARKER: u8 = 5;
/// Envelope kind: process-group control traffic (end-of-stream,
/// checkpoint acks, worker reports).
pub const KIND_CONTROL: u8 = 6;
/// Protocol version of the process-group control frames (kinds 4–6).
/// Bumped whenever a control payload layout changes; both handshake
/// directions carry it so mismatched binaries fail fast.
pub const PROC_WIRE_VERSION: u16 = 1;
/// Layout version of single-tweet frames.
pub const WIRE_VERSION: u16 = 1;
/// Layout version of batched multi-tweet frames.
pub const WIRE_VERSION_V2: u16 = 2;
/// Bytes before the payload in a v1 frame: magic, kind, version,
/// fixed u32 payload length.
pub const HEADER_LEN: usize = 4 + 1 + 2 + 4;
/// Bytes before the varint lengths in a v2 frame: magic, kind,
/// version. The payload offset then depends on the varint widths.
pub const V2_PREFIX_LEN: usize = 4 + 1 + 2;
/// Bytes after the payload: the checksum trailer (both versions).
pub const TRAILER_LEN: usize = 8;
/// Upper bound on a declared payload length. Rejecting absurd lengths
/// up front keeps a damaged length field from dragging the reader a
/// gigabyte forward before the truncation check fires.
pub const MAX_PAYLOAD: usize = 1 << 20;
/// Upper bound on the tweet count declared by a v2 batch frame.
pub const MAX_BATCH: usize = 4096;
/// Default batch size producers use when framing v2 batches.
pub const DEFAULT_BATCH: usize = 64;

/// FNV-1a over a byte slice — the v1 integrity trailer.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Word-at-a-time FNV-1a — the v2 integrity trailer. Reads the buffer
/// as little-endian u64 words (final partial word zero-padded) and
/// mixes the byte length in as a final word, so `[1, 0]` and `[1]`
/// hash differently despite padding. One multiply per eight bytes
/// instead of one per byte; same equal-length injectivity guarantee
/// as byte-serial FNV (see the module docs).
fn fnv1a_words(bytes: &[u8]) -> u64 {
    const P: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().expect("8 bytes"));
        h = h.wrapping_mul(P);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = [0u8; 8];
        w[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(w);
        h = h.wrapping_mul(P);
    }
    h ^= bytes.len() as u64;
    h.wrapping_mul(P)
}

/// Appends `v` as a canonical LEB128 varint.
fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(b);
            return;
        }
        buf.push(b | 0x80);
    }
}

/// Why a varint failed to read; mapped onto [`FrameError`] by callers.
enum VarintError {
    /// The buffer ended mid-varint.
    Truncated,
    /// Over-long, overflowing, or non-canonical encoding.
    Malformed(&'static str),
}

/// Reads one canonical LEB128 varint from the front of `bytes`,
/// returning the value and bytes consumed. Rejects varints longer
/// than 10 bytes, values overflowing u64, and non-canonical encodings
/// (a multi-byte varint whose final byte is zero).
fn read_varint(bytes: &[u8]) -> Result<(u64, usize), VarintError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in bytes.iter().enumerate() {
        if i == 10 {
            return Err(VarintError::Malformed("varint longer than 10 bytes"));
        }
        let low = (b & 0x7f) as u64;
        if shift == 63 && low > 1 {
            return Err(VarintError::Malformed("varint overflows u64"));
        }
        v |= low << shift;
        if b & 0x80 == 0 {
            if i > 0 && b == 0 {
                return Err(VarintError::Malformed("non-canonical varint"));
            }
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(VarintError::Truncated)
}

/// Why a frame failed to decode. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes available from the frame start.
        have: usize,
        /// Bytes the frame needs (total, including header + trailer).
        need: usize,
    },
    /// The checksum trailer disagrees with the frame bytes.
    BadChecksum {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the frame body.
        computed: u64,
    },
    /// The bytes at the cursor do not start with the frame magic.
    BadMagic,
    /// The envelope is intact but the record inside is not.
    BadPayload(String),
}

impl FrameError {
    /// Stable short label for metrics and logs.
    pub fn class(&self) -> &'static str {
        match self {
            FrameError::Truncated { .. } => "truncated",
            FrameError::BadChecksum { .. } => "bad-checksum",
            FrameError::BadMagic => "bad-magic",
            FrameError::BadPayload(_) => "bad-payload",
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                )
            }
            FrameError::BadMagic => write!(f, "bad magic: not a frame start"),
            FrameError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Which frame layout a producer emits on the stream path.
///
/// Consumers never need this — the [`FrameReader`] and the strict
/// decoders sniff the version of every frame independently, so v1 and
/// v2 frames can interleave on one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum WireMode {
    /// One tweet per frame, fixed u32 lengths, byte-serial FNV (v1).
    #[default]
    V1,
    /// Batched multi-tweet frames with one word-FNV checksum (v2).
    V2 {
        /// Tweets per batch frame, clamped to `1..=MAX_BATCH`.
        batch: usize,
    },
}

impl WireMode {
    /// Version 2 at the default batch size.
    pub fn v2() -> Self {
        WireMode::V2 {
            batch: DEFAULT_BATCH,
        }
    }

    /// Stable short label for metrics and CLI output.
    pub fn label(&self) -> &'static str {
        match self {
            WireMode::V1 => "v1",
            WireMode::V2 { .. } => "v2",
        }
    }
}

/// A tweet decoded *in place*: the text is a `&str` slice into the
/// receive buffer, so no allocation happens until (unless) the tweet
/// is admitted and [`to_tweet`](TweetView::to_tweet) materializes it.
///
/// This is the currency of the zero-copy hot path: filter, geocode
/// lookup, and dedup all run on the view, and only tweets that
/// survive admission pay for a `String`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TweetView<'a> {
    /// Unique tweet id.
    pub id: TweetId,
    /// Author id.
    pub user: UserId,
    /// Simulated posting time.
    pub created_at: SimInstant,
    /// Tweet text, borrowed from the frame buffer.
    pub text: &'a str,
    /// Geotag as (lat, lon), when present.
    pub geo: Option<(f64, f64)>,
}

impl TweetView<'_> {
    /// Materializes an owned [`Tweet`], allocating the text.
    pub fn to_tweet(&self) -> Tweet {
        Tweet {
            id: self.id,
            user: self.user,
            created_at: self.created_at,
            text: self.text.to_owned(),
            geo: self.geo,
        }
    }
}

/// Appends one tweet record (the frame payload, no envelope) to `buf`.
///
/// This is the byte layout the checkpoint format embeds for tweets;
/// `core::checkpoint` delegates to it so the two stay identical.
pub fn encode_tweet_payload(buf: &mut Vec<u8>, t: &Tweet) {
    buf.extend_from_slice(&t.id.0.to_le_bytes());
    buf.extend_from_slice(&t.user.0.to_le_bytes());
    buf.extend_from_slice(&t.created_at.0.to_le_bytes());
    buf.extend_from_slice(&(t.text.len() as u32).to_le_bytes());
    buf.extend_from_slice(t.text.as_bytes());
    match t.geo {
        Some((lat, lon)) => {
            buf.push(1);
            buf.extend_from_slice(&lat.to_bits().to_le_bytes());
            buf.extend_from_slice(&lon.to_bits().to_le_bytes());
        }
        None => buf.push(0),
    }
}

/// Decodes one tweet record from the front of `bytes` without copying
/// the text, returning the borrowed view and the number of payload
/// bytes consumed. [`decode_tweet_payload`] is this plus a `String`.
pub fn decode_tweet_view(bytes: &[u8]) -> Result<(TweetView<'_>, usize), FrameError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], FrameError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| FrameError::BadPayload("record ends mid-field".into()))?;
        let out = &bytes[pos..end];
        pos = end;
        Ok(out)
    };
    let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
    let id = TweetId(u64_of(take(8)?));
    let user = UserId(u64_of(take(8)?));
    let created_at = SimInstant(u64_of(take(8)?));
    let text_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let text = std::str::from_utf8(take(text_len)?)
        .map_err(|_| FrameError::BadPayload("non-UTF-8 text".into()))?;
    let geo = match take(1)?[0] {
        0 => None,
        1 => {
            let lat = f64::from_bits(u64_of(take(8)?));
            let lon = f64::from_bits(u64_of(take(8)?));
            Some((lat, lon))
        }
        other => {
            return Err(FrameError::BadPayload(format!("bad geo flag {other}")));
        }
    };
    Ok((
        TweetView {
            id,
            user,
            created_at,
            text,
            geo,
        },
        pos,
    ))
}

/// Decodes one tweet record from the front of `bytes`, returning the
/// owned tweet and the number of payload bytes consumed.
pub fn decode_tweet_payload(bytes: &[u8]) -> Result<(Tweet, usize), FrameError> {
    decode_tweet_view(bytes).map(|(v, n)| (v.to_tweet(), n))
}

/// Reads the version word of the frame starting at `bytes`, if the
/// buffer is long enough to carry one and the magic matches. This is
/// the version sniff readers use to dispatch v1 vs v2 parsing.
pub fn frame_version(bytes: &[u8]) -> Option<u16> {
    if bytes.len() >= V2_PREFIX_LEN && bytes[..MAGIC.len()] == MAGIC {
        Some(u16::from_le_bytes([bytes[5], bytes[6]]))
    } else {
        None
    }
}

/// Strict version-sniffing decode: `bytes` must be exactly one intact
/// frame of either version; returns the tweets it carries (one for
/// v1, the whole batch for v2). This is what dead-letter replay uses,
/// since the log preserves damaged deliveries verbatim in whichever
/// version they arrived.
pub fn decode_any(bytes: &[u8]) -> Result<Vec<Tweet>, FrameError> {
    match frame_version(bytes) {
        Some(WIRE_VERSION_V2) => BatchFrame::decode(bytes),
        Some(WIRE_VERSION) => TweetFrame::decode(bytes).map(|t| vec![t]),
        Some(v) => Err(FrameError::BadPayload(format!(
            "unknown wire version {v} (this build reads {WIRE_VERSION} and {WIRE_VERSION_V2})"
        ))),
        // Too short to sniff or wrong magic: let the v1 parser produce
        // the classified error (BadMagic / Truncated).
        None => TweetFrame::decode(bytes).map(|t| vec![t]),
    }
}

/// The single-tweet frame codec (wire version 1): encode one tweet
/// into a self-delimiting frame, or decode one frame back.
///
/// ```
/// use donorpulse_twitter::wire::TweetFrame;
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let tweet = Tweet {
///     id: TweetId(42),
///     user: UserId(7),
///     created_at: SimInstant(1000),
///     text: "kidney donor ❤".to_string(),
///     geo: Some((37.69, -97.34)),
/// };
/// let frame = TweetFrame::encode(&tweet);
/// assert_eq!(TweetFrame::decode(&frame).unwrap(), tweet);
/// ```
pub struct TweetFrame;

impl TweetFrame {
    /// Encodes one tweet as a framed byte record.
    ///
    /// # Panics
    ///
    /// Panics if the payload would exceed [`MAX_PAYLOAD`] — a frame
    /// that large could never be decoded, so producing it silently
    /// would be data loss.
    pub fn encode(tweet: &Tweet) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + tweet.text.len());
        encode_tweet_payload(&mut payload, tweet);
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "tweet payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            payload.len()
        );
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_TWEET);
        buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Strict decode: `bytes` must be exactly one intact frame.
    ///
    /// The declared total length is compared with the buffer length
    /// *before* the checksum check, which is what makes every
    /// single-bit flip detectable (see the module docs).
    pub fn decode(bytes: &[u8]) -> Result<Tweet, FrameError> {
        Self::parse(bytes, true).map(|(v, _)| v.to_tweet())
    }

    /// Strict borrowed decode: like [`decode`](Self::decode) but the
    /// text stays a slice into `bytes`.
    pub fn decode_view(bytes: &[u8]) -> Result<TweetView<'_>, FrameError> {
        Self::parse(bytes, true).map(|(v, _)| v)
    }

    /// Prefix decode for stream scanning: decodes one frame from the
    /// front of `bytes`, returning the tweet and total frame length.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Tweet, usize), FrameError> {
        Self::parse(bytes, false).map(|(v, n)| (v.to_tweet(), n))
    }

    /// Borrowed prefix decode: the zero-copy counterpart of
    /// [`decode_prefix`](Self::decode_prefix).
    pub fn view_prefix(bytes: &[u8]) -> Result<(TweetView<'_>, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(TweetView<'_>, usize), FrameError> {
        // Magic first: a short buffer that cannot even be the start of
        // a frame is BadMagic, not Truncated.
        let magic_have = bytes.len().min(MAGIC.len());
        if bytes[..magic_have] != MAGIC[..magic_have] {
            return Err(FrameError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: HEADER_LEN + TRAILER_LEN,
            });
        }
        let declared =
            u32::from_le_bytes(bytes[7..HEADER_LEN].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Err(FrameError::BadPayload(format!(
                "declared payload length {declared} exceeds cap {MAX_PAYLOAD}"
            )));
        }
        let total = HEADER_LEN + declared + TRAILER_LEN;
        if bytes.len() < total {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: total,
            });
        }
        if strict && bytes.len() != total {
            return Err(FrameError::BadPayload(format!(
                "{} trailing bytes after the frame",
                bytes.len() - total
            )));
        }
        let (body, trailer) = bytes[..total].split_at(total - TRAILER_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(FrameError::BadChecksum { stored, computed });
        }
        let kind = bytes[4];
        if kind != KIND_TWEET {
            return Err(FrameError::BadPayload(format!(
                "unexpected frame kind {kind} (wanted {KIND_TWEET})"
            )));
        }
        let version = u16::from_le_bytes([bytes[5], bytes[6]]);
        if version != WIRE_VERSION {
            return Err(FrameError::BadPayload(format!(
                "unknown wire version {version} (this build reads {WIRE_VERSION})"
            )));
        }
        let (view, consumed) = decode_tweet_view(&body[HEADER_LEN..])?;
        if consumed != declared {
            return Err(FrameError::BadPayload(format!(
                "{} unread payload bytes",
                declared - consumed
            )));
        }
        Ok((view, total))
    }
}

/// The batched frame codec (wire version 2): many tweets behind one
/// word-FNV checksum, varint lengths, zero-copy decode.
///
/// ```
/// use donorpulse_twitter::wire::BatchFrame;
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let tweets: Vec<Tweet> = (0..3)
///     .map(|i| Tweet {
///         id: TweetId(i),
///         user: UserId(i * 10),
///         created_at: SimInstant(i),
///         text: format!("kidney {i}"),
///         geo: None,
///     })
///     .collect();
/// let frame = BatchFrame::encode(&tweets);
/// assert_eq!(BatchFrame::decode(&frame).unwrap(), tweets);
/// // Borrowed decode: no per-tweet String allocation.
/// let views = BatchFrame::decode_views(&frame).unwrap();
/// assert_eq!(views[2].text, "kidney 2");
/// ```
pub struct BatchFrame;

impl BatchFrame {
    /// Encodes a batch of tweets as one framed byte record.
    ///
    /// # Panics
    ///
    /// Panics if the batch is empty, exceeds [`MAX_BATCH`] tweets, or
    /// its record bytes exceed [`MAX_PAYLOAD`] — any of those could
    /// never be decoded, so producing them silently would be data
    /// loss.
    pub fn encode(tweets: &[Tweet]) -> Vec<u8> {
        assert!(!tweets.is_empty(), "empty batch frame");
        assert!(
            tweets.len() <= MAX_BATCH,
            "batch of {} tweets exceeds MAX_BATCH {MAX_BATCH}",
            tweets.len()
        );
        let mut payload = Vec::with_capacity(tweets.iter().map(|t| 45 + t.text.len()).sum());
        for t in tweets {
            encode_tweet_payload(&mut payload, t);
        }
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "batch payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            payload.len()
        );
        let mut buf = Vec::with_capacity(V2_PREFIX_LEN + 10 + 2 + payload.len() + TRAILER_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_TWEET);
        buf.extend_from_slice(&WIRE_VERSION_V2.to_le_bytes());
        put_varint(&mut buf, payload.len() as u64);
        put_varint(&mut buf, tweets.len() as u64);
        buf.extend_from_slice(&payload);
        let sum = fnv1a_words(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Strict decode: `bytes` must be exactly one intact v2 frame.
    /// Returns the owned tweets in batch order.
    pub fn decode(bytes: &[u8]) -> Result<Vec<Tweet>, FrameError> {
        Self::parse(bytes, true).map(|(views, _)| views.iter().map(TweetView::to_tweet).collect())
    }

    /// Strict borrowed decode: the tweets as views into `bytes`, no
    /// per-tweet allocation.
    pub fn decode_views(bytes: &[u8]) -> Result<Vec<TweetView<'_>>, FrameError> {
        Self::parse(bytes, true).map(|(views, _)| views)
    }

    /// Borrowed prefix decode for stream scanning: decodes one v2
    /// frame from the front of `bytes`, returning the views and total
    /// frame length.
    pub fn views_prefix(bytes: &[u8]) -> Result<(Vec<TweetView<'_>>, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(Vec<TweetView<'_>>, usize), FrameError> {
        let magic_have = bytes.len().min(MAGIC.len());
        if bytes[..magic_have] != MAGIC[..magic_have] {
            return Err(FrameError::BadMagic);
        }
        if bytes.len() < V2_PREFIX_LEN + 1 {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: V2_PREFIX_LEN + 2 + TRAILER_LEN,
            });
        }
        let version = u16::from_le_bytes([bytes[5], bytes[6]]);
        if version != WIRE_VERSION_V2 {
            return Err(FrameError::BadPayload(format!(
                "not a v2 batch frame (version {version})"
            )));
        }
        let mut cursor = V2_PREFIX_LEN;
        let varint_err = |e: VarintError, have: usize| match e {
            VarintError::Truncated => FrameError::Truncated {
                have,
                need: have + 1,
            },
            VarintError::Malformed(msg) => FrameError::BadPayload(msg.into()),
        };
        let (payload_len, n) =
            read_varint(&bytes[cursor..]).map_err(|e| varint_err(e, bytes.len()))?;
        cursor += n;
        if payload_len > MAX_PAYLOAD as u64 {
            return Err(FrameError::BadPayload(format!(
                "declared payload length {payload_len} exceeds cap {MAX_PAYLOAD}"
            )));
        }
        let payload_len = payload_len as usize;
        let (count, n) = read_varint(&bytes[cursor..]).map_err(|e| varint_err(e, bytes.len()))?;
        cursor += n;
        if count == 0 {
            return Err(FrameError::BadPayload("empty batch".into()));
        }
        if count > MAX_BATCH as u64 {
            return Err(FrameError::BadPayload(format!(
                "batch count {count} exceeds cap {MAX_BATCH}"
            )));
        }
        let count = count as usize;
        let total = cursor + payload_len + TRAILER_LEN;
        if bytes.len() < total {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: total,
            });
        }
        if strict && bytes.len() != total {
            return Err(FrameError::BadPayload(format!(
                "{} trailing bytes after the frame",
                bytes.len() - total
            )));
        }
        let (body, trailer) = bytes[..total].split_at(total - TRAILER_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let computed = fnv1a_words(body);
        if stored != computed {
            return Err(FrameError::BadChecksum { stored, computed });
        }
        let kind = bytes[4];
        if kind != KIND_TWEET {
            return Err(FrameError::BadPayload(format!(
                "unexpected frame kind {kind} (wanted {KIND_TWEET})"
            )));
        }
        let payload = &body[cursor..];
        let mut views = Vec::with_capacity(count);
        let mut consumed = 0usize;
        for _ in 0..count {
            let (view, n) = decode_tweet_view(&payload[consumed..])?;
            consumed += n;
            views.push(view);
        }
        if consumed != payload_len {
            return Err(FrameError::BadPayload(format!(
                "{} unread payload bytes",
                payload_len - consumed
            )));
        }
        Ok((views, total))
    }
}

/// Encodes a control-plane payload under the fixed-length v1-style
/// envelope: magic, kind, version, u32 payload length, payload,
/// byte-serial FNV trailer. All process-group control kinds share this
/// layout so they inherit the v1 envelope's length-before-checksum
/// discipline (every single-bit flip detectable).
fn encode_envelope(kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "control payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
        payload.len()
    );
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    buf.extend_from_slice(&MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&PROC_WIRE_VERSION.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// Parses a control-plane envelope, mirroring `TweetFrame::parse`
/// check order exactly: magic → header length → declared-length cap →
/// total length → strict trailing bytes → checksum → kind → version.
/// Returns the payload slice and total frame length.
fn parse_envelope(bytes: &[u8], want_kind: u8, strict: bool) -> Result<(&[u8], usize), FrameError> {
    let magic_have = bytes.len().min(MAGIC.len());
    if bytes[..magic_have] != MAGIC[..magic_have] {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            have: bytes.len(),
            need: HEADER_LEN + TRAILER_LEN,
        });
    }
    let declared = u32::from_le_bytes(bytes[7..HEADER_LEN].try_into().expect("4 bytes")) as usize;
    if declared > MAX_PAYLOAD {
        return Err(FrameError::BadPayload(format!(
            "declared payload length {declared} exceeds cap {MAX_PAYLOAD}"
        )));
    }
    let total = HEADER_LEN + declared + TRAILER_LEN;
    if bytes.len() < total {
        return Err(FrameError::Truncated {
            have: bytes.len(),
            need: total,
        });
    }
    if strict && bytes.len() != total {
        return Err(FrameError::BadPayload(format!(
            "{} trailing bytes after the frame",
            bytes.len() - total
        )));
    }
    let (body, trailer) = bytes[..total].split_at(total - TRAILER_LEN);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    let computed = fnv1a(body);
    if stored != computed {
        return Err(FrameError::BadChecksum { stored, computed });
    }
    let kind = bytes[4];
    if kind != want_kind {
        return Err(FrameError::BadPayload(format!(
            "unexpected frame kind {kind} (wanted {want_kind})"
        )));
    }
    let version = u16::from_le_bytes([bytes[5], bytes[6]]);
    if version != PROC_WIRE_VERSION {
        return Err(FrameError::BadPayload(format!(
            "unknown proc wire version {version} (this build speaks {PROC_WIRE_VERSION})"
        )));
    }
    Ok((&body[HEADER_LEN..], total))
}

/// Fixed-width field cursor for control payloads: every control frame
/// has an exact byte length, so "ends mid-field" and "unread bytes"
/// are both classified `BadPayload`.
struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| FrameError::BadPayload("control payload ends mid-field".into()))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Canonical optional u64: flag byte then the value, which must be
    /// zero when absent so there is exactly one encoding per value.
    fn opt_u64(&mut self) -> Result<Option<u64>, FrameError> {
        let flag = self.u8()?;
        let v = self.u64()?;
        match flag {
            0 if v == 0 => Ok(None),
            0 => Err(FrameError::BadPayload(
                "absent optional carries a non-zero value".into(),
            )),
            1 => Ok(Some(v)),
            other => Err(FrameError::BadPayload(format!("bad optional flag {other}"))),
        }
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::BadPayload(format!(
                "{} unread payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&v.to_le_bytes());
        }
        None => {
            buf.push(0);
            buf.extend_from_slice(&0u64.to_le_bytes());
        }
    }
}

/// The first frame each side of a process-group connection sends: the
/// worker announces which shard slot it is filling, the router answers
/// with the epoch the worker must resume from (`None` for a fresh
/// start). Both directions carry the protocol version so a mismatched
/// binary fails the handshake instead of misparsing the stream.
///
/// ```
/// use donorpulse_twitter::wire::HandshakeFrame;
///
/// let hello = HandshakeFrame::new(2, 4, Some(17));
/// let frame = hello.encode();
/// assert_eq!(HandshakeFrame::decode(&frame).unwrap(), hello);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandshakeFrame {
    /// Process-group protocol version the sender speaks.
    pub proc_version: u16,
    /// Shard slot this connection serves (0-based).
    pub shard: u32,
    /// Total shard count of the group.
    pub shards: u32,
    /// Epoch whose checkpoint the worker must restore before ingesting,
    /// `None` for a fresh start.
    pub resume_epoch: Option<u64>,
}

impl HandshakeFrame {
    /// A handshake at the current protocol version.
    pub fn new(shard: u32, shards: u32, resume_epoch: Option<u64>) -> Self {
        HandshakeFrame {
            proc_version: PROC_WIRE_VERSION,
            shard,
            shards,
            resume_epoch,
        }
    }

    /// Encodes the handshake as a framed byte record.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(19);
        payload.extend_from_slice(&self.proc_version.to_le_bytes());
        payload.extend_from_slice(&self.shard.to_le_bytes());
        payload.extend_from_slice(&self.shards.to_le_bytes());
        put_opt_u64(&mut payload, self.resume_epoch);
        encode_envelope(KIND_HANDSHAKE, &payload)
    }

    /// Strict decode: `bytes` must be exactly one intact handshake.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        Self::parse(bytes, true).map(|(v, _)| v)
    }

    /// Prefix decode for stream scanning: returns the handshake and
    /// total frame length.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(Self, usize), FrameError> {
        let (payload, total) = parse_envelope(bytes, KIND_HANDSHAKE, strict)?;
        let mut r = PayloadReader::new(payload);
        let proc_version = r.u16()?;
        let shard = r.u32()?;
        let shards = r.u32()?;
        let resume_epoch = r.opt_u64()?;
        r.finish()?;
        if shards == 0 {
            return Err(FrameError::BadPayload("handshake with zero shards".into()));
        }
        if shard >= shards {
            return Err(FrameError::BadPayload(format!(
                "handshake shard {shard} out of range for {shards} shards"
            )));
        }
        Ok((
            HandshakeFrame {
                proc_version,
                shard,
                shards,
                resume_epoch,
            },
            total,
        ))
    }
}

/// A Chandy-Lamport marker broadcast on the process-group wire: every
/// tweet routed before it belongs to cut `epoch`, everything after to
/// `epoch + 1`. A worker checkpoints exactly when the marker arrives,
/// so a marker that fails to decode must never commit a cut — the
/// envelope's length-before-checksum discipline guarantees any
/// single-bit flip is a classified decode error.
///
/// ```
/// use donorpulse_twitter::wire::MarkerFrame;
///
/// let mark = MarkerFrame { epoch: 3, high_water: Some(4096) };
/// assert_eq!(MarkerFrame::decode(&mark.encode()).unwrap(), mark);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MarkerFrame {
    /// The cut this marker commits.
    pub epoch: u64,
    /// Highest tweet id routed before the marker, for resume replay
    /// suppression.
    pub high_water: Option<u64>,
}

impl MarkerFrame {
    /// Encodes the marker as a framed byte record.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(17);
        payload.extend_from_slice(&self.epoch.to_le_bytes());
        put_opt_u64(&mut payload, self.high_water);
        encode_envelope(KIND_MARKER, &payload)
    }

    /// Strict decode: `bytes` must be exactly one intact marker.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        Self::parse(bytes, true).map(|(v, _)| v)
    }

    /// Prefix decode for stream scanning: returns the marker and total
    /// frame length.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(Self, usize), FrameError> {
        let (payload, total) = parse_envelope(bytes, KIND_MARKER, strict)?;
        let mut r = PayloadReader::new(payload);
        let epoch = r.u64()?;
        let high_water = r.opt_u64()?;
        r.finish()?;
        Ok((MarkerFrame { epoch, high_water }, total))
    }
}

/// Control-plane traffic on the process-group wire that is neither
/// data nor a cut: end-of-stream, checkpoint acknowledgements
/// (worker → router, lets the router trim its retained replay log),
/// and the worker's final report (an opaque payload the core layer
/// encodes — the wire stays ignorant of sensor internals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// The router has no more data; the worker should drain and report.
    EndOfStream,
    /// The worker durably wrote the checkpoint for `epoch`.
    Ack {
        /// Epoch whose checkpoint is now durable.
        epoch: u64,
    },
    /// The worker's end-of-stream report (core-encoded bytes).
    Report {
        /// Opaque report bytes; the core layer owns the layout.
        payload: Vec<u8>,
    },
}

const CONTROL_OP_EOS: u8 = 1;
const CONTROL_OP_ACK: u8 = 2;
const CONTROL_OP_REPORT: u8 = 3;

impl ControlFrame {
    /// Encodes the control message as a framed byte record.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            ControlFrame::EndOfStream => payload.push(CONTROL_OP_EOS),
            ControlFrame::Ack { epoch } => {
                payload.push(CONTROL_OP_ACK);
                payload.extend_from_slice(&epoch.to_le_bytes());
            }
            ControlFrame::Report { payload: bytes } => {
                payload.reserve(1 + bytes.len());
                payload.push(CONTROL_OP_REPORT);
                payload.extend_from_slice(bytes);
            }
        }
        encode_envelope(KIND_CONTROL, &payload)
    }

    /// Strict decode: `bytes` must be exactly one intact control frame.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        Self::parse(bytes, true).map(|(v, _)| v)
    }

    /// Prefix decode for stream scanning: returns the message and total
    /// frame length.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Self, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(Self, usize), FrameError> {
        let (payload, total) = parse_envelope(bytes, KIND_CONTROL, strict)?;
        let mut r = PayloadReader::new(payload);
        let frame = match r.u8()? {
            CONTROL_OP_EOS => ControlFrame::EndOfStream,
            CONTROL_OP_ACK => ControlFrame::Ack { epoch: r.u64()? },
            CONTROL_OP_REPORT => {
                let rest = payload.len() - 1;
                ControlFrame::Report {
                    payload: r.take(rest)?.to_vec(),
                }
            }
            other => {
                return Err(FrameError::BadPayload(format!(
                    "unknown control op {other}"
                )));
            }
        };
        r.finish()?;
        Ok((frame, total))
    }
}

/// Kind, version, and total byte length of the frame starting at the
/// front of `bytes` — the length discipline incremental socket readers
/// use to know how many bytes to buffer before running a strict
/// decode. **No checksum is verified here**: callers must strict-decode
/// the `total`-byte slice once buffered; a corrupt length field is
/// bounded by [`MAX_PAYLOAD`] so it can at worst demand one over-sized
/// read before the checksum check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameExtent {
    /// The envelope kind byte.
    pub kind: u8,
    /// The envelope version word.
    pub version: u16,
    /// Total frame length including header and trailer.
    pub total: usize,
}

/// Reads the extent of the frame at the front of `bytes`, dispatching
/// on kind and version: v2 tweet batches use varint lengths, every
/// other known kind the fixed u32 header. Returns `Truncated` when
/// more bytes are needed to even determine the length.
pub fn frame_extent(bytes: &[u8]) -> Result<FrameExtent, FrameError> {
    let magic_have = bytes.len().min(MAGIC.len());
    if bytes[..magic_have] != MAGIC[..magic_have] {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < V2_PREFIX_LEN {
        return Err(FrameError::Truncated {
            have: bytes.len(),
            need: HEADER_LEN + TRAILER_LEN,
        });
    }
    let kind = bytes[4];
    let version = u16::from_le_bytes([bytes[5], bytes[6]]);
    match (kind, version) {
        (KIND_TWEET, WIRE_VERSION_V2) => {
            let mut cursor = V2_PREFIX_LEN;
            let varint_err = |e: VarintError| match e {
                VarintError::Truncated => FrameError::Truncated {
                    have: bytes.len(),
                    need: bytes.len() + 1,
                },
                VarintError::Malformed(msg) => FrameError::BadPayload(msg.into()),
            };
            let (payload_len, n) = read_varint(&bytes[cursor..]).map_err(varint_err)?;
            cursor += n;
            if payload_len > MAX_PAYLOAD as u64 {
                return Err(FrameError::BadPayload(format!(
                    "declared payload length {payload_len} exceeds cap {MAX_PAYLOAD}"
                )));
            }
            let (_, n) = read_varint(&bytes[cursor..]).map_err(varint_err)?;
            cursor += n;
            Ok(FrameExtent {
                kind,
                version,
                total: cursor + payload_len as usize + TRAILER_LEN,
            })
        }
        (KIND_TWEET, WIRE_VERSION)
        | (KIND_HANDSHAKE, PROC_WIRE_VERSION)
        | (KIND_MARKER, PROC_WIRE_VERSION)
        | (KIND_CONTROL, PROC_WIRE_VERSION) => {
            if bytes.len() < HEADER_LEN {
                return Err(FrameError::Truncated {
                    have: bytes.len(),
                    need: HEADER_LEN + TRAILER_LEN,
                });
            }
            let declared =
                u32::from_le_bytes(bytes[7..HEADER_LEN].try_into().expect("4 bytes")) as usize;
            if declared > MAX_PAYLOAD {
                return Err(FrameError::BadPayload(format!(
                    "declared payload length {declared} exceeds cap {MAX_PAYLOAD}"
                )));
            }
            Ok(FrameExtent {
                kind,
                version,
                total: HEADER_LEN + declared + TRAILER_LEN,
            })
        }
        (kind, version) => Err(FrameError::BadPayload(format!(
            "unknown frame kind {kind} / version {version}"
        ))),
    }
}

/// One decoded frame from a [`FrameReader`]: which layout version it
/// arrived in and the tweets it carried as borrowed views (one view
/// for v1, the whole batch for v2).
#[derive(Debug)]
pub struct FrameViews<'a> {
    /// The wire version of the frame that produced these views.
    pub version: u16,
    /// The decoded tweets, borrowing from the reader's buffer.
    pub views: Vec<TweetView<'a>>,
}

/// Walks a byte stream of concatenated frames — v1 and v2 may
/// interleave — yielding decoded tweets and classified errors,
/// resynchronizing on the magic after damage.
///
/// ```
/// use donorpulse_twitter::wire::{BatchFrame, FrameReader, TweetFrame};
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let tweet = Tweet {
///     id: TweetId(1),
///     user: UserId(2),
///     created_at: SimInstant(3),
///     text: "liver".to_string(),
///     geo: None,
/// };
/// let mut buf = TweetFrame::encode(&tweet);
/// buf[15] ^= 0x40; // damage the first frame
/// buf.extend_from_slice(&BatchFrame::encode(&[tweet.clone(), tweet.clone()]));
/// let results: Vec<_> = FrameReader::new(&buf).collect();
/// assert!(results[0].is_err());
/// assert_eq!(results[1].as_ref().unwrap(), &tweet);
/// assert_eq!(results[2].as_ref().unwrap(), &tweet);
/// ```
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    resyncs: u64,
    bytes_skipped: u64,
    pending: VecDeque<Tweet>,
}

impl<'a> FrameReader<'a> {
    /// A reader over a concatenated-frame byte stream.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader {
            buf,
            pos: 0,
            resyncs: 0,
            bytes_skipped: 0,
            pending: VecDeque::new(),
        }
    }

    /// How many times the reader had to hunt for the next magic.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes discarded while resynchronizing.
    pub fn bytes_skipped(&self) -> u64 {
        self.bytes_skipped
    }

    /// Decodes the next frame in place, sniffing its version, and
    /// returns its tweets as borrowed views (no allocation per
    /// tweet). `None` at end of buffer; a classified error after
    /// damage, with the cursor already resynchronized past it.
    pub fn next_views(&mut self) -> Option<Result<FrameViews<'a>, FrameError>> {
        if self.pos >= self.buf.len() {
            return None;
        }
        let at = &self.buf[self.pos..];
        let parsed = match frame_version(at) {
            Some(WIRE_VERSION_V2) => BatchFrame::views_prefix(at).map(|(views, consumed)| {
                (
                    FrameViews {
                        version: WIRE_VERSION_V2,
                        views,
                    },
                    consumed,
                )
            }),
            // Version 1 — and anything unrecognized, so the v1 parser
            // classifies the failure (bad magic, truncation, unknown
            // version).
            _ => TweetFrame::view_prefix(at).map(|(view, consumed)| {
                (
                    FrameViews {
                        version: WIRE_VERSION,
                        views: vec![view],
                    },
                    consumed,
                )
            }),
        };
        match parsed {
            Ok((frame, consumed)) => {
                self.pos += consumed;
                Some(Ok(frame))
            }
            Err(e) => {
                self.resync();
                Some(Err(e))
            }
        }
    }

    /// Advances past a bad frame start to the next magic candidate
    /// (or the end of the buffer). Skips directly between candidate
    /// first bytes instead of sliding a 4-byte window, so crossing a
    /// multi-kilobyte damaged gap is one cheap scan.
    fn resync(&mut self) {
        let mut from = (self.pos + 1).min(self.buf.len());
        let next = loop {
            match self.buf[from..].iter().position(|&b| b == MAGIC[0]) {
                None => break self.buf.len(),
                Some(off) => {
                    let cand = from + off;
                    if cand + MAGIC.len() <= self.buf.len()
                        && self.buf[cand..cand + MAGIC.len()] == MAGIC
                    {
                        break cand;
                    }
                    from = cand + 1;
                }
            }
        };
        self.resyncs += 1;
        self.bytes_skipped += (next - self.pos) as u64;
        self.pos = next;
    }
}

impl Iterator for FrameReader<'_> {
    type Item = Result<Tweet, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(t) = self.pending.pop_front() {
            return Some(Ok(t));
        }
        match self.next_views()? {
            Ok(frame) => {
                let mut it = frame.views.iter();
                let first = it
                    .next()
                    .expect("decoded frames are never empty")
                    .to_tweet();
                self.pending.extend(it.map(TweetView::to_tweet));
                Some(Ok(first))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(id: u64, text: &str, geo: Option<(f64, f64)>) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(id ^ 0xABCD),
            created_at: SimInstant(id.wrapping_mul(17)),
            text: text.to_string(),
            geo,
        }
    }

    #[test]
    fn frame_roundtrips() {
        for t in [
            tweet(1, "kidney donor ❤", Some((37.69, -97.34))),
            tweet(u64::MAX, "", None),
            tweet(7, "DPWF inside the text", Some((0.0, -0.0))),
        ] {
            let frame = TweetFrame::encode(&t);
            let geo_bytes = if t.geo.is_some() { 16 } else { 0 };
            assert_eq!(
                frame.len(),
                HEADER_LEN + TRAILER_LEN + 29 + t.text.len() + geo_bytes
            );
            let back = TweetFrame::decode(&frame).expect("decode");
            assert_eq!(back.id, t.id);
            assert_eq!(back.text, t.text);
            assert_eq!(
                back.geo.map(|(a, b)| (a.to_bits(), b.to_bits())),
                t.geo.map(|(a, b)| (a.to_bits(), b.to_bits()))
            );
        }
    }

    #[test]
    fn decode_classifies_each_failure_mode() {
        let frame = TweetFrame::encode(&tweet(9, "heart", None));
        // Truncation at several depths.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
            let err = TweetFrame::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut} gave {err:?}"
            );
        }
        // A payload bit flip is a checksum failure.
        let mut flipped = frame.clone();
        flipped[HEADER_LEN + 2] ^= 0x10;
        assert!(matches!(
            TweetFrame::decode(&flipped).unwrap_err(),
            FrameError::BadChecksum { .. }
        ));
        // Wrong first byte is BadMagic.
        let mut wrong = frame.clone();
        wrong[0] = b'X';
        assert_eq!(
            TweetFrame::decode(&wrong).unwrap_err(),
            FrameError::BadMagic
        );
        // Wrong kind with a repaired checksum is BadPayload.
        let mut kinded = frame.clone();
        kinded[4] = KIND_TWEET + 1;
        let body_len = kinded.len() - TRAILER_LEN;
        let sum = fnv1a(&kinded[..body_len]);
        kinded[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TweetFrame::decode(&kinded).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Trailing garbage after a valid frame is rejected by strict
        // decode but consumed cleanly by prefix decode.
        let mut trailing = frame.clone();
        trailing.push(0xEE);
        assert!(matches!(
            TweetFrame::decode(&trailing).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        let (t, consumed) = TweetFrame::decode_prefix(&trailing).expect("prefix");
        assert_eq!(t.id, TweetId(9));
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn absurd_declared_length_is_rejected_before_truncation() {
        let mut frame = TweetFrame::encode(&tweet(3, "liver", None));
        frame[7..HEADER_LEN].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            TweetFrame::decode(&frame).unwrap_err(),
            FrameError::BadPayload(_)
        ));
    }

    #[test]
    fn reader_resyncs_after_damage() {
        let a = tweet(1, "kidney", None);
        let b = tweet(2, "liver DPWF liver", Some((1.0, 2.0)));
        let c = tweet(3, "heart", None);
        let mut buf = Vec::new();
        buf.extend_from_slice(&TweetFrame::encode(&a));
        let mid = TweetFrame::encode(&b);
        buf.extend_from_slice(&mid[..mid.len() / 2]); // truncated frame
        buf.extend_from_slice(&TweetFrame::encode(&c));
        let mut reader = FrameReader::new(&buf);
        let got: Vec<_> = reader.by_ref().collect();
        let oks: Vec<TweetId> = got
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|t| t.id))
            .collect();
        assert_eq!(oks, vec![TweetId(1), TweetId(3)]);
        assert!(got.iter().any(|r| r.is_err()));
        assert!(reader.resyncs() > 0);
        assert!(reader.bytes_skipped() > 0);
    }

    #[test]
    fn reader_never_yields_a_wrong_tweet_from_bit_flips() {
        let tweets = [
            tweet(10, "pancreas DPWF", None),
            tweet(11, "kidney ❤", Some((37.0, -97.0))),
            tweet(12, "bone marrow", None),
        ];
        let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
        let originals: std::collections::BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
        let mid_start = frames[0].len();
        let mid_len = frames[1].len();
        let mut buf: Vec<u8> = frames.concat();
        for bit in 0..mid_len * 8 {
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
            for item in FrameReader::new(&buf).flatten() {
                assert!(
                    originals.contains(&TweetFrame::encode(&item)),
                    "bit {bit} decoded a wrong tweet: {item:?}"
                );
            }
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
        }
    }

    // ---- wire v2 ----

    #[test]
    fn varint_roundtrips_and_rejects_junk() {
        for v in [
            0u64,
            1,
            127,
            128,
            129,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (back, n) = read_varint(&buf).ok().expect("roundtrip");
            assert_eq!(back, v, "value");
            assert_eq!(n, buf.len(), "consumed");
        }
        // Truncated mid-varint.
        assert!(matches!(read_varint(&[0x80]), Err(VarintError::Truncated)));
        assert!(matches!(read_varint(&[]), Err(VarintError::Truncated)));
        // Non-canonical: 0x80 0x00 re-encodes zero in two bytes.
        assert!(matches!(
            read_varint(&[0x80, 0x00]),
            Err(VarintError::Malformed(_))
        ));
        // Overflow: ten bytes whose top carries past bit 63.
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(read_varint(&over), Err(VarintError::Malformed(_))));
        // Over-long: eleven continuation bytes.
        let long = [0x80u8; 11];
        assert!(matches!(read_varint(&long), Err(VarintError::Malformed(_))));
    }

    #[test]
    fn word_fnv_pins_and_distinguishes_padding() {
        // Pin the algorithm's fixed points: empty input is one
        // length-mix step from the offset basis, and a single full
        // word is two multiplies. The committed golden vectors pin
        // full-frame checksums byte-exactly.
        const P: u64 = 0x100_0000_01b3;
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        assert_eq!(fnv1a_words(b""), BASIS.wrapping_mul(P));
        let word = u64::from_le_bytes(*b"DPWFDPWF");
        assert_eq!(
            fnv1a_words(b"DPWFDPWF"),
            ((BASIS ^ word).wrapping_mul(P) ^ 8).wrapping_mul(P)
        );
        // Zero-padding must not collide across lengths.
        assert_ne!(fnv1a_words(&[1]), fnv1a_words(&[1, 0]));
        assert_ne!(fnv1a_words(&[0; 8]), fnv1a_words(&[0; 16]));
    }

    #[test]
    fn batch_frame_roundtrips() {
        let tweets: Vec<Tweet> = vec![
            tweet(1, "kidney donor ❤", Some((37.69, -97.34))),
            tweet(2, "", None),
            tweet(3, "DPWF inside the text", Some((0.0, -0.0))),
            tweet(u64::MAX, "liver", None),
        ];
        let frame = BatchFrame::encode(&tweets);
        // Pin the envelope arithmetic: prefix + 2 one-byte varints
        // (payload < 128 would be 1 byte; compute generically).
        let payload: usize = tweets
            .iter()
            .map(|t| 29 + t.text.len() + if t.geo.is_some() { 16 } else { 0 })
            .sum();
        let mut lens = Vec::new();
        put_varint(&mut lens, payload as u64);
        put_varint(&mut lens, tweets.len() as u64);
        assert_eq!(
            frame.len(),
            V2_PREFIX_LEN + lens.len() + payload + TRAILER_LEN
        );
        assert_eq!(BatchFrame::decode(&frame).expect("decode"), tweets);
        let views = BatchFrame::decode_views(&frame).expect("views");
        assert_eq!(views.len(), tweets.len());
        for (v, t) in views.iter().zip(&tweets) {
            assert_eq!(v.id, t.id);
            assert_eq!(v.text, t.text);
            assert_eq!(
                v.geo.map(|(a, b)| (a.to_bits(), b.to_bits())),
                t.geo.map(|(a, b)| (a.to_bits(), b.to_bits()))
            );
            assert_eq!(&v.to_tweet(), t);
        }
    }

    #[test]
    fn v2_header_layout_is_pinned() {
        let frame = BatchFrame::encode(&[tweet(5, "heart", None)]);
        assert_eq!(&frame[0..4], b"DPWF");
        assert_eq!(frame[4], KIND_TWEET);
        assert_eq!(u16::from_le_bytes([frame[5], frame[6]]), 2);
        // One tweet, 34-byte record: both varints fit in one byte.
        assert_eq!(frame[7], 34); // payload length varint
        assert_eq!(frame[8], 1); // count varint
        assert_eq!(frame.len(), V2_PREFIX_LEN + 2 + 34 + TRAILER_LEN);
        let body = &frame[..frame.len() - TRAILER_LEN];
        let stored = u64::from_le_bytes(frame[frame.len() - TRAILER_LEN..].try_into().unwrap());
        assert_eq!(stored, fnv1a_words(body));
    }

    #[test]
    fn v2_decode_classifies_each_failure_mode() {
        let tweets = vec![
            tweet(1, "kidney", None),
            tweet(2, "liver", Some((1.0, 2.0))),
        ];
        let frame = BatchFrame::encode(&tweets);
        // Truncation at several depths.
        for cut in [1, V2_PREFIX_LEN, V2_PREFIX_LEN + 1, frame.len() - 1] {
            let err = BatchFrame::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut} gave {err:?}"
            );
        }
        // A payload bit flip is a checksum failure.
        let mut flipped = frame.clone();
        flipped[V2_PREFIX_LEN + 4] ^= 0x10;
        assert!(matches!(
            BatchFrame::decode(&flipped).unwrap_err(),
            FrameError::BadChecksum { .. }
        ));
        // Wrong first byte is BadMagic.
        let mut wrong = frame.clone();
        wrong[0] = b'X';
        assert_eq!(
            BatchFrame::decode(&wrong).unwrap_err(),
            FrameError::BadMagic
        );
        // Trailing garbage is strict-rejected but prefix-consumed.
        let mut trailing = frame.clone();
        trailing.push(0xEE);
        assert!(matches!(
            BatchFrame::decode(&trailing).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        let (views, consumed) = BatchFrame::views_prefix(&trailing).expect("prefix");
        assert_eq!(views.len(), 2);
        assert_eq!(consumed, frame.len());
        // A v1 frame handed to the v2 parser is a classified error,
        // not a panic or a wrong tweet.
        let v1 = TweetFrame::encode(&tweets[0]);
        assert!(matches!(
            BatchFrame::decode(&v1).unwrap_err(),
            FrameError::BadPayload(_)
        ));
    }

    #[test]
    fn v2_rejects_absurd_declared_sizes() {
        // Hand-build a frame declaring a huge payload: rejected before
        // any truncation check can drag the reader forward.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_TWEET);
        buf.extend_from_slice(&WIRE_VERSION_V2.to_le_bytes());
        put_varint(&mut buf, (MAX_PAYLOAD as u64) + 1);
        put_varint(&mut buf, 1);
        let sum = fnv1a_words(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            BatchFrame::decode(&buf).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Zero-count and over-count batches are rejected too.
        for count in [0u64, (MAX_BATCH as u64) + 1] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC);
            buf.push(KIND_TWEET);
            buf.extend_from_slice(&WIRE_VERSION_V2.to_le_bytes());
            put_varint(&mut buf, 0);
            put_varint(&mut buf, count);
            let sum = fnv1a_words(&buf);
            buf.extend_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(
                    BatchFrame::decode(&buf).unwrap_err(),
                    FrameError::BadPayload(_)
                ),
                "count {count}"
            );
        }
    }

    #[test]
    fn decode_any_sniffs_both_versions() {
        let t = tweet(40, "pancreas", None);
        let v1 = TweetFrame::encode(&t);
        assert_eq!(decode_any(&v1).expect("v1"), vec![t.clone()]);
        let batch = vec![t.clone(), tweet(41, "cornea", Some((3.0, 4.0)))];
        let v2 = BatchFrame::encode(&batch);
        assert_eq!(decode_any(&v2).expect("v2"), batch);
        // Unknown version is a classified error.
        let mut v9 = v1.clone();
        v9[5] = 9;
        assert!(matches!(
            decode_any(&v9).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Garbage falls through to v1 classification.
        assert_eq!(decode_any(b"XYZ").unwrap_err(), FrameError::BadMagic);
    }

    #[test]
    fn reader_interleaves_v1_and_v2_frames() {
        let a = tweet(1, "kidney", None);
        let b = tweet(2, "liver", Some((1.0, 2.0)));
        let c = tweet(3, "heart", None);
        let d = tweet(4, "cornea", None);
        let mut buf = Vec::new();
        buf.extend_from_slice(&TweetFrame::encode(&a));
        buf.extend_from_slice(&BatchFrame::encode(&[b.clone(), c.clone()]));
        buf.extend_from_slice(&TweetFrame::encode(&d));
        let got: Vec<Tweet> = FrameReader::new(&buf).map(|r| r.expect("clean")).collect();
        assert_eq!(got, vec![a.clone(), b.clone(), c.clone(), d.clone()]);
        // next_views reports the version of each frame.
        let mut reader = FrameReader::new(&buf);
        let versions: Vec<u16> = std::iter::from_fn(|| reader.next_views())
            .map(|r| r.expect("clean").version)
            .collect();
        assert_eq!(versions, vec![1, 2, 1]);
    }

    #[test]
    fn reader_resyncs_across_a_multikib_damaged_gap() {
        let a = tweet(1, "kidney", None);
        let z = tweet(99, "heart", None);
        let mut buf = TweetFrame::encode(&a);
        // An 8 KiB gap dense with near-misses: candidate 'D' bytes and
        // partial "DPW" magics, but no full magic.
        let gap_start = buf.len();
        for i in 0..2048usize {
            match i % 3 {
                0 => buf.extend_from_slice(b"DDDD"),
                1 => buf.extend_from_slice(b"DPW_"),
                _ => buf.extend_from_slice(b"DPD_"),
            }
        }
        let gap_len = buf.len() - gap_start;
        assert!(gap_len >= 8 * 1024);
        buf.extend_from_slice(&BatchFrame::encode(&[z.clone()]));
        let mut reader = FrameReader::new(&buf);
        let got: Vec<_> = reader.by_ref().collect();
        let oks: Vec<TweetId> = got
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|t| t.id))
            .collect();
        assert_eq!(oks, vec![TweetId(1), TweetId(99)]);
        assert_eq!(reader.resyncs(), 1, "one hunt crosses the whole gap");
        assert_eq!(reader.bytes_skipped(), gap_len as u64);
    }

    #[test]
    fn damaged_batches_never_yield_a_wrong_tweet() {
        let before = tweet(20, "bone marrow", None);
        let batch = vec![
            tweet(21, "kidney DPWF", Some((37.0, -97.0))),
            tweet(22, "liver ❤", None),
        ];
        let after = tweet(23, "pancreas", None);
        let known: std::collections::BTreeSet<u64> = [20, 21, 22, 23].iter().copied().collect();
        let pre = TweetFrame::encode(&before);
        let mid = BatchFrame::encode(&batch);
        let post = TweetFrame::encode(&after);
        let mid_start = pre.len();
        let mut buf = Vec::new();
        buf.extend_from_slice(&pre);
        buf.extend_from_slice(&mid);
        buf.extend_from_slice(&post);
        for bit in 0..mid.len() * 8 {
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
            for item in FrameReader::new(&buf).flatten() {
                assert!(
                    known.contains(&item.id.0),
                    "bit {bit} decoded a wrong tweet: {item:?}"
                );
            }
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
        }
    }

    #[test]
    fn control_frames_roundtrip() {
        let cases = [
            HandshakeFrame::new(0, 1, None),
            HandshakeFrame::new(3, 4, Some(0)),
            HandshakeFrame::new(15, 16, Some(u64::MAX)),
        ];
        for hs in cases {
            let frame = hs.encode();
            assert_eq!(frame[4], KIND_HANDSHAKE);
            assert_eq!(HandshakeFrame::decode(&frame).expect("handshake"), hs);
        }
        let markers = [
            MarkerFrame {
                epoch: 1,
                high_water: None,
            },
            MarkerFrame {
                epoch: u64::MAX,
                high_water: Some(12345),
            },
        ];
        for m in markers {
            let frame = m.encode();
            assert_eq!(frame[4], KIND_MARKER);
            assert_eq!(MarkerFrame::decode(&frame).expect("marker"), m);
        }
        let controls = [
            ControlFrame::EndOfStream,
            ControlFrame::Ack { epoch: 42 },
            ControlFrame::Report {
                payload: b"DPWF opaque report bytes".to_vec(),
            },
            ControlFrame::Report {
                payload: Vec::new(),
            },
        ];
        for c in controls {
            let frame = c.encode();
            assert_eq!(frame[4], KIND_CONTROL);
            assert_eq!(ControlFrame::decode(&frame).expect("control"), c);
        }
    }

    #[test]
    fn control_frames_reject_malformed_payloads() {
        // Shard out of range / zero shards.
        for (shard, shards) in [(1u32, 1u32), (5, 4), (0, 0)] {
            let mut payload = Vec::new();
            payload.extend_from_slice(&PROC_WIRE_VERSION.to_le_bytes());
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&shards.to_le_bytes());
            put_opt_u64(&mut payload, None);
            let frame = encode_envelope(KIND_HANDSHAKE, &payload);
            assert!(
                matches!(
                    HandshakeFrame::decode(&frame).unwrap_err(),
                    FrameError::BadPayload(_)
                ),
                "shard {shard}/{shards}"
            );
        }
        // Non-canonical optional: absent flag with non-zero value.
        let mut payload = Vec::new();
        payload.extend_from_slice(&9u64.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&7u64.to_le_bytes());
        let frame = encode_envelope(KIND_MARKER, &payload);
        assert!(matches!(
            MarkerFrame::decode(&frame).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Unknown control op.
        let frame = encode_envelope(KIND_CONTROL, &[9]);
        assert!(matches!(
            ControlFrame::decode(&frame).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Short payloads classify, never panic.
        for n in 0..18 {
            let frame = encode_envelope(KIND_HANDSHAKE, &vec![0u8; n]);
            assert!(HandshakeFrame::decode(&frame).is_err(), "len {n}");
        }
        // Kind mismatch: a marker handed to the handshake decoder.
        let m = MarkerFrame {
            epoch: 1,
            high_water: None,
        }
        .encode();
        assert!(matches!(
            HandshakeFrame::decode(&m).unwrap_err(),
            FrameError::BadPayload(_)
        ));
    }

    #[test]
    fn marker_single_bit_flips_always_classify() {
        // The cut-commitment guarantee: no single-bit flip of a marker
        // frame ever decodes as a (different) valid marker. The full
        // sweep across epochs lives in tests/wire_codec.rs.
        let frame = MarkerFrame {
            epoch: 7,
            high_water: Some(0x0102_0304_0506_0708),
        }
        .encode();
        for bit in 0..frame.len() * 8 {
            let mut buf = frame.clone();
            buf[bit / 8] ^= 1 << (bit % 8);
            assert!(
                MarkerFrame::decode(&buf).is_err(),
                "bit {bit} decoded a damaged marker"
            );
        }
    }

    #[test]
    fn frame_extent_reports_all_known_kinds() {
        let t = tweet(7, "kidney", None);
        let frames: Vec<(u8, u16, Vec<u8>)> = vec![
            (KIND_TWEET, WIRE_VERSION, TweetFrame::encode(&t)),
            (
                KIND_TWEET,
                WIRE_VERSION_V2,
                BatchFrame::encode(&[t.clone(), tweet(8, "liver", None)]),
            ),
            (
                KIND_HANDSHAKE,
                PROC_WIRE_VERSION,
                HandshakeFrame::new(0, 2, None).encode(),
            ),
            (
                KIND_MARKER,
                PROC_WIRE_VERSION,
                MarkerFrame {
                    epoch: 3,
                    high_water: None,
                }
                .encode(),
            ),
            (
                KIND_CONTROL,
                PROC_WIRE_VERSION,
                ControlFrame::EndOfStream.encode(),
            ),
        ];
        for (kind, version, frame) in &frames {
            let ext = frame_extent(frame).expect("extent");
            assert_eq!(ext.kind, *kind);
            assert_eq!(ext.version, *version);
            assert_eq!(ext.total, frame.len());
            // Extent works on a prefix-extended buffer too.
            let mut longer = frame.clone();
            longer.extend_from_slice(b"trailing");
            assert_eq!(frame_extent(&longer).expect("extent").total, frame.len());
            // And classifies truncation below the length fields.
            assert!(matches!(
                frame_extent(&frame[..4]).unwrap_err(),
                FrameError::Truncated { .. }
            ));
        }
        // Unknown kind/version pairs classify.
        let mut bogus = frames[0].2.clone();
        bogus[4] = 77;
        assert!(matches!(
            frame_extent(&bogus).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        assert_eq!(frame_extent(b"XYZ").unwrap_err(), FrameError::BadMagic);
    }
}
