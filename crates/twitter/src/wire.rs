//! Byte-level record framing for the stream path.
//!
//! A real Stream API hands the client length-delimited bytes, not
//! parsed structs — the wire feed is the untrusted input surface
//! (Morstatter et al. treat it exactly that way in the Streaming-API
//! bias study). This module is the codec for that surface: a
//! [`TweetFrame`] encodes one tweet into a self-delimiting binary
//! frame, and a [`FrameReader`] walks a byte stream, parsing frames
//! and resynchronizing on the magic after damage.
//!
//! # Frame layout (version 1)
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------
//!      0     4  magic          "DPWF"
//!      4     1  kind           3 (tweet frame)
//!      5     2  version        u16 LE, currently 1
//!      7     4  payload length u32 LE (payload bytes only)
//!     11     n  payload        tweet record (below)
//!   11+n     8  checksum       FNV-1a u64 LE over bytes [0, 11+n)
//! ```
//!
//! The payload is the same little-endian tweet record the checkpoint
//! format uses (`core::checkpoint` delegates here): id, user,
//! created-at as u64, text as u32-length-prefixed UTF-8, then a geo
//! flag byte followed by two `f64::to_bits` u64s when present.
//!
//! # Error taxonomy
//!
//! Decoding classifies every failure as one of four [`FrameError`]s:
//! [`Truncated`](FrameError::Truncated) (the buffer ends before the
//! declared frame does), [`BadChecksum`](FrameError::BadChecksum)
//! (the FNV trailer disagrees), [`BadMagic`](FrameError::BadMagic)
//! (the bytes at the cursor are not a frame start), and
//! [`BadPayload`](FrameError::BadPayload) (the envelope is sound but
//! the record inside is not: unknown kind or version, non-UTF-8 text,
//! a bad geo flag, trailing bytes).
//!
//! # Detection guarantee
//!
//! Strict decode ([`TweetFrame::decode`]) checks that the declared
//! total length equals the buffer length *before* verifying the
//! checksum. That ordering makes single-bit damage provably
//! detectable, not just probabilistically: a flip in the length field
//! changes the declared total and fails the length check, and a flip
//! anywhere else is caught by the checksum, because the FNV-1a step
//! `h → (h ^ b) * P` is injective in `h` for fixed-length input (P is
//! odd), so two buffers of equal length differing in any byte hash
//! differently. `tests/wire_codec.rs` sweeps every single-bit flip
//! and every truncation point of a reference frame to pin this down.
//!
//! # Resynchronization
//!
//! After a bad frame, [`FrameReader`] scans forward from the byte
//! after the failed frame start for the next `DPWF` magic and resumes
//! there. A magic-like byte pattern inside a payload can produce
//! extra classified errors during the scan, but never a wrong tweet:
//! any candidate start that is not a real frame fails the checksum.

use crate::time::SimInstant;
use crate::tweet::{Tweet, TweetId};
use crate::user::UserId;
use std::fmt;

/// First bytes of every frame — shared with the checkpoint envelope.
pub const MAGIC: [u8; 4] = *b"DPWF";
/// Envelope kind: a single tweet frame on the stream path.
pub const KIND_TWEET: u8 = 3;
/// Current tweet-frame layout version.
pub const WIRE_VERSION: u16 = 1;
/// Bytes before the payload: magic, kind, version, payload length.
pub const HEADER_LEN: usize = 4 + 1 + 2 + 4;
/// Bytes after the payload: the FNV-1a checksum.
pub const TRAILER_LEN: usize = 8;
/// Upper bound on a declared payload length. Rejecting absurd lengths
/// up front keeps a damaged length field from dragging the reader a
/// gigabyte forward before the truncation check fires.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// FNV-1a over a byte slice — the integrity trailer.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Why a frame failed to decode. See the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does.
    Truncated {
        /// Bytes available from the frame start.
        have: usize,
        /// Bytes the frame needs (total, including header + trailer).
        need: usize,
    },
    /// The FNV-1a trailer disagrees with the frame bytes.
    BadChecksum {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the frame body.
        computed: u64,
    },
    /// The bytes at the cursor do not start with the frame magic.
    BadMagic,
    /// The envelope is intact but the record inside is not.
    BadPayload(String),
}

impl FrameError {
    /// Stable short label for metrics and logs.
    pub fn class(&self) -> &'static str {
        match self {
            FrameError::Truncated { .. } => "truncated",
            FrameError::BadChecksum { .. } => "bad-checksum",
            FrameError::BadMagic => "bad-magic",
            FrameError::BadPayload(_) => "bad-payload",
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            FrameError::BadChecksum { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}")
            }
            FrameError::BadMagic => write!(f, "bad magic: not a frame start"),
            FrameError::BadPayload(msg) => write!(f, "bad payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one tweet record (the frame payload, no envelope) to `buf`.
///
/// This is the byte layout the checkpoint format embeds for tweets;
/// `core::checkpoint` delegates to it so the two stay identical.
pub fn encode_tweet_payload(buf: &mut Vec<u8>, t: &Tweet) {
    buf.extend_from_slice(&t.id.0.to_le_bytes());
    buf.extend_from_slice(&t.user.0.to_le_bytes());
    buf.extend_from_slice(&t.created_at.0.to_le_bytes());
    buf.extend_from_slice(&(t.text.len() as u32).to_le_bytes());
    buf.extend_from_slice(t.text.as_bytes());
    match t.geo {
        Some((lat, lon)) => {
            buf.push(1);
            buf.extend_from_slice(&lat.to_bits().to_le_bytes());
            buf.extend_from_slice(&lon.to_bits().to_le_bytes());
        }
        None => buf.push(0),
    }
}

/// Decodes one tweet record from the front of `bytes`, returning the
/// tweet and the number of payload bytes consumed.
pub fn decode_tweet_payload(bytes: &[u8]) -> Result<(Tweet, usize), FrameError> {
    let mut pos = 0usize;
    let mut take = |n: usize| -> Result<&[u8], FrameError> {
        let end = pos
            .checked_add(n)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| FrameError::BadPayload("record ends mid-field".into()))?;
        let out = &bytes[pos..end];
        pos = end;
        Ok(out)
    };
    let u64_of = |b: &[u8]| u64::from_le_bytes(b.try_into().expect("8 bytes"));
    let id = TweetId(u64_of(take(8)?));
    let user = UserId(u64_of(take(8)?));
    let created_at = SimInstant(u64_of(take(8)?));
    let text_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
    let text = String::from_utf8(take(text_len)?.to_vec())
        .map_err(|_| FrameError::BadPayload("non-UTF-8 text".into()))?;
    let geo = match take(1)?[0] {
        0 => None,
        1 => {
            let lat = f64::from_bits(u64_of(take(8)?));
            let lon = f64::from_bits(u64_of(take(8)?));
            Some((lat, lon))
        }
        other => {
            return Err(FrameError::BadPayload(format!("bad geo flag {other}")));
        }
    };
    Ok((
        Tweet {
            id,
            user,
            created_at,
            text,
            geo,
        },
        pos,
    ))
}

/// The tweet-frame codec: encode one tweet into a self-delimiting
/// frame, or decode one frame back into a tweet.
///
/// ```
/// use donorpulse_twitter::wire::TweetFrame;
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let tweet = Tweet {
///     id: TweetId(42),
///     user: UserId(7),
///     created_at: SimInstant(1000),
///     text: "kidney donor ❤".to_string(),
///     geo: Some((37.69, -97.34)),
/// };
/// let frame = TweetFrame::encode(&tweet);
/// assert_eq!(TweetFrame::decode(&frame).unwrap(), tweet);
/// ```
pub struct TweetFrame;

impl TweetFrame {
    /// Encodes one tweet as a framed byte record.
    ///
    /// # Panics
    ///
    /// Panics if the payload would exceed [`MAX_PAYLOAD`] — a frame
    /// that large could never be decoded, so producing it silently
    /// would be data loss.
    pub fn encode(tweet: &Tweet) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + tweet.text.len());
        encode_tweet_payload(&mut payload, tweet);
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "tweet payload {} exceeds MAX_PAYLOAD {MAX_PAYLOAD}",
            payload.len()
        );
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.push(KIND_TWEET);
        buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&payload);
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Strict decode: `bytes` must be exactly one intact frame.
    ///
    /// The declared total length is compared with the buffer length
    /// *before* the checksum check, which is what makes every
    /// single-bit flip detectable (see the module docs).
    pub fn decode(bytes: &[u8]) -> Result<Tweet, FrameError> {
        Self::parse(bytes, true).map(|(t, _)| t)
    }

    /// Prefix decode for stream scanning: decodes one frame from the
    /// front of `bytes`, returning the tweet and total frame length.
    pub fn decode_prefix(bytes: &[u8]) -> Result<(Tweet, usize), FrameError> {
        Self::parse(bytes, false)
    }

    fn parse(bytes: &[u8], strict: bool) -> Result<(Tweet, usize), FrameError> {
        // Magic first: a short buffer that cannot even be the start of
        // a frame is BadMagic, not Truncated.
        let magic_have = bytes.len().min(MAGIC.len());
        if bytes[..magic_have] != MAGIC[..magic_have] {
            return Err(FrameError::BadMagic);
        }
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: HEADER_LEN + TRAILER_LEN,
            });
        }
        let declared =
            u32::from_le_bytes(bytes[7..HEADER_LEN].try_into().expect("4 bytes")) as usize;
        if declared > MAX_PAYLOAD {
            return Err(FrameError::BadPayload(format!(
                "declared payload length {declared} exceeds cap {MAX_PAYLOAD}"
            )));
        }
        let total = HEADER_LEN + declared + TRAILER_LEN;
        if bytes.len() < total {
            return Err(FrameError::Truncated {
                have: bytes.len(),
                need: total,
            });
        }
        if strict && bytes.len() != total {
            return Err(FrameError::BadPayload(format!(
                "{} trailing bytes after the frame",
                bytes.len() - total
            )));
        }
        let (body, trailer) = bytes[..total].split_at(total - TRAILER_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(FrameError::BadChecksum { stored, computed });
        }
        let kind = bytes[4];
        if kind != KIND_TWEET {
            return Err(FrameError::BadPayload(format!(
                "unexpected frame kind {kind} (wanted {KIND_TWEET})"
            )));
        }
        let version = u16::from_le_bytes([bytes[5], bytes[6]]);
        if version != WIRE_VERSION {
            return Err(FrameError::BadPayload(format!(
                "unknown wire version {version} (this build reads {WIRE_VERSION})"
            )));
        }
        let (tweet, consumed) = decode_tweet_payload(&body[HEADER_LEN..])?;
        if consumed != declared {
            return Err(FrameError::BadPayload(format!(
                "{} unread payload bytes",
                declared - consumed
            )));
        }
        Ok((tweet, total))
    }
}

/// Walks a byte stream of concatenated frames, yielding decoded tweets
/// and classified errors, resynchronizing on the magic after damage.
///
/// ```
/// use donorpulse_twitter::wire::{FrameReader, TweetFrame};
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let tweet = Tweet {
///     id: TweetId(1),
///     user: UserId(2),
///     created_at: SimInstant(3),
///     text: "liver".to_string(),
///     geo: None,
/// };
/// let mut buf = TweetFrame::encode(&tweet);
/// buf[15] ^= 0x40; // damage the first frame
/// buf.extend_from_slice(&TweetFrame::encode(&tweet));
/// let results: Vec<_> = FrameReader::new(&buf).collect();
/// assert!(results[0].is_err());
/// assert_eq!(results[1].as_ref().unwrap(), &tweet);
/// ```
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    resyncs: u64,
    bytes_skipped: u64,
}

impl<'a> FrameReader<'a> {
    /// A reader over a concatenated-frame byte stream.
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader {
            buf,
            pos: 0,
            resyncs: 0,
            bytes_skipped: 0,
        }
    }

    /// How many times the reader had to hunt for the next magic.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes discarded while resynchronizing.
    pub fn bytes_skipped(&self) -> u64 {
        self.bytes_skipped
    }

    /// Advances past a bad frame start to the next magic candidate
    /// (or the end of the buffer).
    fn resync(&mut self) {
        let from = self.pos + 1;
        let next = self.buf[from.min(self.buf.len())..]
            .windows(MAGIC.len())
            .position(|w| w == MAGIC)
            .map(|off| from + off)
            .unwrap_or(self.buf.len());
        self.resyncs += 1;
        self.bytes_skipped += (next - self.pos) as u64;
        self.pos = next;
    }
}

impl Iterator for FrameReader<'_> {
    type Item = Result<Tweet, FrameError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.buf.len() {
            return None;
        }
        match TweetFrame::decode_prefix(&self.buf[self.pos..]) {
            Ok((tweet, consumed)) => {
                self.pos += consumed;
                Some(Ok(tweet))
            }
            Err(e) => {
                self.resync();
                Some(Err(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tweet(id: u64, text: &str, geo: Option<(f64, f64)>) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(id ^ 0xABCD),
            created_at: SimInstant(id.wrapping_mul(17)),
            text: text.to_string(),
            geo,
        }
    }

    #[test]
    fn frame_roundtrips() {
        for t in [
            tweet(1, "kidney donor ❤", Some((37.69, -97.34))),
            tweet(u64::MAX, "", None),
            tweet(7, "DPWF inside the text", Some((0.0, -0.0))),
        ] {
            let frame = TweetFrame::encode(&t);
            let geo_bytes = if t.geo.is_some() { 16 } else { 0 };
            assert_eq!(
                frame.len(),
                HEADER_LEN + TRAILER_LEN + 29 + t.text.len() + geo_bytes
            );
            let back = TweetFrame::decode(&frame).expect("decode");
            assert_eq!(back.id, t.id);
            assert_eq!(back.text, t.text);
            assert_eq!(
                back.geo.map(|(a, b)| (a.to_bits(), b.to_bits())),
                t.geo.map(|(a, b)| (a.to_bits(), b.to_bits()))
            );
        }
    }

    #[test]
    fn decode_classifies_each_failure_mode() {
        let frame = TweetFrame::encode(&tweet(9, "heart", None));
        // Truncation at several depths.
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, frame.len() - 1] {
            let err = TweetFrame::decode(&frame[..cut]).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut} gave {err:?}"
            );
        }
        // A payload bit flip is a checksum failure.
        let mut flipped = frame.clone();
        flipped[HEADER_LEN + 2] ^= 0x10;
        assert!(matches!(
            TweetFrame::decode(&flipped).unwrap_err(),
            FrameError::BadChecksum { .. }
        ));
        // Wrong first byte is BadMagic.
        let mut wrong = frame.clone();
        wrong[0] = b'X';
        assert_eq!(TweetFrame::decode(&wrong).unwrap_err(), FrameError::BadMagic);
        // Wrong kind with a repaired checksum is BadPayload.
        let mut kinded = frame.clone();
        kinded[4] = KIND_TWEET + 1;
        let body_len = kinded.len() - TRAILER_LEN;
        let sum = fnv1a(&kinded[..body_len]);
        kinded[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            TweetFrame::decode(&kinded).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        // Trailing garbage after a valid frame is rejected by strict
        // decode but consumed cleanly by prefix decode.
        let mut trailing = frame.clone();
        trailing.push(0xEE);
        assert!(matches!(
            TweetFrame::decode(&trailing).unwrap_err(),
            FrameError::BadPayload(_)
        ));
        let (t, consumed) = TweetFrame::decode_prefix(&trailing).expect("prefix");
        assert_eq!(t.id, TweetId(9));
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn absurd_declared_length_is_rejected_before_truncation() {
        let mut frame = TweetFrame::encode(&tweet(3, "liver", None));
        frame[7..HEADER_LEN].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            TweetFrame::decode(&frame).unwrap_err(),
            FrameError::BadPayload(_)
        ));
    }

    #[test]
    fn reader_resyncs_after_damage() {
        let a = tweet(1, "kidney", None);
        let b = tweet(2, "liver DPWF liver", Some((1.0, 2.0)));
        let c = tweet(3, "heart", None);
        let mut buf = Vec::new();
        buf.extend_from_slice(&TweetFrame::encode(&a));
        let mid = TweetFrame::encode(&b);
        buf.extend_from_slice(&mid[..mid.len() / 2]); // truncated frame
        buf.extend_from_slice(&TweetFrame::encode(&c));
        let mut reader = FrameReader::new(&buf);
        let got: Vec<_> = reader.by_ref().collect();
        let oks: Vec<TweetId> = got
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|t| t.id))
            .collect();
        assert_eq!(oks, vec![TweetId(1), TweetId(3)]);
        assert!(got.iter().any(|r| r.is_err()));
        assert!(reader.resyncs() > 0);
        assert!(reader.bytes_skipped() > 0);
    }

    #[test]
    fn reader_never_yields_a_wrong_tweet_from_bit_flips() {
        let tweets = [
            tweet(10, "pancreas DPWF", None),
            tweet(11, "kidney ❤", Some((37.0, -97.0))),
            tweet(12, "bone marrow", None),
        ];
        let frames: Vec<Vec<u8>> = tweets.iter().map(TweetFrame::encode).collect();
        let originals: std::collections::BTreeSet<Vec<u8>> = frames.iter().cloned().collect();
        let mid_start = frames[0].len();
        let mid_len = frames[1].len();
        let mut buf: Vec<u8> = frames.concat();
        for bit in 0..mid_len * 8 {
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
            for item in FrameReader::new(&buf).flatten() {
                assert!(
                    originals.contains(&TweetFrame::encode(&item)),
                    "bit {bit} decoded a wrong tweet: {item:?}"
                );
            }
            buf[mid_start + bit / 8] ^= 1 << (bit % 8);
        }
    }
}
