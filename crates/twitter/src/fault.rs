//! Seeded fault injection over the simulated Stream API.
//!
//! Morstatter & Pfeffer ("When is it Biased?") document the public
//! Stream API as a lossy, gappy feed: connections drop, records arrive
//! duplicated or out of order, and payloads occasionally come through
//! truncated. [`FaultyStreamApi`] reproduces those failure modes on top
//! of [`StreamApi`](crate::stream::StreamApi)'s clean delivery, behind
//! the same pull interface, so the consumer loop in `donorpulse-core`
//! can be exercised — and *verified byte-identical to batch* — under a
//! deterministic fault schedule.
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of `(seed, fault kind, delivery
//! index)`. The delivery index is a monotone counter over the filtered
//! stream, independent of wall time and thread scheduling, so the same
//! `FaultConfig` always produces the same fault schedule — disconnects
//! at the same records, the same duplicates, the same truncations.
//!
//! # Replay semantics
//!
//! Faults fire only on *fresh* deliveries (indices beyond the furthest
//! point ever delivered). After a reconnect the adapter rewinds by
//! [`FaultConfig::replay_window`] deliveries and replays that overlap
//! — replays arrive clean (no nested faults), modelling a backfilling
//! endpoint. That makes transient corruption recoverable: a consumer
//! that forces a reconnect on a malformed record receives the intact
//! record in the replayed window. Setting
//! [`FaultConfig::corrupt_persistent`] models a record that is broken
//! at the source and can never be recovered.

use crate::generator::TwitterSimulation;
use crate::tweet::Tweet;
use donorpulse_text::TextFilter;
use std::collections::VecDeque;

/// Domain tag mixed into disconnect decisions.
const DOMAIN_DISCONNECT: u64 = 0x5d15_c0de_0000_0001;
/// Domain tag mixed into duplicate-delivery decisions.
const DOMAIN_DUPLICATE: u64 = 0x5d15_c0de_0000_0002;
/// Domain tag mixed into reorder decisions.
const DOMAIN_REORDER: u64 = 0x5d15_c0de_0000_0003;
/// Domain tag mixed into corruption decisions.
const DOMAIN_CORRUPT: u64 = 0x5d15_c0de_0000_0004;
/// Domain tag mixed into reconnect-attempt failures.
const DOMAIN_CONNECT: u64 = 0x5d15_c0de_0000_0005;

/// SplitMix64 finalizer — the same mixer the generator uses, kept
/// local so fault scheduling never perturbs tweet realization.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure Bernoulli draw: does fault `domain` fire at `index`?
fn chance(seed: u64, domain: u64, index: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let z = splitmix(splitmix(seed ^ domain) ^ index);
    ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Seeded fault schedule for a [`FaultyStreamApi`].
///
/// All rates are per fresh delivery; decisions are pure in
/// `(seed, kind, delivery index)`, so the schedule is reproducible.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault schedule (independent of the tweet seed).
    pub seed: u64,
    /// Probability a fresh delivery is preceded by a disconnect.
    pub disconnect_rate: f64,
    /// Deliveries replayed after a successful reconnect (backfill
    /// overlap the consumer must deduplicate).
    pub replay_window: usize,
    /// Fresh deliveries permanently lost per reconnect — the coverage
    /// gap of a non-backfilling endpoint. `0` models full backfill.
    pub skip_on_reconnect: usize,
    /// Probability a fresh delivery is immediately delivered twice.
    pub duplicate_rate: f64,
    /// Probability a fresh delivery swaps places with its successor.
    pub reorder_rate: f64,
    /// Probability a delivery arrives truncated/malformed.
    pub corrupt_rate: f64,
    /// When `false`, corruption is transient: the replayed copy after a
    /// reconnect arrives intact. When `true`, the record is broken at
    /// the source and every delivery of it is corrupt.
    pub corrupt_persistent: bool,
    /// Probability an individual reconnect attempt fails (the consumer
    /// retries with backoff).
    pub connect_failure_rate: f64,
}

impl FaultConfig {
    /// No faults: the adapter degenerates to the clean stream.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            disconnect_rate: 0.0,
            replay_window: 0,
            skip_on_reconnect: 0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
            corrupt_persistent: false,
            connect_failure_rate: 0.0,
        }
    }

    /// Every fault mode active, all recoverable: full backfill on
    /// reconnect (`skip_on_reconnect = 0`) and transient corruption.
    /// A consumer with retries enabled must reconstruct the exact
    /// clean stream from this schedule.
    pub fn recoverable(seed: u64) -> Self {
        FaultConfig {
            seed,
            disconnect_rate: 0.002,
            replay_window: 6,
            skip_on_reconnect: 0,
            duplicate_rate: 0.01,
            reorder_rate: 0.01,
            corrupt_rate: 0.002,
            corrupt_persistent: false,
            connect_failure_rate: 0.25,
        }
    }

    /// A lossy endpoint: reconnects drop deliveries on the floor and
    /// corruption is persistent. Consumers surface the coverage gap
    /// instead of recovering it.
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            skip_on_reconnect: 3,
            corrupt_persistent: true,
            ..FaultConfig::recoverable(seed)
        }
    }
}

/// Counters the adapter keeps about the faults it injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Items handed to the consumer (tweets + corrupt records,
    /// including duplicates and replays).
    pub delivered: u64,
    /// Disconnects fired.
    pub disconnects: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Failed reconnect attempts.
    pub reconnect_failures: u64,
    /// Deliveries replayed inside post-reconnect overlap windows.
    pub replayed: u64,
    /// Fresh deliveries permanently lost to reconnect gaps.
    pub skipped: u64,
    /// Duplicate deliveries injected.
    pub duplicates_injected: u64,
    /// Adjacent swaps injected.
    pub reordered: u64,
    /// Corrupt records handed out.
    pub corrupted: u64,
}

/// A record that arrived truncated: the payload is an opaque prefix of
/// the wire form, unusable as a [`Tweet`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptRecord {
    /// The truncated wire payload.
    pub payload: String,
}

/// One item off the faulted stream: an intact tweet or a truncated
/// record the consumer must decide how to handle.
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// An intact tweet.
    Tweet(Tweet),
    /// A truncated/malformed record.
    Corrupt(CorruptRecord),
}

/// Result of one [`FaultyStreamApi::next_delivery`] pull.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// An item was delivered.
    Item(StreamItem),
    /// The connection dropped (or was already down); the consumer must
    /// [`FaultyStreamApi::reconnect`] before pulling again.
    Disconnected,
    /// The firehose is exhausted and every deliverable item was sent.
    End,
}

/// A filtered stream over the simulated firehose with seeded fault
/// injection, mirroring [`StreamApi`](crate::stream::StreamApi)'s
/// track-filtered delivery.
///
/// ```
/// use donorpulse_twitter::fault::{Delivery, FaultConfig, FaultyStreamApi, StreamItem};
/// use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};
/// use donorpulse_text::KeywordQuery;
///
/// let sim = TwitterSimulation::generate(GeneratorConfig::paper_scaled(0.002)).unwrap();
/// let mut stream =
///     FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
/// let mut n = 0u64;
/// loop {
///     match stream.next_delivery() {
///         Delivery::Item(StreamItem::Tweet(_)) => n += 1,
///         Delivery::Item(StreamItem::Corrupt(_)) | Delivery::Disconnected => unreachable!(),
///         Delivery::End => break,
///     }
/// }
/// assert_eq!(n, sim.on_topic_len() as u64);
/// ```
pub struct FaultyStreamApi<'a> {
    sim: &'a TwitterSimulation,
    filter: Box<dyn TextFilter + Send>,
    config: FaultConfig,
    /// Next firehose position to examine.
    pos: usize,
    /// Next delivery slot to produce.
    next_index: u64,
    /// Fresh frontier: delivery slots produced so far.
    max_fresh: u64,
    /// Recent fresh `(delivery index, firehose position)` pairs — the
    /// backfill buffer a reconnect rewinds into.
    ring: VecDeque<(u64, usize)>,
    /// Held-back item from a duplicate or swap, delivered next pull.
    stash: Option<StreamItem>,
    disconnected: bool,
    /// Delivery-index ranges `[from, until)` lost to reconnect gaps.
    /// Replays revisiting a lost slot stay lost (no resurrection), so
    /// the skipped count really is the coverage gap.
    skip_ranges: Vec<(u64, u64)>,
    /// Firehose floor set by [`FaultyStreamApi::resume_after`]: a
    /// reconnect with an empty backfill ring rewinds here, never to
    /// position zero, so a resumed consumer cannot be dragged back
    /// through the part of the stream it already checkpointed past.
    resume_floor: usize,
    /// Guard so a disconnect fires at most once per delivery slot.
    last_disconnect_at: Option<u64>,
    reconnect_attempts: u64,
    stats: FaultStats,
}

impl<'a> FaultyStreamApi<'a> {
    /// Opens a faulted streaming connection with a track filter.
    pub fn connect(
        sim: &'a TwitterSimulation,
        filter: Box<dyn TextFilter + Send>,
        config: FaultConfig,
    ) -> Self {
        let ring_cap = config.replay_window.max(1) + 2;
        FaultyStreamApi {
            sim,
            filter,
            config,
            pos: 0,
            next_index: 0,
            max_fresh: 0,
            ring: VecDeque::with_capacity(ring_cap),
            stash: None,
            disconnected: false,
            skip_ranges: Vec::new(),
            resume_floor: 0,
            last_disconnect_at: None,
            reconnect_attempts: 0,
            stats: FaultStats::default(),
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Fast-forwards a freshly connected stream past `id` without
    /// realizing the skipped records one by one.
    ///
    /// Tweet ids are monotone in firehose position, so the first
    /// position whose id exceeds `id` is found by binary search —
    /// `O(log n)` realizations instead of a full replay. This is the
    /// source half of checkpoint resume: a consumer that restored a
    /// sensor with high-water mark `id` re-enters the stream at the
    /// first record it has not ingested. The fault schedule restarts
    /// its delivery indices at the seek point (a resumed connection is
    /// a new connection); with recoverable fault configurations that
    /// cannot change which tweets are ultimately delivered, only when
    /// the faults fire. Reconnects after the seek never rewind below
    /// the seek point.
    pub fn resume_after(&mut self, id: crate::tweet::TweetId) {
        let mut lo = 0usize;
        let mut hi = self.sim.firehose_len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sim.realize(mid).id <= id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.pos = lo;
        self.resume_floor = lo;
        self.next_index = 0;
        self.max_fresh = 0;
        self.ring.clear();
        self.stash = None;
        self.skip_ranges.clear();
        self.last_disconnect_at = None;
    }

    /// True while the connection is down.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }

    /// Walks the firehose to the next record the track filter accepts.
    fn next_match(&mut self) -> Option<(usize, Tweet)> {
        while self.pos < self.sim.firehose_len() {
            let p = self.pos;
            self.pos += 1;
            let tweet = self.sim.realize(p);
            if self.filter.accepts(&tweet.text) {
                return Some((p, tweet));
            }
        }
        None
    }

    /// True when delivery slot `index` was lost to a reconnect gap.
    fn in_skip(&self, index: u64) -> bool {
        self.skip_ranges
            .iter()
            .any(|&(from, until)| index >= from && index < until)
    }

    /// Records a fresh delivery slot in the backfill ring.
    fn ring_push(&mut self, index: u64, pos: usize) {
        let cap = self.config.replay_window.max(1) + 2;
        if self.ring.len() == cap {
            self.ring.pop_front();
        }
        self.ring.push_back((index, pos));
    }

    /// Truncates a tweet's wire form mid-record, on a char boundary.
    fn truncate_of(tweet: &Tweet) -> CorruptRecord {
        let wire = format!(
            "{}|{}|{}|{}",
            tweet.id, tweet.user, tweet.created_at, tweet.text
        );
        let mut cut = wire.len() / 2;
        while cut > 0 && !wire.is_char_boundary(cut) {
            cut -= 1;
        }
        let mut payload = wire;
        payload.truncate(cut);
        CorruptRecord { payload }
    }

    /// Pulls the next delivery off the stream.
    pub fn next_delivery(&mut self) -> Delivery {
        if self.disconnected {
            return Delivery::Disconnected;
        }
        if let Some(item) = self.stash.take() {
            self.stats.delivered += 1;
            return Delivery::Item(item);
        }
        loop {
            let Some((p, tweet)) = self.next_match() else {
                return Delivery::End;
            };
            let index = self.next_index;
            let fresh = index >= self.max_fresh;
            if fresh {
                // Disconnect *before* delivering this slot; the guard
                // keeps the same slot from re-firing after replay.
                if self.last_disconnect_at != Some(index)
                    && chance(
                        self.config.seed,
                        DOMAIN_DISCONNECT,
                        index,
                        self.config.disconnect_rate,
                    )
                {
                    self.last_disconnect_at = Some(index);
                    self.disconnected = true;
                    self.stats.disconnects += 1;
                    // Un-consume the record so replay re-finds it.
                    self.pos = p;
                    return Delivery::Disconnected;
                }
                self.next_index = index + 1;
                self.ring_push(index, p);
                self.max_fresh = index + 1;
            } else {
                self.next_index = index + 1;
                self.stats.replayed += 1;
            }
            if self.in_skip(index) {
                // Lost to a reconnect gap — first encounter counts it.
                if fresh {
                    self.stats.skipped += 1;
                }
                continue;
            }
            let corrupt_now = (fresh || self.config.corrupt_persistent)
                && chance(
                    self.config.seed,
                    DOMAIN_CORRUPT,
                    index,
                    self.config.corrupt_rate,
                );
            let item = if corrupt_now {
                self.stats.corrupted += 1;
                StreamItem::Corrupt(Self::truncate_of(&tweet))
            } else {
                StreamItem::Tweet(tweet)
            };
            if fresh
                && chance(
                    self.config.seed,
                    DOMAIN_DUPLICATE,
                    index,
                    self.config.duplicate_rate,
                )
            {
                self.stats.duplicates_injected += 1;
                self.stash = Some(item.clone());
            } else if fresh
                && !self.in_skip(self.next_index)
                && chance(
                    self.config.seed,
                    DOMAIN_REORDER,
                    index,
                    self.config.reorder_rate,
                )
            {
                // Adjacent swap: deliver the successor first, stash
                // this item for the next pull. The swapped-in record is
                // delivered plain (no nested faults).
                if let Some((p2, t2)) = self.next_match() {
                    let j = self.next_index;
                    debug_assert!(j >= self.max_fresh);
                    self.next_index = j + 1;
                    self.ring_push(j, p2);
                    self.max_fresh = j + 1;
                    self.stats.reordered += 1;
                    self.stash = Some(item);
                    self.stats.delivered += 1;
                    return Delivery::Item(StreamItem::Tweet(t2));
                }
            }
            self.stats.delivered += 1;
            return Delivery::Item(item);
        }
    }

    /// Attempts to reconnect. Returns `false` when the attempt itself
    /// fails (per [`FaultConfig::connect_failure_rate`]); the consumer
    /// should back off and retry.
    ///
    /// On success the stream rewinds [`FaultConfig::replay_window`]
    /// deliveries (backfill overlap the consumer deduplicates) and, in
    /// lossy configurations, permanently skips the next
    /// [`FaultConfig::skip_on_reconnect`] fresh deliveries.
    ///
    /// Calling this while still connected is allowed — it models a
    /// consumer-forced reconnect (e.g. to re-request a record that
    /// arrived corrupt) and follows the same replay semantics.
    pub fn reconnect(&mut self) -> bool {
        self.reconnect_attempts += 1;
        if chance(
            self.config.seed,
            DOMAIN_CONNECT,
            self.reconnect_attempts,
            self.config.connect_failure_rate,
        ) {
            self.stats.reconnect_failures += 1;
            return false;
        }
        self.stats.reconnects += 1;
        self.disconnected = false;
        self.stash = None;
        let rewind_to = self
            .max_fresh
            .saturating_sub(self.config.replay_window as u64);
        if let Some(&(front_idx, _)) = self.ring.front() {
            let target = rewind_to.max(front_idx);
            let offset = (target - front_idx) as usize;
            let (idx, p) = self.ring[offset];
            self.next_index = idx;
            self.pos = p;
        } else {
            self.next_index = 0;
            self.pos = self.resume_floor;
        }
        if self.config.skip_on_reconnect > 0 {
            self.skip_ranges.push((
                self.max_fresh,
                self.max_fresh + self.config.skip_on_reconnect as u64,
            ));
        }
        // A replay can only rewind `replay_window` back from the fresh
        // frontier; ranges entirely behind that horizon can never be
        // revisited and are pruned.
        let horizon = self
            .max_fresh
            .saturating_sub(self.config.replay_window as u64);
        self.skip_ranges.retain(|&(_, until)| until > horizon);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmodel::GeneratorConfig;
    use crate::tweet::TweetId;
    use donorpulse_text::KeywordQuery;
    use std::collections::BTreeSet;

    fn small_sim() -> TwitterSimulation {
        TwitterSimulation::generate(GeneratorConfig::paper_scaled(0.002)).unwrap()
    }

    fn clean_ids(sim: &TwitterSimulation) -> Vec<TweetId> {
        sim.stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .map(|t| t.id)
            .collect()
    }

    /// Drains a faulted stream, reconnecting (with unbounded retries)
    /// until the end, returning every delivered item in order.
    fn drain(stream: &mut FaultyStreamApi<'_>) -> Vec<StreamItem> {
        let mut out = Vec::new();
        loop {
            match stream.next_delivery() {
                Delivery::Item(item) => out.push(item),
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        out
    }

    #[test]
    fn no_faults_matches_clean_stream() {
        let sim = small_sim();
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
        let delivered: Vec<TweetId> = drain(&mut stream)
            .into_iter()
            .map(|item| match item {
                StreamItem::Tweet(t) => t.id,
                StreamItem::Corrupt(_) => panic!("corruption with faults off"),
            })
            .collect();
        assert_eq!(delivered, clean_ids(&sim));
        assert_eq!(
            stream.stats(),
            FaultStats {
                delivered: delivered.len() as u64,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn recoverable_schedule_covers_clean_stream_exactly() {
        let sim = small_sim();
        let mut stream = FaultyStreamApi::connect(
            &sim,
            Box::new(KeywordQuery::paper()),
            FaultConfig::recoverable(7),
        );
        // Drain with the consumer's corrupt policy: a malformed record
        // forces a reconnect so the replay window redelivers it intact.
        let mut items = Vec::new();
        loop {
            match stream.next_delivery() {
                Delivery::Item(item) => {
                    let corrupt = matches!(item, StreamItem::Corrupt(_));
                    items.push(item);
                    if corrupt {
                        while !stream.reconnect() {}
                    }
                }
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        let stats = stream.stats();
        // The schedule must actually exercise the fault paths.
        assert!(stats.disconnects > 0, "no disconnects fired: {stats:?}");
        assert!(stats.duplicates_injected > 0, "no duplicates: {stats:?}");
        assert!(stats.reordered > 0, "no reorders: {stats:?}");
        assert!(stats.replayed > 0, "no replays: {stats:?}");
        assert_eq!(stats.skipped, 0, "recoverable schedule lost data");
        // Every clean tweet is delivered at least once, nothing extra,
        // and (modulo duplicates/reorders) ids cover the clean set.
        let mut seen = BTreeSet::new();
        for item in &items {
            match item {
                StreamItem::Tweet(t) => {
                    seen.insert(t.id);
                }
                // Transient corruption: the intact copy must also show up.
                StreamItem::Corrupt(_) => {}
            }
        }
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert_eq!(seen, clean);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let sim = small_sim();
        let run = |seed| {
            let mut s = FaultyStreamApi::connect(
                &sim,
                Box::new(KeywordQuery::paper()),
                FaultConfig::recoverable(seed),
            );
            (drain(&mut s), s.stats())
        };
        let (a_items, a_stats) = run(42);
        let (b_items, b_stats) = run(42);
        assert_eq!(a_items, b_items);
        assert_eq!(a_stats, b_stats);
        let (c_items, _) = run(43);
        assert_ne!(a_items, c_items, "different seeds gave identical faults");
    }

    #[test]
    fn lossy_schedule_skips_deliveries() {
        let sim = small_sim();
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::lossy(7));
        let items = drain(&mut stream);
        let stats = stream.stats();
        assert!(stats.skipped > 0, "lossy schedule lost nothing: {stats:?}");
        let mut seen = BTreeSet::new();
        for item in &items {
            if let StreamItem::Tweet(t) = item {
                seen.insert(t.id);
            }
        }
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert!(seen.is_subset(&clean));
        assert!(
            (seen.len() as u64) < clean.len() as u64,
            "skips did not reduce coverage"
        );
    }

    #[test]
    fn transient_corruption_recovers_via_forced_reconnect() {
        let sim = small_sim();
        let config = FaultConfig {
            corrupt_rate: 0.05,
            replay_window: 4,
            connect_failure_rate: 0.0,
            ..FaultConfig::none()
        };
        let mut stream = FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config);
        let mut intact = BTreeSet::new();
        let mut corrupt_seen = 0u64;
        loop {
            match stream.next_delivery() {
                Delivery::Item(StreamItem::Tweet(t)) => {
                    intact.insert(t.id);
                }
                Delivery::Item(StreamItem::Corrupt(_)) => {
                    corrupt_seen += 1;
                    assert!(stream.reconnect(), "forced reconnect failed");
                }
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        assert!(corrupt_seen > 0, "corruption never fired");
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert_eq!(intact, clean, "a corrupt record was never recovered");
    }

    #[test]
    fn resume_after_delivers_exactly_the_suffix() {
        let sim = small_sim();
        let clean = clean_ids(&sim);
        let resume_point = clean[clean.len() / 2];
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
        stream.resume_after(resume_point);
        let delivered: Vec<TweetId> = drain(&mut stream)
            .into_iter()
            .map(|item| match item {
                StreamItem::Tweet(t) => t.id,
                StreamItem::Corrupt(_) => panic!("corruption with faults off"),
            })
            .collect();
        let expected: Vec<TweetId> = clean.into_iter().filter(|&id| id > resume_point).collect();
        assert_eq!(delivered, expected);
    }

    #[test]
    fn reconnect_after_resume_never_rewinds_below_the_seek_point() {
        let sim = small_sim();
        let clean = clean_ids(&sim);
        let resume_point = clean[clean.len() / 2];
        // Aggressive disconnects with backfill: without the resume
        // floor, a disconnect before the first fresh delivery would
        // rewind the stream to position zero.
        let config = FaultConfig {
            disconnect_rate: 0.2,
            replay_window: 4,
            connect_failure_rate: 0.0,
            ..FaultConfig::none()
        };
        let mut stream = FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config);
        stream.resume_after(resume_point);
        let mut min_seen: Option<TweetId> = None;
        loop {
            match stream.next_delivery() {
                Delivery::Item(StreamItem::Tweet(t)) => {
                    min_seen = Some(min_seen.map_or(t.id, |m| m.min(t.id)));
                }
                Delivery::Item(StreamItem::Corrupt(_)) => unreachable!("corrupt rate is zero"),
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        assert!(
            stream.stats().disconnects > 0,
            "schedule never disconnected"
        );
        assert!(
            min_seen.expect("suffix non-empty") > resume_point,
            "a reconnect rewound behind the resume point"
        );
    }

    #[test]
    fn truncation_is_char_boundary_safe() {
        let sim = small_sim();
        let tweet = sim.realize(0);
        let rec = FaultyStreamApi::truncate_of(&tweet);
        // Would panic on a bad boundary; also must be a strict prefix.
        assert!(
            rec.payload.len()
                < format!(
                    "{}|{}|{}|{}",
                    tweet.id, tweet.user, tweet.created_at, tweet.text
                )
                .len()
        );
    }
}
