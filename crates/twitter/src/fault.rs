//! Seeded fault injection over the simulated Stream API.
//!
//! Morstatter & Pfeffer ("When is it Biased?") document the public
//! Stream API as a lossy, gappy feed: connections drop, records arrive
//! duplicated or out of order, and payloads occasionally come through
//! truncated. [`FaultyStreamApi`] reproduces those failure modes on top
//! of [`StreamApi`](crate::stream::StreamApi)'s clean delivery, behind
//! the same pull interface, so the consumer loop in `donorpulse-core`
//! can be exercised — and *verified byte-identical to batch* — under a
//! deterministic fault schedule.
//!
//! Every delivery is an **encoded byte frame** (see [`crate::wire`]),
//! exactly what a real endpoint hands a client. Corruption is real
//! byte-level damage — a prefix cut or a single bit flip applied to
//! the encoded frame — not a side-channel enum; the consumer discovers
//! it the only way a real client can, by failing to parse.
//!
//! # Wire modes
//!
//! The fault schedule itself is defined over *delivery slots* (one
//! tweet each) and is independent of framing. [`WireMode::V1`] puts
//! each slot on the wire as its own [`TweetFrame`]; [`WireMode::V2`]
//! packs runs of intact slots into batched
//! [`BatchFrame`]s, flushing early at a
//! damaged slot, a disconnect, or end of stream. A corrupt slot is
//! emitted as a *single-tweet v2 batch* damaged by the same seeded
//! `(seed, slot index)` draw that would have damaged its v1 frame —
//! so the consumer sees the same number of malformed deliveries at
//! the same slot positions, reconnect/replay/skip semantics are
//! slot-for-slot identical across modes, and [`FaultStats::delivered`]
//! counts slots (not frames) in both.
//!
//! # Determinism
//!
//! Every fault decision is a pure hash of `(seed, fault kind, delivery
//! index)`. The delivery index is a monotone counter over the filtered
//! stream, independent of wall time and thread scheduling, so the same
//! `FaultConfig` always produces the same fault schedule — disconnects
//! at the same records, the same duplicates, the same truncations.
//!
//! # Replay semantics
//!
//! Faults fire only on *fresh* deliveries (indices beyond the furthest
//! point ever delivered). After a reconnect the adapter rewinds by
//! [`FaultConfig::replay_window`] deliveries and replays that overlap
//! — replays arrive clean (no nested faults), modelling a backfilling
//! endpoint. That makes transient corruption recoverable: a consumer
//! that forces a reconnect on a malformed record receives the intact
//! record in the replayed window. Setting
//! [`FaultConfig::corrupt_persistent`] models a record that is broken
//! at the source and can never be recovered.

use crate::generator::TwitterSimulation;
use crate::tweet::Tweet;
use crate::wire::{BatchFrame, TweetFrame, WireMode, MAX_BATCH, TRAILER_LEN};
use donorpulse_text::TextFilter;
use std::collections::VecDeque;

/// Domain tag mixed into disconnect decisions.
const DOMAIN_DISCONNECT: u64 = 0x5d15_c0de_0000_0001;
/// Domain tag mixed into duplicate-delivery decisions.
const DOMAIN_DUPLICATE: u64 = 0x5d15_c0de_0000_0002;
/// Domain tag mixed into reorder decisions.
const DOMAIN_REORDER: u64 = 0x5d15_c0de_0000_0003;
/// Domain tag mixed into corruption decisions.
const DOMAIN_CORRUPT: u64 = 0x5d15_c0de_0000_0004;
/// Domain tag mixed into reconnect-attempt failures.
const DOMAIN_CONNECT: u64 = 0x5d15_c0de_0000_0005;
/// Domain tag mixed into the choice of *how* a frame is damaged.
const DOMAIN_DAMAGE: u64 = 0x5d15_c0de_0000_0006;

/// SplitMix64 finalizer — the same mixer the generator uses, kept
/// local so fault scheduling never perturbs tweet realization.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pure Bernoulli draw: does fault `domain` fire at `index`?
fn chance(seed: u64, domain: u64, index: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let z = splitmix(splitmix(seed ^ domain) ^ index);
    ((z >> 11) as f64 / (1u64 << 53) as f64) < rate
}

/// Seeded fault schedule for a [`FaultyStreamApi`].
///
/// All rates are per fresh delivery; decisions are pure in
/// `(seed, kind, delivery index)`, so the schedule is reproducible.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the fault schedule (independent of the tweet seed).
    pub seed: u64,
    /// Probability a fresh delivery is preceded by a disconnect.
    pub disconnect_rate: f64,
    /// Deliveries replayed after a successful reconnect (backfill
    /// overlap the consumer must deduplicate).
    pub replay_window: usize,
    /// Fresh deliveries permanently lost per reconnect — the coverage
    /// gap of a non-backfilling endpoint. `0` models full backfill.
    pub skip_on_reconnect: usize,
    /// Probability a fresh delivery is immediately delivered twice.
    pub duplicate_rate: f64,
    /// Probability a fresh delivery swaps places with its successor.
    pub reorder_rate: f64,
    /// Probability a delivery arrives damaged at the byte level
    /// (a prefix cut or a bit flip of the encoded frame).
    pub corrupt_rate: f64,
    /// When `false`, corruption is transient: the replayed copy after a
    /// reconnect arrives intact. When `true`, the record is broken at
    /// the source and every delivery of it is corrupt.
    pub corrupt_persistent: bool,
    /// Probability an individual reconnect attempt fails (the consumer
    /// retries with backoff).
    pub connect_failure_rate: f64,
}

impl FaultConfig {
    /// No faults: the adapter degenerates to the clean stream.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            disconnect_rate: 0.0,
            replay_window: 0,
            skip_on_reconnect: 0,
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
            corrupt_persistent: false,
            connect_failure_rate: 0.0,
        }
    }

    /// Every fault mode active, all recoverable: full backfill on
    /// reconnect (`skip_on_reconnect = 0`) and transient corruption.
    /// A consumer with retries enabled must reconstruct the exact
    /// clean stream from this schedule.
    pub fn recoverable(seed: u64) -> Self {
        FaultConfig {
            seed,
            disconnect_rate: 0.002,
            replay_window: 6,
            skip_on_reconnect: 0,
            duplicate_rate: 0.01,
            reorder_rate: 0.01,
            corrupt_rate: 0.002,
            corrupt_persistent: false,
            connect_failure_rate: 0.25,
        }
    }

    /// A lossy endpoint: reconnects drop deliveries on the floor and
    /// corruption is persistent. Consumers surface the coverage gap
    /// instead of recovering it.
    pub fn lossy(seed: u64) -> Self {
        FaultConfig {
            skip_on_reconnect: 3,
            corrupt_persistent: true,
            ..FaultConfig::recoverable(seed)
        }
    }
}

/// Counters the adapter keeps about the faults it injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames handed to the consumer (intact + damaged, including
    /// duplicates and replays).
    pub delivered: u64,
    /// Disconnects fired.
    pub disconnects: u64,
    /// Successful reconnects.
    pub reconnects: u64,
    /// Failed reconnect attempts.
    pub reconnect_failures: u64,
    /// Deliveries replayed inside post-reconnect overlap windows.
    pub replayed: u64,
    /// Fresh deliveries permanently lost to reconnect gaps.
    pub skipped: u64,
    /// Duplicate deliveries injected.
    pub duplicates_injected: u64,
    /// Adjacent swaps injected.
    pub reordered: u64,
    /// Damaged frames handed out.
    pub corrupted: u64,
}

/// One deliverable slot resolved by the fault schedule: the tweet it
/// carries and, when the slot arrived corrupt, the delivery index
/// whose seeded damage must be applied to the encoded frame.
#[derive(Debug, Clone)]
struct SlotItem {
    tweet: Tweet,
    damage: Option<u64>,
}

/// What the slot machine produced for one pull — the framing-free
/// core [`Delivery`] is rendered from.
enum SlotEvent {
    /// One delivery slot (intact or marked for damage).
    Item(SlotItem),
    /// The connection dropped.
    Disconnected,
    /// The firehose is exhausted.
    End,
}

/// Result of one [`FaultyStreamApi::next_delivery`] pull.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// An encoded frame was delivered — a [`TweetFrame`] in v1 mode,
    /// a [`BatchFrame`] in v2 mode, possibly
    /// damaged; the consumer must parse it to find out.
    Frame(Vec<u8>),
    /// The connection dropped (or was already down); the consumer must
    /// [`FaultyStreamApi::reconnect`] before pulling again.
    Disconnected,
    /// The firehose is exhausted and every deliverable frame was sent.
    End,
}

/// A filtered stream over the simulated firehose with seeded fault
/// injection, mirroring [`StreamApi`](crate::stream::StreamApi)'s
/// track-filtered delivery.
///
/// ```
/// use donorpulse_twitter::fault::{Delivery, FaultConfig, FaultyStreamApi};
/// use donorpulse_twitter::wire::TweetFrame;
/// use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};
/// use donorpulse_text::KeywordQuery;
///
/// let sim = TwitterSimulation::generate(GeneratorConfig::paper_scaled(0.002)).unwrap();
/// let mut stream =
///     FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
/// let mut n = 0u64;
/// loop {
///     match stream.next_delivery() {
///         Delivery::Frame(bytes) => {
///             TweetFrame::decode(&bytes).expect("faults are off");
///             n += 1;
///         }
///         Delivery::Disconnected => unreachable!(),
///         Delivery::End => break,
///     }
/// }
/// assert_eq!(n, sim.on_topic_len() as u64);
/// ```
pub struct FaultyStreamApi<'a> {
    sim: &'a TwitterSimulation,
    filter: Box<dyn TextFilter + Send>,
    config: FaultConfig,
    /// Next firehose position to examine.
    pos: usize,
    /// Next delivery slot to produce.
    next_index: u64,
    /// Fresh frontier: delivery slots produced so far.
    max_fresh: u64,
    /// Recent fresh `(delivery index, firehose position)` pairs — the
    /// backfill buffer a reconnect rewinds into.
    ring: VecDeque<(u64, usize)>,
    /// Held-back slot from a duplicate or swap, delivered next pull.
    stash: Option<SlotItem>,
    /// Frame layout the adapter puts slots on the wire in.
    wire: WireMode,
    /// Intact slots accumulating toward the next v2 batch frame.
    /// Always empty between `next_delivery` calls.
    batch_buf: Vec<Tweet>,
    /// Framed deliveries already rendered but not yet pulled (v2 mode
    /// flushes a batch *and* a marker in one step).
    pending: VecDeque<Delivery>,
    disconnected: bool,
    /// Delivery-index ranges `[from, until)` lost to reconnect gaps.
    /// Replays revisiting a lost slot stay lost (no resurrection), so
    /// the skipped count really is the coverage gap.
    skip_ranges: Vec<(u64, u64)>,
    /// Firehose floor set by [`FaultyStreamApi::resume_after`]: a
    /// reconnect with an empty backfill ring rewinds here, never to
    /// position zero, so a resumed consumer cannot be dragged back
    /// through the part of the stream it already checkpointed past.
    resume_floor: usize,
    /// Guard so a disconnect fires at most once per delivery slot.
    last_disconnect_at: Option<u64>,
    reconnect_attempts: u64,
    stats: FaultStats,
}

impl<'a> FaultyStreamApi<'a> {
    /// Opens a faulted streaming connection with a track filter.
    pub fn connect(
        sim: &'a TwitterSimulation,
        filter: Box<dyn TextFilter + Send>,
        config: FaultConfig,
    ) -> Self {
        let ring_cap = config.replay_window.max(1) + 2;
        FaultyStreamApi {
            sim,
            filter,
            config,
            pos: 0,
            next_index: 0,
            max_fresh: 0,
            ring: VecDeque::with_capacity(ring_cap),
            stash: None,
            wire: WireMode::V1,
            batch_buf: Vec::new(),
            pending: VecDeque::new(),
            disconnected: false,
            skip_ranges: Vec::new(),
            resume_floor: 0,
            last_disconnect_at: None,
            reconnect_attempts: 0,
            stats: FaultStats::default(),
        }
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Selects the frame layout deliveries are rendered in. The fault
    /// schedule is defined over slots and does not change with the
    /// mode (see the module docs).
    pub fn with_wire(mut self, wire: WireMode) -> Self {
        self.wire = wire;
        self
    }

    /// Fast-forwards a freshly connected stream past `id` without
    /// realizing the skipped records one by one.
    ///
    /// Tweet ids are monotone in firehose position, so the first
    /// position whose id exceeds `id` is found by binary search —
    /// `O(log n)` realizations instead of a full replay. This is the
    /// source half of checkpoint resume: a consumer that restored a
    /// sensor with high-water mark `id` re-enters the stream at the
    /// first record it has not ingested. The fault schedule restarts
    /// its delivery indices at the seek point (a resumed connection is
    /// a new connection); with recoverable fault configurations that
    /// cannot change which tweets are ultimately delivered, only when
    /// the faults fire. Reconnects after the seek never rewind below
    /// the seek point.
    pub fn resume_after(&mut self, id: crate::tweet::TweetId) {
        let mut lo = 0usize;
        let mut hi = self.sim.firehose_len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.sim.realize(mid).id <= id {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        self.pos = lo;
        self.resume_floor = lo;
        self.next_index = 0;
        self.max_fresh = 0;
        self.ring.clear();
        self.stash = None;
        self.batch_buf.clear();
        self.pending.clear();
        self.skip_ranges.clear();
        self.last_disconnect_at = None;
    }

    /// True while the connection is down.
    pub fn is_disconnected(&self) -> bool {
        self.disconnected
    }

    /// Walks the firehose to the next record the track filter accepts.
    fn next_match(&mut self) -> Option<(usize, Tweet)> {
        while self.pos < self.sim.firehose_len() {
            let p = self.pos;
            self.pos += 1;
            let tweet = self.sim.realize(p);
            if self.filter.accepts(&tweet.text) {
                return Some((p, tweet));
            }
        }
        None
    }

    /// True when delivery slot `index` was lost to a reconnect gap.
    fn in_skip(&self, index: u64) -> bool {
        self.skip_ranges
            .iter()
            .any(|&(from, until)| index >= from && index < until)
    }

    /// Records a fresh delivery slot in the backfill ring.
    fn ring_push(&mut self, index: u64, pos: usize) {
        let cap = self.config.replay_window.max(1) + 2;
        if self.ring.len() == cap {
            self.ring.pop_front();
        }
        self.ring.push_back((index, pos));
    }

    /// Applies deterministic byte-level damage to an encoded frame:
    /// either a prefix cut (the tail never arrived) or a single bit
    /// flip in the frame body. Both are provably caught by strict
    /// decode (`wire` module docs), so damage can never smuggle a
    /// wrong tweet past the parser. The choice and position are pure
    /// in `(seed, index)`, so persistent corruption re-applies the
    /// exact same damage on every redelivery of the slot.
    fn damage_frame(seed: u64, index: u64, frame: &mut Vec<u8>) {
        let z = splitmix(splitmix(seed ^ DOMAIN_DAMAGE) ^ index);
        let len = frame.len();
        debug_assert!(len > TRAILER_LEN, "frames are never this short");
        if z & 1 == 0 {
            // Prefix cut: keep between 1 and len-1 bytes.
            let keep = 1 + ((z >> 1) % (len as u64 - 1)) as usize;
            frame.truncate(keep);
        } else {
            // Bit flip somewhere in the frame body (before the
            // checksum trailer, so the trailer convicts the body).
            let body_bits = (len - TRAILER_LEN) as u64 * 8;
            let bit = ((z >> 1) % body_bits) as usize;
            frame[bit / 8] ^= 1 << (bit % 8);
        }
    }

    /// Resolves the next delivery slot, applying the fault schedule.
    /// This is the framing-independent core: every decision here is a
    /// function of the slot index alone, so v1 and v2 modes see the
    /// exact same disconnects, duplicates, swaps, skips, and damage.
    fn next_slot(&mut self) -> SlotEvent {
        if self.disconnected {
            return SlotEvent::Disconnected;
        }
        if let Some(item) = self.stash.take() {
            self.stats.delivered += 1;
            return SlotEvent::Item(item);
        }
        loop {
            let Some((p, tweet)) = self.next_match() else {
                return SlotEvent::End;
            };
            let index = self.next_index;
            let fresh = index >= self.max_fresh;
            if fresh {
                // Disconnect *before* delivering this slot; the guard
                // keeps the same slot from re-firing after replay.
                if self.last_disconnect_at != Some(index)
                    && chance(
                        self.config.seed,
                        DOMAIN_DISCONNECT,
                        index,
                        self.config.disconnect_rate,
                    )
                {
                    self.last_disconnect_at = Some(index);
                    self.disconnected = true;
                    self.stats.disconnects += 1;
                    // Un-consume the record so replay re-finds it.
                    self.pos = p;
                    return SlotEvent::Disconnected;
                }
                self.next_index = index + 1;
                self.ring_push(index, p);
                self.max_fresh = index + 1;
            } else {
                self.next_index = index + 1;
                self.stats.replayed += 1;
            }
            if self.in_skip(index) {
                // Lost to a reconnect gap — first encounter counts it.
                if fresh {
                    self.stats.skipped += 1;
                }
                continue;
            }
            let corrupt_now = (fresh || self.config.corrupt_persistent)
                && chance(
                    self.config.seed,
                    DOMAIN_CORRUPT,
                    index,
                    self.config.corrupt_rate,
                );
            let damage = if corrupt_now {
                self.stats.corrupted += 1;
                Some(index)
            } else {
                None
            };
            let item = SlotItem { tweet, damage };
            if fresh
                && chance(
                    self.config.seed,
                    DOMAIN_DUPLICATE,
                    index,
                    self.config.duplicate_rate,
                )
            {
                self.stats.duplicates_injected += 1;
                self.stash = Some(item.clone());
            } else if fresh
                && !self.in_skip(self.next_index)
                && chance(
                    self.config.seed,
                    DOMAIN_REORDER,
                    index,
                    self.config.reorder_rate,
                )
            {
                // Adjacent swap: deliver the successor first, stash
                // this slot for the next pull. The swapped-in record
                // is delivered intact (no nested faults).
                if let Some((p2, t2)) = self.next_match() {
                    let j = self.next_index;
                    debug_assert!(j >= self.max_fresh);
                    self.next_index = j + 1;
                    self.ring_push(j, p2);
                    self.max_fresh = j + 1;
                    self.stats.reordered += 1;
                    self.stash = Some(item);
                    self.stats.delivered += 1;
                    return SlotEvent::Item(SlotItem {
                        tweet: t2,
                        damage: None,
                    });
                }
            }
            self.stats.delivered += 1;
            return SlotEvent::Item(item);
        }
    }

    /// Renders one slot as a v1 frame, applying its seeded damage.
    fn render_v1(seed: u64, item: &SlotItem) -> Vec<u8> {
        let mut frame = TweetFrame::encode(&item.tweet);
        if let Some(at) = item.damage {
            Self::damage_frame(seed, at, &mut frame);
        }
        frame
    }

    /// Flushes the accumulating v2 batch (if any) into the pending
    /// delivery queue.
    fn flush_batch(&mut self) {
        if !self.batch_buf.is_empty() {
            let frame = BatchFrame::encode(&self.batch_buf);
            self.batch_buf.clear();
            self.pending.push_back(Delivery::Frame(frame));
        }
    }

    /// Pulls the next delivery off the stream.
    pub fn next_delivery(&mut self) -> Delivery {
        if let Some(d) = self.pending.pop_front() {
            return d;
        }
        let batch = match self.wire {
            WireMode::V1 => {
                return match self.next_slot() {
                    SlotEvent::Item(item) => {
                        Delivery::Frame(Self::render_v1(self.config.seed, &item))
                    }
                    SlotEvent::Disconnected => Delivery::Disconnected,
                    SlotEvent::End => Delivery::End,
                };
            }
            WireMode::V2 { batch } => batch.clamp(1, MAX_BATCH),
        };
        loop {
            match self.next_slot() {
                SlotEvent::Item(item) => match item.damage {
                    Some(at) => {
                        // A corrupt slot flushes the run before it and
                        // goes on the wire alone, as a single-tweet v2
                        // batch carrying the slot's seeded damage — so
                        // damage can never take intact neighbours down
                        // with it, and the dead-letter log preserves
                        // exactly one slot per damaged delivery.
                        self.flush_batch();
                        let mut frame = BatchFrame::encode(std::slice::from_ref(&item.tweet));
                        Self::damage_frame(self.config.seed, at, &mut frame);
                        self.pending.push_back(Delivery::Frame(frame));
                    }
                    None => {
                        self.batch_buf.push(item.tweet);
                        if self.batch_buf.len() >= batch {
                            self.flush_batch();
                        }
                    }
                },
                SlotEvent::Disconnected => {
                    self.flush_batch();
                    self.pending.push_back(Delivery::Disconnected);
                }
                SlotEvent::End => {
                    self.flush_batch();
                    self.pending.push_back(Delivery::End);
                }
            }
            if let Some(d) = self.pending.pop_front() {
                return d;
            }
        }
    }

    /// Attempts to reconnect. Returns `false` when the attempt itself
    /// fails (per [`FaultConfig::connect_failure_rate`]); the consumer
    /// should back off and retry.
    ///
    /// On success the stream rewinds [`FaultConfig::replay_window`]
    /// deliveries (backfill overlap the consumer deduplicates) and, in
    /// lossy configurations, permanently skips the next
    /// [`FaultConfig::skip_on_reconnect`] fresh deliveries.
    ///
    /// Calling this while still connected is allowed — it models a
    /// consumer-forced reconnect (e.g. to re-request a record that
    /// arrived corrupt) and follows the same replay semantics.
    pub fn reconnect(&mut self) -> bool {
        self.reconnect_attempts += 1;
        if chance(
            self.config.seed,
            DOMAIN_CONNECT,
            self.reconnect_attempts,
            self.config.connect_failure_rate,
        ) {
            self.stats.reconnect_failures += 1;
            return false;
        }
        self.stats.reconnects += 1;
        self.disconnected = false;
        self.stash = None;
        let rewind_to = self
            .max_fresh
            .saturating_sub(self.config.replay_window as u64);
        if let Some(&(front_idx, _)) = self.ring.front() {
            let target = rewind_to.max(front_idx);
            let offset = (target - front_idx) as usize;
            let (idx, p) = self.ring[offset];
            self.next_index = idx;
            self.pos = p;
        } else {
            self.next_index = 0;
            self.pos = self.resume_floor;
        }
        if self.config.skip_on_reconnect > 0 {
            self.skip_ranges.push((
                self.max_fresh,
                self.max_fresh + self.config.skip_on_reconnect as u64,
            ));
        }
        // A replay can only rewind `replay_window` back from the fresh
        // frontier; ranges entirely behind that horizon can never be
        // revisited and are pruned.
        let horizon = self
            .max_fresh
            .saturating_sub(self.config.replay_window as u64);
        self.skip_ranges.retain(|&(_, until)| until > horizon);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genmodel::GeneratorConfig;
    use crate::tweet::TweetId;
    use donorpulse_text::KeywordQuery;
    use std::collections::BTreeSet;

    fn small_sim() -> TwitterSimulation {
        TwitterSimulation::generate(GeneratorConfig::paper_scaled(0.002)).unwrap()
    }

    fn clean_ids(sim: &TwitterSimulation) -> Vec<TweetId> {
        sim.stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .map(|t| t.id)
            .collect()
    }

    /// Drains a faulted stream, reconnecting (with unbounded retries)
    /// until the end, returning every delivered frame in order.
    fn drain(stream: &mut FaultyStreamApi<'_>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        loop {
            match stream.next_delivery() {
                Delivery::Frame(frame) => out.push(frame),
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        out
    }

    /// Strict-decodes frames that parse, in delivery order.
    fn decoded_ids(frames: &[Vec<u8>]) -> Vec<TweetId> {
        frames
            .iter()
            .filter_map(|f| TweetFrame::decode(f).ok().map(|t| t.id))
            .collect()
    }

    #[test]
    fn no_faults_matches_clean_stream() {
        let sim = small_sim();
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
        let frames = drain(&mut stream);
        let delivered: Vec<TweetId> = frames
            .iter()
            .map(|f| TweetFrame::decode(f).expect("faults off").id)
            .collect();
        assert_eq!(delivered, clean_ids(&sim));
        assert_eq!(
            stream.stats(),
            FaultStats {
                delivered: delivered.len() as u64,
                ..FaultStats::default()
            }
        );
    }

    #[test]
    fn recoverable_schedule_covers_clean_stream_exactly() {
        let sim = small_sim();
        let mut stream = FaultyStreamApi::connect(
            &sim,
            Box::new(KeywordQuery::paper()),
            FaultConfig::recoverable(7),
        );
        // Drain with the consumer's corrupt policy: an unparseable
        // frame forces a reconnect so the replay window redelivers it
        // intact.
        let mut seen = BTreeSet::new();
        loop {
            match stream.next_delivery() {
                Delivery::Frame(frame) => match TweetFrame::decode(&frame) {
                    Ok(t) => {
                        seen.insert(t.id);
                    }
                    Err(_) => while !stream.reconnect() {},
                },
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        let stats = stream.stats();
        // The schedule must actually exercise the fault paths.
        assert!(stats.disconnects > 0, "no disconnects fired: {stats:?}");
        assert!(stats.duplicates_injected > 0, "no duplicates: {stats:?}");
        assert!(stats.reordered > 0, "no reorders: {stats:?}");
        assert!(stats.replayed > 0, "no replays: {stats:?}");
        assert!(stats.corrupted > 0, "no damage injected: {stats:?}");
        assert_eq!(stats.skipped, 0, "recoverable schedule lost data");
        // Every clean tweet is eventually delivered intact — transient
        // damage recovers through the replay window.
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert_eq!(seen, clean);
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let sim = small_sim();
        let run = |seed| {
            let mut s = FaultyStreamApi::connect(
                &sim,
                Box::new(KeywordQuery::paper()),
                FaultConfig::recoverable(seed),
            );
            (drain(&mut s), s.stats())
        };
        let (a_frames, a_stats) = run(42);
        let (b_frames, b_stats) = run(42);
        // Byte-for-byte identical deliveries, damage included.
        assert_eq!(a_frames, b_frames);
        assert_eq!(a_stats, b_stats);
        let (c_frames, _) = run(43);
        assert_ne!(a_frames, c_frames, "different seeds gave identical faults");
    }

    #[test]
    fn lossy_schedule_skips_deliveries() {
        let sim = small_sim();
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::lossy(7));
        let frames = drain(&mut stream);
        let stats = stream.stats();
        assert!(stats.skipped > 0, "lossy schedule lost nothing: {stats:?}");
        let seen: BTreeSet<TweetId> = decoded_ids(&frames).into_iter().collect();
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert!(seen.is_subset(&clean));
        assert!(
            (seen.len() as u64) < clean.len() as u64,
            "skips did not reduce coverage"
        );
    }

    #[test]
    fn transient_corruption_recovers_via_forced_reconnect() {
        let sim = small_sim();
        let config = FaultConfig {
            corrupt_rate: 0.05,
            replay_window: 4,
            connect_failure_rate: 0.0,
            ..FaultConfig::none()
        };
        let mut stream = FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config);
        let mut intact = BTreeSet::new();
        let mut corrupt_seen = 0u64;
        loop {
            match stream.next_delivery() {
                Delivery::Frame(frame) => match TweetFrame::decode(&frame) {
                    Ok(t) => {
                        intact.insert(t.id);
                    }
                    Err(_) => {
                        corrupt_seen += 1;
                        assert!(stream.reconnect(), "forced reconnect failed");
                    }
                },
                Delivery::Disconnected => while !stream.reconnect() {},
                Delivery::End => break,
            }
        }
        assert!(corrupt_seen > 0, "corruption never fired");
        let clean: BTreeSet<TweetId> = clean_ids(&sim).into_iter().collect();
        assert_eq!(intact, clean, "a damaged frame was never recovered");
    }

    #[test]
    fn resume_after_delivers_exactly_the_suffix() {
        let sim = small_sim();
        let clean = clean_ids(&sim);
        let resume_point = clean[clean.len() / 2];
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none());
        stream.resume_after(resume_point);
        let delivered = decoded_ids(&drain(&mut stream));
        let expected: Vec<TweetId> = clean.into_iter().filter(|&id| id > resume_point).collect();
        assert_eq!(delivered, expected);
    }

    #[test]
    fn reconnect_after_resume_never_rewinds_below_the_seek_point() {
        let sim = small_sim();
        let clean = clean_ids(&sim);
        let resume_point = clean[clean.len() / 2];
        // Aggressive disconnects with backfill: without the resume
        // floor, a disconnect before the first fresh delivery would
        // rewind the stream to position zero.
        let config = FaultConfig {
            disconnect_rate: 0.2,
            replay_window: 4,
            connect_failure_rate: 0.0,
            ..FaultConfig::none()
        };
        let mut stream = FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config);
        stream.resume_after(resume_point);
        let min_seen = decoded_ids(&drain(&mut stream)).into_iter().min();
        assert!(
            stream.stats().disconnects > 0,
            "schedule never disconnected"
        );
        assert!(
            min_seen.expect("suffix non-empty") > resume_point,
            "a reconnect rewound behind the resume point"
        );
    }

    #[test]
    fn damaged_frames_never_decode_and_never_panic() {
        let sim = small_sim();
        let tweet = sim.realize(0);
        let pristine = TweetFrame::encode(&tweet);
        for seed in 0..8u64 {
            for index in 0..64u64 {
                let mut frame = pristine.clone();
                FaultyStreamApi::damage_frame(seed, index, &mut frame);
                assert_ne!(frame, pristine, "damage was a no-op at {seed}/{index}");
                let err = TweetFrame::decode(&frame).expect_err("damaged frame decoded to a tweet");
                // Damage is always classified, never a panic.
                let _ = err.class();
            }
        }
    }

    #[test]
    fn v2_mode_covers_the_clean_stream_in_batches() {
        let sim = small_sim();
        let mut stream =
            FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), FaultConfig::none())
                .with_wire(WireMode::V2 { batch: 16 });
        let mut ids = Vec::new();
        let mut frames = 0usize;
        loop {
            match stream.next_delivery() {
                Delivery::Frame(frame) => {
                    let batch = BatchFrame::decode(&frame).expect("faults off");
                    assert!(batch.len() <= 16);
                    ids.extend(batch.iter().map(|t| t.id));
                    frames += 1;
                }
                Delivery::Disconnected => unreachable!(),
                Delivery::End => break,
            }
        }
        let clean = clean_ids(&sim);
        assert_eq!(ids, clean);
        assert_eq!(frames, clean.len().div_ceil(16));
        // `delivered` counts slots, not frames, in both modes.
        assert_eq!(stream.stats().delivered, clean.len() as u64);
    }

    #[test]
    fn v2_mode_matches_v1_slot_for_slot() {
        let sim = small_sim();
        // Drain both modes with the same reconnect policy and compare
        // the flattened slot sequence: intact slots must carry the
        // same ids in the same order, damaged slots must fail decode
        // at the same positions, and the fault counters must agree.
        let run = |wire: WireMode| {
            let mut s = FaultyStreamApi::connect(
                &sim,
                Box::new(KeywordQuery::paper()),
                FaultConfig::recoverable(7),
            )
            .with_wire(wire);
            let mut slots: Vec<Option<TweetId>> = Vec::new();
            loop {
                match s.next_delivery() {
                    Delivery::Frame(frame) => match crate::wire::decode_any(&frame) {
                        Ok(tweets) => slots.extend(tweets.iter().map(|t| Some(t.id))),
                        Err(_) => slots.push(None),
                    },
                    Delivery::Disconnected => while !s.reconnect() {},
                    Delivery::End => break,
                }
            }
            (slots, s.stats())
        };
        let (v1_slots, v1_stats) = run(WireMode::V1);
        let (v2_slots, v2_stats) = run(WireMode::v2());
        assert!(v1_slots.iter().any(Option::is_none), "no damage fired");
        assert_eq!(v1_slots, v2_slots);
        assert_eq!(v1_stats, v2_stats);
    }

    #[test]
    fn v2_damaged_batches_arrive_alone_and_never_decode() {
        let sim = small_sim();
        let config = FaultConfig {
            corrupt_rate: 0.2,
            corrupt_persistent: true,
            ..FaultConfig::none()
        };
        let mut stream = FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config)
            .with_wire(WireMode::V2 { batch: 8 });
        let mut damaged = 0u64;
        loop {
            match stream.next_delivery() {
                Delivery::Frame(frame) => {
                    if let Err(e) = crate::wire::decode_any(&frame) {
                        damaged += 1;
                        // Classified, never a panic or a wrong tweet.
                        let _ = e.class();
                    }
                }
                Delivery::Disconnected => unreachable!("no disconnects configured"),
                Delivery::End => break,
            }
        }
        assert_eq!(damaged, stream.stats().corrupted);
        assert!(damaged > 0, "corruption never fired");
    }

    #[test]
    fn persistent_damage_is_identical_on_redelivery() {
        let sim = small_sim();
        let config = FaultConfig {
            corrupt_rate: 1.0,
            corrupt_persistent: true,
            replay_window: 4,
            connect_failure_rate: 0.0,
            ..FaultConfig::none()
        };
        let run = |()| {
            let mut s =
                FaultyStreamApi::connect(&sim, Box::new(KeywordQuery::paper()), config.clone());
            let mut first: Option<Vec<u8>> = None;
            if let Delivery::Frame(f) = s.next_delivery() {
                first = Some(f);
            }
            // Force a reconnect; the replayed copy must carry the
            // exact same damage (broken at the source).
            assert!(s.reconnect());
            let mut replayed: Option<Vec<u8>> = None;
            if let Delivery::Frame(f) = s.next_delivery() {
                replayed = Some(f);
            }
            (first.unwrap(), replayed.unwrap())
        };
        let (first, replayed) = run(());
        assert_eq!(first, replayed, "persistent damage drifted across replay");
        assert!(TweetFrame::decode(&first).is_err());
    }
}
