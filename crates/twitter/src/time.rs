//! Simulated time over the paper's collection window.
//!
//! The paper collected from **Apr 22 2015** to **May 11 2016** — 385
//! days (Table I). Instants are seconds since the collection start;
//! calendar conversion uses the standard civil-from-days algorithm, so
//! dates render exactly as in the paper without pulling in a time crate.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Days in the paper's collection window (Table I).
pub const COLLECTION_DAYS: u32 = 385;

/// Calendar date of the first collection day.
pub const COLLECTION_START: CivilDate = CivilDate {
    year: 2015,
    month: 4,
    day: 22,
};

/// Seconds per simulated day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A calendar date (proleptic Gregorian).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CivilDate {
    /// Year (e.g. 2015).
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl CivilDate {
    /// Days since the civil epoch 1970-01-01 (Howard Hinnant's
    /// `days_from_civil`).
    pub fn days_from_epoch(self) -> i64 {
        let y = if self.month <= 2 {
            self.year - 1
        } else {
            self.year
        } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400; // [0, 399]
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`CivilDate::days_from_epoch`] (`civil_from_days`).
    pub fn from_days_from_epoch(z: i64) -> CivilDate {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8; // [1, 12]
        CivilDate {
            year: (if m <= 2 { y + 1 } else { y }) as i32,
            month: m,
            day: d,
        }
    }
}

impl fmt::Display for CivilDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MONTHS: [&str; 12] = [
            "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
        ];
        write!(
            f,
            "{} {:02} {}",
            MONTHS[(self.month - 1) as usize],
            self.day,
            self.year
        )
    }
}

/// An instant inside the simulation: seconds since collection start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(pub u64);

impl SimInstant {
    /// The first instant of the collection window.
    pub const START: SimInstant = SimInstant(0);

    /// Builds an instant from a day index and seconds within the day.
    pub fn from_day(day: u32, second_of_day: u32) -> Self {
        SimInstant(day as u64 * SECONDS_PER_DAY + second_of_day as u64)
    }

    /// Day index since collection start (day 0 = Apr 22 2015).
    pub fn day(self) -> u32 {
        (self.0 / SECONDS_PER_DAY) as u32
    }

    /// Calendar date of this instant.
    pub fn date(self) -> CivilDate {
        CivilDate::from_days_from_epoch(COLLECTION_START.days_from_epoch() + self.day() as i64)
    }

    /// True when the instant is inside the paper's 385-day window.
    pub fn in_collection_window(self) -> bool {
        self.day() < COLLECTION_DAYS
    }
}

/// A deterministic, manually advanced clock for consumer-side timing:
/// retry backoff, simulated service latency, reconnect delays.
///
/// Production stream consumers sleep on a wall clock between retries;
/// tests and deterministic replays cannot. `VirtualClock` is the
/// substitute: every "sleep" becomes an [`VirtualClock::advance_ms`]
/// call, so two runs with the same fault schedule accumulate exactly
/// the same virtual time, and backoff policy is testable without a
/// single real-time wait.
///
/// ```
/// use donorpulse_twitter::time::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_ms(250); // a backoff "sleep"
/// clock.advance_ms(500);
/// assert_eq!(clock.now_ms(), 750);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Milliseconds elapsed on this clock.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advances the clock by `ms` milliseconds (a virtual sleep).
    pub fn advance_ms(&mut self, ms: u64) {
        self.now_ms = self.now_ms.saturating_add(ms);
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0 % SECONDS_PER_DAY;
        write!(
            f,
            "{} {:02}:{:02}:{:02}",
            self.date(),
            s / 3600,
            (s / 60) % 60,
            s % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_round_trips() {
        for &days in &[-1000i64, 0, 1, 365, 16_000, 20_000] {
            let d = CivilDate::from_days_from_epoch(days);
            assert_eq!(d.days_from_epoch(), days);
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
            .days_from_epoch(),
            0
        );
        // Leap day 2016 exists (2016-02-29).
        let feb29 = CivilDate {
            year: 2016,
            month: 2,
            day: 29,
        };
        let mar1 = CivilDate {
            year: 2016,
            month: 3,
            day: 1,
        };
        assert_eq!(mar1.days_from_epoch() - feb29.days_from_epoch(), 1);
    }

    #[test]
    fn collection_window_matches_table_one() {
        // Day 0 is Apr 22 2015; the last day (384) is May 10 2016, so the
        // collection *finishes* on May 11 2016 — exactly Table I.
        assert_eq!(SimInstant::START.date().to_string(), "Apr 22 2015");
        let last = SimInstant::from_day(COLLECTION_DAYS - 1, 0);
        assert_eq!(last.date().to_string(), "May 10 2016");
        let finish = SimInstant::from_day(COLLECTION_DAYS, 0);
        assert_eq!(finish.date().to_string(), "May 11 2016");
        assert!(last.in_collection_window());
        assert!(!finish.in_collection_window());
    }

    #[test]
    fn window_spans_a_leap_day() {
        // Feb 29 2016 falls inside the window — the calendar math must
        // cross it correctly.
        let feb29_offset = (CivilDate {
            year: 2016,
            month: 2,
            day: 29,
        }
        .days_from_epoch()
            - COLLECTION_START.days_from_epoch()) as u32;
        assert!(feb29_offset < COLLECTION_DAYS);
        assert_eq!(
            SimInstant::from_day(feb29_offset, 0).date().to_string(),
            "Feb 29 2016"
        );
    }

    #[test]
    fn instant_accessors() {
        let t = SimInstant::from_day(3, 3_661);
        assert_eq!(t.day(), 3);
        assert_eq!(t.to_string(), "Apr 25 2015 01:01:01");
        assert!(SimInstant::from_day(0, 0) < t);
    }

    #[test]
    fn day_boundary() {
        assert_eq!(SimInstant(SECONDS_PER_DAY - 1).day(), 0);
        assert_eq!(SimInstant(SECONDS_PER_DAY).day(), 1);
    }
}
