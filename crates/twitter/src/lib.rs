//! Simulated Twitter platform for `donorpulse`.
//!
//! The paper's dataset is a proprietary 385-day crawl of the Twitter
//! Stream API (Apr 22 2015 – May 11 2016; 975,021 collected tweets, of
//! which 134,986 could be attributed to USA users across 71,947 users).
//! That crawl cannot be replayed, so this crate implements the closest
//! synthetic equivalent that exercises the *same code paths*:
//!
//! * [`time`] — the simulated clock over the paper's exact collection
//!   window, with real calendar math;
//! * [`user`] — user profiles with heterogeneous activity, noisy
//!   self-reported locations, and *planted ground truth* (home state,
//!   attention archetype) that the real crawl never offered, making the
//!   characterization pipeline verifiable end to end;
//! * [`tweet`] — tweets with text, timestamps and rare GPS tags (~1.4%);
//! * [`textgen`] — template-based tweet text: on-topic organ-donation
//!   messages plus near-miss chatter the stream filter must reject;
//! * [`genmodel`] — the generative model: census-weighted state
//!   assignment, organ popularity, per-state anomaly multipliers
//!   (Kansas kidney, Massachusetts kidney+lung, …), Dirichlet attention
//!   archetypes, heavy-tailed tweets-per-user;
//! * [`generator`] — materializes users and a time-ordered tweet stream;
//! * [`stream`] — the Stream API endpoint: `track` filtering, optional
//!   sampling, connection-style iteration;
//! * [`wire`] — the byte-level record framing the stream path speaks:
//!   a magic/kind/version/length/checksum envelope per tweet (v1) or
//!   per batch of tweets (v2, varint lengths + zero-copy
//!   [`TweetView`] decode), with a resynchronizing
//!   version-sniffing [`FrameReader`] and a
//!   classified error taxonomy;
//! * [`fault`] — seeded fault injection over the stream endpoint:
//!   disconnects with replayed backfill windows, duplicate and
//!   out-of-order delivery, byte-level frame damage (prefix cuts, bit
//!   flips) — the lossy-feed behaviour Morstatter & Pfeffer document
//!   for the real Stream API;
//! * [`corpus`] — the collected-corpus container and the Table I
//!   statistics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fault;
pub mod generator;
pub mod genmodel;
pub mod io;
pub mod stream;
pub mod textgen;
pub mod time;
pub mod tweet;
pub mod user;
pub mod wire;

pub use corpus::{Corpus, CorpusStats};
pub use fault::{Delivery, FaultConfig, FaultStats, FaultyStreamApi};
pub use generator::TwitterSimulation;
pub use genmodel::{Archetype, AwarenessEvent, GeneratorConfig};
pub use stream::{FrameStream, StreamApi};
pub use time::{SimInstant, COLLECTION_DAYS, COLLECTION_START};
pub use tweet::{Tweet, TweetId};
pub use user::{UserId, UserProfile};
pub use wire::{
    BatchFrame, ControlFrame, FrameError, FrameReader, FrameViews, HandshakeFrame, MarkerFrame,
    TweetFrame, TweetView, WireMode,
};
