//! The collected-tweet corpus and its Table I statistics.

use crate::time::{SimInstant, COLLECTION_DAYS};
use crate::tweet::Tweet;
use crate::user::UserId;
use donorpulse_text::extract::{MentionCounts, OrganExtractor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bag of collected tweets (typically the output of a tracked stream,
/// possibly further filtered to USA users by the pipeline).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Corpus {
    tweets: Vec<Tweet>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Collects every tweet from an iterator.
    pub fn from_tweets<I: IntoIterator<Item = Tweet>>(tweets: I) -> Self {
        Self {
            tweets: tweets.into_iter().collect(),
        }
    }

    /// Adds one tweet.
    pub fn push(&mut self, tweet: Tweet) {
        self.tweets.push(tweet);
    }

    /// The tweets, in collection order.
    pub fn tweets(&self) -> &[Tweet] {
        &self.tweets
    }

    /// Number of tweets.
    pub fn len(&self) -> usize {
        self.tweets.len()
    }

    /// True when no tweets were collected.
    pub fn is_empty(&self) -> bool {
        self.tweets.is_empty()
    }

    /// Distinct users appearing in the corpus.
    pub fn user_count(&self) -> usize {
        let mut seen: Vec<u64> = self.tweets.iter().map(|t| t.user.0).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Per-user organ mention counts, aggregated over all their tweets —
    /// the raw material of the paper's contingency matrix `U`.
    pub fn mentions_by_user(&self) -> HashMap<UserId, MentionCounts> {
        let extractor = OrganExtractor::new();
        let mut map: HashMap<UserId, MentionCounts> = HashMap::new();
        for t in &self.tweets {
            let mc = extractor.extract(&t.text);
            map.entry(t.user).or_default().merge(&mc);
        }
        map
    }

    /// Removes exact duplicates: later tweets by the same user with
    /// byte-identical text (self-retweets, client double-posts). Returns
    /// how many were removed. Order is preserved.
    pub fn dedup_exact(&mut self) -> usize {
        let mut seen: std::collections::HashSet<(UserId, u64)> = std::collections::HashSet::new();
        let before = self.tweets.len();
        self.tweets.retain(|t| {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            t.text.hash(&mut h);
            seen.insert((t.user, h.finish()))
        });
        before - self.tweets.len()
    }

    /// Keeps only tweets satisfying `predicate` (used by the USA filter).
    pub fn retain(&mut self, predicate: impl FnMut(&Tweet) -> bool) {
        self.tweets.retain(predicate);
    }

    /// Computes the Table I summary statistics.
    pub fn stats(&self) -> CorpusStats {
        let extractor = OrganExtractor::new();
        let mut per_user: HashMap<UserId, MentionCounts> = HashMap::new();
        let mut organs_per_tweet_sum = 0u64;
        let mut first: Option<SimInstant> = None;
        let mut last: Option<SimInstant> = None;

        for t in &self.tweets {
            let mc = extractor.extract(&t.text);
            organs_per_tweet_sum += mc.distinct() as u64;
            per_user.entry(t.user).or_default().merge(&mc);
            first = Some(first.map_or(t.created_at, |f| f.min(t.created_at)));
            last = Some(last.map_or(t.created_at, |l| l.max(t.created_at)));
        }

        let n_tweets = self.tweets.len() as u64;
        let n_users = per_user.len() as u64;
        let organs_per_user_sum: u64 = per_user.values().map(|mc| mc.distinct() as u64).sum();

        CorpusStats {
            start: first.map(|t| t.date().to_string()),
            finish: last.map(|t| t.date().to_string()),
            days: COLLECTION_DAYS,
            tweets: n_tweets,
            users: n_users,
            avg_tweets_per_day: n_tweets as f64 / COLLECTION_DAYS as f64,
            avg_tweets_per_user: if n_users > 0 {
                n_tweets as f64 / n_users as f64
            } else {
                0.0
            },
            organs_per_tweet: if n_tweets > 0 {
                organs_per_tweet_sum as f64 / n_tweets as f64
            } else {
                0.0
            },
            organs_per_user: if n_users > 0 {
                organs_per_user_sum as f64 / n_users as f64
            } else {
                0.0
            },
        }
    }
}

impl FromIterator<Tweet> for Corpus {
    fn from_iter<I: IntoIterator<Item = Tweet>>(iter: I) -> Self {
        Self::from_tweets(iter)
    }
}

/// The statistics of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Date of the first collected tweet (e.g. "Apr 22 2015").
    pub start: Option<String>,
    /// Date of the last collected tweet.
    pub finish: Option<String>,
    /// Days in the collection window (385).
    pub days: u32,
    /// Tweets in the corpus.
    pub tweets: u64,
    /// Distinct users.
    pub users: u64,
    /// Average tweets per day over the window.
    pub avg_tweets_per_day: f64,
    /// Average tweets per user.
    pub avg_tweets_per_user: f64,
    /// Average distinct organs mentioned per tweet (paper: 1.03).
    pub organs_per_tweet: f64,
    /// Average distinct organs mentioned per user (paper: 1.13).
    pub organs_per_user: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tweet::TweetId;

    fn tweet(id: u64, user: u64, day: u32, text: &str) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(user),
            created_at: SimInstant::from_day(day, 0),
            text: text.to_string(),
            geo: None,
        }
    }

    #[test]
    fn empty_corpus_stats() {
        let s = Corpus::new().stats();
        assert_eq!(s.tweets, 0);
        assert_eq!(s.users, 0);
        assert_eq!(s.avg_tweets_per_user, 0.0);
        assert_eq!(s.organs_per_tweet, 0.0);
        assert_eq!(s.start, None);
    }

    #[test]
    fn stats_of_known_corpus() {
        let c = Corpus::from_tweets([
            tweet(0, 1, 0, "kidney donor here"),
            tweet(1, 1, 5, "heart transplant went well"),
            tweet(2, 2, 10, "donate your liver and kidney"),
        ]);
        let s = c.stats();
        assert_eq!(s.tweets, 3);
        assert_eq!(s.users, 2);
        assert_eq!(s.start.as_deref(), Some("Apr 22 2015"));
        assert_eq!(s.finish.as_deref(), Some("May 02 2015"));
        // Organs per tweet: 1, 1, 2 -> 4/3.
        assert!((s.organs_per_tweet - 4.0 / 3.0).abs() < 1e-12);
        // User 1 mentions {kidney, heart} = 2; user 2 {liver, kidney} = 2.
        assert!((s.organs_per_user - 2.0).abs() < 1e-12);
        assert!((s.avg_tweets_per_user - 1.5).abs() < 1e-12);
        assert!((s.avg_tweets_per_day - 3.0 / 385.0).abs() < 1e-12);
    }

    #[test]
    fn user_count_and_mentions() {
        let c = Corpus::from_tweets([
            tweet(0, 9, 0, "kidney kidney donor"),
            tweet(1, 9, 1, "kidney transplant list"),
        ]);
        assert_eq!(c.user_count(), 1);
        let m = c.mentions_by_user();
        assert_eq!(m[&UserId(9)].count(donorpulse_text::Organ::Kidney), 3);
    }

    #[test]
    fn retain_filters() {
        let mut c = Corpus::from_tweets([
            tweet(0, 1, 0, "a kidney donor"),
            tweet(1, 2, 0, "a liver donor"),
        ]);
        c.retain(|t| t.user == UserId(1));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.tweets()[0].user, UserId(1));
    }

    #[test]
    fn dedup_removes_same_user_same_text_only() {
        let mut c = Corpus::from_tweets([
            tweet(0, 1, 0, "kidney donor"),
            tweet(1, 1, 1, "kidney donor"), // dup: same user, same text
            tweet(2, 2, 2, "kidney donor"), // other user: kept
            tweet(3, 1, 3, "kidney donor!!"), // different text: kept
        ]);
        let removed = c.dedup_exact();
        assert_eq!(removed, 1);
        assert_eq!(c.len(), 3);
        assert_eq!(c.tweets()[0].id, TweetId(0));
        // Idempotent.
        assert_eq!(c.dedup_exact(), 0);
    }

    #[test]
    fn from_iterator() {
        let c: Corpus = vec![tweet(0, 1, 0, "x")].into_iter().collect();
        assert_eq!(c.len(), 1);
    }
}
