//! Materializes the simulated population and tweet schedule.
//!
//! [`TwitterSimulation::generate`] builds every user profile up front
//! (they are small) but realizes tweet *text* lazily: the schedule holds
//! compact `(instant, user, kind)` events, and each event's content is
//! produced deterministically from `(seed, event index)` when the stream
//! is consumed. That keeps the full-scale corpus (≈ 2.4M firehose
//! tweets) streamable without holding gigabytes of strings.

use crate::genmodel::{
    sample_dirichlet, sample_weighted, Archetype, GeneratorConfig, PowerLawActivity,
};
use crate::stream::StreamApi;
use crate::textgen;
use crate::time::{SimInstant, COLLECTION_DAYS, SECONDS_PER_DAY};
use crate::tweet::{Tweet, TweetId};
use crate::user::{HomeLocation, UserId, UserProfile};
use donorpulse_geo::data::{City, ALIASES, CITIES, JUNK_MARKERS, NON_US_MARKERS};
use donorpulse_geo::UsState;
use donorpulse_text::Organ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One scheduled tweet event (text realized lazily).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledTweet {
    /// When the tweet is emitted.
    pub at: SimInstant,
    /// Index into the users vector.
    pub user_index: u32,
    /// On-topic (passes the collection filter) vs chatter.
    pub on_topic: bool,
}

/// Foreign metropolises used for non-US geotags. All chosen to lie
/// outside every state bounding box (Toronto, for instance, would fall
/// inside New York's box and defeat the geotag-based USA filter).
const FOREIGN_GEO: &[(f64, f64)] = &[
    (51.51, -0.13),   // London
    (45.50, -73.57),  // Montreal
    (35.68, 139.69),  // Tokyo
    (-33.87, 151.21), // Sydney
    (19.08, 72.88),   // Mumbai
    (6.52, 3.38),     // Lagos
    (-23.55, -46.63), // São Paulo
    (48.86, 2.35),    // Paris
    (19.43, -99.13),  // Mexico City
];

/// The fully generated simulation: population + tweet schedule.
#[derive(Debug)]
pub struct TwitterSimulation {
    config: GeneratorConfig,
    users: Vec<UserProfile>,
    schedule: Vec<ScheduledTweet>,
    cities_by_state: HashMap<UsState, Vec<&'static City>>,
}

impl TwitterSimulation {
    /// Generates users and the tweet schedule from `config`.
    pub fn generate(config: GeneratorConfig) -> Result<Self, String> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let activity = PowerLawActivity::new(config.activity_exponent, config.activity_max);

        let mut cities_by_state: HashMap<UsState, Vec<&'static City>> = HashMap::new();
        for c in CITIES {
            cities_by_state.entry(c.state).or_default().push(c);
        }
        let alias_by_state: HashMap<UsState, Vec<&'static str>> = {
            let mut m: HashMap<UsState, Vec<&'static str>> = HashMap::new();
            for &(name, state) in ALIASES {
                m.entry(state).or_default().push(name);
            }
            m
        };
        let state_populations: Vec<f64> = UsState::ALL
            .iter()
            .map(|s| s.population_2015() as f64)
            .collect();

        let mut users = Vec::with_capacity(config.n_users);
        let mut schedule = Vec::new();
        for i in 0..config.n_users {
            let is_us = rng.gen_bool(config.us_user_fraction);
            let home = if is_us {
                HomeLocation::Us(
                    UsState::from_index(sample_weighted(&mut rng, &state_populations))
                        .expect("weighted index in range"),
                )
            } else {
                HomeLocation::Foreign
            };
            let weights = config.organ_weights_for(match home {
                HomeLocation::Us(s) => Some(s),
                HomeLocation::Foreign => None,
            });

            let (archetype, attention) = sample_archetype(&mut rng, &config, &weights);
            let on_topic_tweets = activity.sample(&mut rng);
            let chatter_tweets =
                sample_poisson(&mut rng, config.chatter_ratio * on_topic_tweets as f64);

            let profile_location = match home {
                HomeLocation::Us(s) => us_profile_location(
                    &mut rng,
                    s,
                    cities_by_state.get(&s).map(Vec::as_slice).unwrap_or(&[]),
                    alias_by_state.get(&s).map(Vec::as_slice).unwrap_or(&[]),
                ),
                HomeLocation::Foreign => foreign_profile_location(&mut rng),
            };

            users.push(UserProfile {
                id: UserId(i as u64),
                handle: format!("@user_{i}"),
                profile_location,
                home,
                attention,
                archetype,
                on_topic_tweets,
                chatter_tweets,
            });

            for _ in 0..on_topic_tweets {
                schedule.push(ScheduledTweet {
                    at: random_instant(&mut rng),
                    user_index: i as u32,
                    on_topic: true,
                });
            }
            for _ in 0..chatter_tweets {
                schedule.push(ScheduledTweet {
                    at: random_instant(&mut rng),
                    user_index: i as u32,
                    on_topic: false,
                });
            }
        }
        schedule.sort_by_key(|e| (e.at, e.user_index));

        Ok(Self {
            config,
            users,
            schedule,
            cities_by_state,
        })
    }

    /// The generator configuration.
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// All user profiles (index = `ScheduledTweet::user_index`).
    pub fn users(&self) -> &[UserProfile] {
        &self.users
    }

    /// Number of scheduled firehose tweets (on-topic + chatter).
    pub fn firehose_len(&self) -> usize {
        self.schedule.len()
    }

    /// Number of on-topic tweets (what the collection filter will keep).
    pub fn on_topic_len(&self) -> usize {
        self.schedule.iter().filter(|e| e.on_topic).count()
    }

    /// The raw schedule.
    pub fn schedule(&self) -> &[ScheduledTweet] {
        &self.schedule
    }

    /// Opens a Stream API connection over the full firehose.
    pub fn stream(&self) -> StreamApi<'_> {
        StreamApi::new(self)
    }

    /// Collects the filtered stream in parallel across `threads` worker
    /// threads (crossbeam scoped threads; chunked by schedule position,
    /// so the result is identical to — and in the same chronological
    /// order as — a serial [`TwitterSimulation::stream`] collection).
    ///
    /// Tweet realization is pure in `(seed, index)`, which is what makes
    /// the firehose embarrassingly parallel.
    pub fn collect_parallel(
        &self,
        filter: &(dyn donorpulse_text::TextFilter + Sync),
        threads: usize,
    ) -> crate::Corpus {
        self.collect_parallel_observed(filter, threads, &|_| {})
    }

    /// [`TwitterSimulation::collect_parallel`] with an observation hook:
    /// each worker thread calls `on_batch(n)` once with the number of
    /// tweets its chunk matched, concurrently with the other workers.
    ///
    /// This is how the pipeline feeds its observability counters from
    /// the parallel path without this crate depending on the metrics
    /// layer: the hook is a plain `Fn(u64) + Sync`. The batch sizes are
    /// a deterministic function of `(seed, filter, threads)`; their sum
    /// always equals the collected corpus size.
    pub fn collect_parallel_observed(
        &self,
        filter: &(dyn donorpulse_text::TextFilter + Sync),
        threads: usize,
        on_batch: &(dyn Fn(u64) + Sync),
    ) -> crate::Corpus {
        let threads = threads.max(1);
        let n = self.firehose_len();
        let chunk = n.div_ceil(threads);
        let mut chunks: Vec<Vec<crate::Tweet>> = Vec::new();
        crossbeam::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    continue;
                }
                handles.push(scope.spawn(move |_| {
                    let mut kept = Vec::new();
                    for i in lo..hi {
                        let tweet = self.realize(i);
                        if filter.accepts(&tweet.text) {
                            kept.push(tweet);
                        }
                    }
                    on_batch(kept.len() as u64);
                    kept
                }));
            }
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("collector thread panicked"))
                .collect();
        })
        .expect("crossbeam scope");
        crate::Corpus::from_tweets(chunks.into_iter().flatten())
    }

    /// A user's full timeline, chronological — the REST-API counterpart
    /// to the streaming endpoint (cf. the paper's references using user
    /// timelines to identify potential donors). Scans the schedule, so
    /// it is `O(firehose)` per call; batch consumers should use the
    /// stream instead.
    pub fn user_timeline(&self, user: UserId) -> Vec<Tweet> {
        self.schedule
            .iter()
            .enumerate()
            .filter(|(_, e)| e.user_index as u64 == user.0)
            .map(|(i, _)| self.realize(i))
            .collect()
    }

    /// Realizes the `idx`-th scheduled tweet (deterministic in the
    /// simulation seed).
    pub fn realize(&self, idx: usize) -> Tweet {
        let event = self.schedule[idx];
        let user = &self.users[event.user_index as usize];
        // Event-local rng: independent of consumption order.
        let mut rng = StdRng::seed_from_u64(splitmix(self.config.seed ^ (idx as u64)));

        let text = if event.on_topic {
            let mut primary =
                Organ::from_index(sample_weighted(&mut rng, &user.attention)).expect("organ index");
            // Awareness events hijack a share of the conversation.
            for ev in &self.config.events {
                if ev.active_on(event.at.day()) && rng.gen_bool(ev.intensity) {
                    primary = ev.organ;
                    break;
                }
            }
            if rng.gen_bool(self.config.dual_mention_prob) {
                let mut rest = user.attention;
                rest[primary.index()] = 0.0;
                if rest.iter().sum::<f64>() > 0.0 {
                    let secondary =
                        Organ::from_index(sample_weighted(&mut rng, &rest)).expect("organ index");
                    textgen::on_topic(&mut rng, &[primary, secondary])
                } else {
                    textgen::on_topic(&mut rng, &[primary])
                }
            } else {
                textgen::on_topic(&mut rng, &[primary])
            }
        } else {
            let organ =
                Organ::from_index(sample_weighted(&mut rng, &user.attention)).expect("organ index");
            let kind = match rng.gen_range(0..10) {
                0..=3 => textgen::ChatterKind::OrganNoContext,
                4..=6 => textgen::ChatterKind::ContextNoOrgan,
                _ => textgen::ChatterKind::Generic,
            };
            textgen::chatter(&mut rng, kind, organ)
        };

        let geo = if rng.gen_bool(self.config.geotag_prob) {
            Some(self.geotag_for(&mut rng, user))
        } else {
            None
        };

        Tweet {
            id: TweetId(idx as u64),
            user: user.id,
            created_at: event.at,
            text,
            geo,
        }
    }

    fn geotag_for<R: Rng + ?Sized>(&self, rng: &mut R, user: &UserProfile) -> (f64, f64) {
        match user.home {
            HomeLocation::Us(state) => {
                let cities = self
                    .cities_by_state
                    .get(&state)
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                let (lat, lon) = if cities.is_empty() {
                    state.centroid()
                } else {
                    let c = cities[rng.gen_range(0..cities.len())];
                    (c.lat, c.lon)
                };
                (
                    lat + rng.gen_range(-0.05..0.05),
                    lon + rng.gen_range(-0.05..0.05),
                )
            }
            HomeLocation::Foreign => FOREIGN_GEO[rng.gen_range(0..FOREIGN_GEO.len())],
        }
    }
}

/// SplitMix64 finalizer — decorrelates per-event seeds.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_instant<R: Rng + ?Sized>(rng: &mut R) -> SimInstant {
    SimInstant(rng.gen_range(0..COLLECTION_DAYS as u64 * SECONDS_PER_DAY))
}

fn sample_archetype<R: Rng + ?Sized>(
    rng: &mut R,
    config: &GeneratorConfig,
    weights: &[f64; Organ::COUNT],
) -> (Archetype, [f64; Organ::COUNT]) {
    let (w_single, w_dual, _) = config.archetype_mix;
    let roll: f64 = rng.gen();
    let mut alpha = [0.0f64; Organ::COUNT];
    let archetype = if roll < w_single {
        let d = sample_weighted(rng, weights);
        let coatt = &config.coattention[d];
        for (j, a) in alpha.iter_mut().enumerate() {
            *a = (config.single_alpha.1 * coatt[j]).max(1e-3);
        }
        alpha[d] = config.single_alpha.0;
        Archetype::SingleFocus(Organ::from_index(d).expect("organ index"))
    } else if roll < w_single + w_dual {
        let d = sample_weighted(rng, weights);
        let e = sample_weighted(rng, &config.coattention[d]);
        let coatt = &config.coattention[d];
        for (j, a) in alpha.iter_mut().enumerate() {
            *a = (config.dual_alpha.2 * coatt[j]).max(1e-3);
        }
        alpha[d] = config.dual_alpha.0;
        alpha[e] = config.dual_alpha.1;
        Archetype::DualFocus(
            Organ::from_index(d).expect("organ index"),
            Organ::from_index(e).expect("organ index"),
        )
    } else {
        alpha = [config.generalist_alpha; Organ::COUNT];
        Archetype::Generalist
    };
    let att = sample_dirichlet(rng, &alpha);
    let mut attention = [0.0; Organ::COUNT];
    attention.copy_from_slice(&att);
    (archetype, attention)
}

/// Poisson sampler: Knuth for small λ, normal approximation above 50.
fn sample_poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 50.0 {
        let n = crate::genmodel::sample_standard_normal(rng);
        return (lambda + lambda.sqrt() * n).round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut chars = w.chars();
            match chars.next() {
                Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn us_profile_location<R: Rng + ?Sized>(
    rng: &mut R,
    state: UsState,
    cities: &[&'static City],
    aliases: &[&'static str],
) -> String {
    let city = (!cities.is_empty()).then(|| cities[rng.gen_range(0..cities.len())]);
    let roll: f64 = rng.gen();
    match roll {
        r if r < 0.38 => match city {
            Some(c) => format!("{}, {}", title_case(c.name), state.abbr()),
            None => state.name().to_string(),
        },
        r if r < 0.53 => match city {
            Some(c) => title_case(c.name),
            None => state.name().to_string(),
        },
        r if r < 0.58 => match city {
            Some(c) => format!("{}, {}", title_case(c.name), state.name()),
            None => state.name().to_string(),
        },
        r if r < 0.70 => state.name().to_string(),
        r if r < 0.75 => {
            if aliases.is_empty() {
                state.name().to_string()
            } else {
                aliases[rng.gen_range(0..aliases.len())].to_uppercase()
            }
        }
        r if r < 0.80 => state.abbr().to_string(),
        r if r < 0.92 => JUNK_MARKERS[rng.gen_range(0..JUNK_MARKERS.len())].to_string(),
        _ => String::new(),
    }
}

fn foreign_profile_location<R: Rng + ?Sized>(rng: &mut R) -> String {
    let roll: f64 = rng.gen();
    if roll < 0.70 {
        title_case(NON_US_MARKERS[rng.gen_range(0..NON_US_MARKERS.len())])
    } else if roll < 0.85 {
        JUNK_MARKERS[rng.gen_range(0..JUNK_MARKERS.len())].to_string()
    } else {
        String::new()
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    fn small_sim() -> TwitterSimulation {
        let mut cfg = GeneratorConfig::paper_scaled(0.004); // ~2k users
        cfg.seed = 42;
        TwitterSimulation::generate(cfg).expect("valid config")
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_sim();
        let b = small_sim();
        assert_eq!(a.users().len(), b.users().len());
        assert_eq!(a.firehose_len(), b.firehose_len());
        assert_eq!(a.users()[7], b.users()[7]);
        assert_eq!(a.realize(100), b.realize(100));
    }

    #[test]
    fn schedule_is_time_ordered() {
        let sim = small_sim();
        for pair in sim.schedule().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn tweets_inside_collection_window() {
        let sim = small_sim();
        for e in sim.schedule() {
            assert!(e.at.in_collection_window());
        }
    }

    #[test]
    fn attention_vectors_are_distributions() {
        let sim = small_sim();
        for u in sim.users() {
            let s: f64 = u.attention.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{s}");
            assert!(u.attention.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn us_fraction_near_config() {
        let sim = small_sim();
        let us = sim
            .users()
            .iter()
            .filter(|u| u.home_state().is_some())
            .count();
        let frac = us as f64 / sim.users().len() as f64;
        let expect = sim.config().us_user_fraction;
        assert!(
            (frac - expect).abs() < 0.03,
            "us fraction {frac} vs configured {expect}"
        );
    }

    #[test]
    fn single_focus_users_dominated_by_their_organ() {
        let sim = small_sim();
        let mut checked = 0;
        for u in sim.users() {
            if let Archetype::SingleFocus(o) = u.archetype {
                checked += 1;
                assert_eq!(
                    u.dominant_organ(),
                    o,
                    "single-focus user {} not dominated by {o}",
                    u.id
                );
            }
        }
        assert!(checked > 100, "too few single-focus users: {checked}");
    }

    #[test]
    fn mean_on_topic_tweets_near_table_one() {
        let sim = small_sim();
        let n = sim.users().len() as f64;
        let mean: f64 = sim
            .users()
            .iter()
            .map(|u| u.on_topic_tweets as f64)
            .sum::<f64>()
            / n;
        // The truncated power law is heavy-tailed (sd ≈ 6.4), so the
        // sample mean at ~2k users wanders ±0.14·3; compare against the
        // analytic mean with a 3σ band rather than a fixed ±0.25.
        let analytic =
            PowerLawActivity::new(sim.config().activity_exponent, sim.config().activity_max).mean();
        let tol = 3.0 * 6.4 / n.sqrt();
        assert!(
            (mean - analytic).abs() < tol,
            "mean tweets/user {mean} vs analytic {analytic} (tol {tol})"
        );
    }

    #[test]
    fn realized_tweets_match_schedule() {
        let sim = small_sim();
        let t = sim.realize(0);
        assert_eq!(t.created_at, sim.schedule()[0].at);
        assert_eq!(t.id, TweetId(0));
        assert!(!t.text.is_empty());
    }

    #[test]
    fn geotag_rate_near_config() {
        let sim = small_sim();
        let n = sim.firehose_len().min(20_000);
        let tagged = (0..n).filter(|&i| sim.realize(i).is_geotagged()).count();
        let rate = tagged as f64 / n as f64;
        assert!(
            (rate - sim.config().geotag_prob).abs() < 0.006,
            "geotag rate {rate}"
        );
    }

    #[test]
    fn on_topic_events_pass_filter_chatter_fails() {
        let sim = small_sim();
        let q = donorpulse_text::KeywordQuery::paper();
        for i in 0..sim.firehose_len().min(3_000) {
            let expected = sim.schedule()[i].on_topic;
            let tweet = sim.realize(i);
            assert_eq!(
                q.matches(&tweet.text),
                expected,
                "event {i}: {:?}",
                tweet.text
            );
        }
    }

    #[test]
    fn us_geotags_resolve_to_home_state_mostly() {
        let sim = small_sim();
        let geocoder = donorpulse_geo::Geocoder::new();
        let mut total = 0;
        let mut agree = 0;
        for i in 0..sim.firehose_len() {
            let tweet = sim.realize(i);
            if let Some((lat, lon)) = tweet.geo {
                let user = &sim.users()[tweet.user.0 as usize];
                if let Some(home) = user.home_state() {
                    total += 1;
                    if geocoder.resolve_point(lat, lon) == Some(home) {
                        agree += 1;
                    }
                }
            }
        }
        assert!(total > 10, "too few geotagged US tweets: {total}");
        assert!(
            agree * 10 >= total * 9,
            "only {agree}/{total} geotags resolve home"
        );
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        for &lambda in &[0.5, 4.0, 80.0] {
            let n = 20_000;
            let mean: f64 = (0..n)
                .map(|_| sample_poisson(&mut rng, lambda) as f64)
                .sum::<f64>()
                / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(sample_poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn title_case_works() {
        assert_eq!(title_case("new york"), "New York");
        assert_eq!(title_case("wichita"), "Wichita");
        assert_eq!(title_case(""), "");
    }

    #[test]
    fn user_timeline_matches_stream_subset() {
        let sim = small_sim();
        // Pick a user with several tweets.
        let busy = sim
            .users()
            .iter()
            .max_by_key(|u| u.on_topic_tweets + u.chatter_tweets)
            .unwrap()
            .id;
        let timeline = sim.user_timeline(busy);
        let expected: Vec<crate::Tweet> = sim.stream().filter(|t| t.user == busy).collect();
        assert!(!timeline.is_empty());
        assert_eq!(timeline, expected);
        for pair in timeline.windows(2) {
            assert!(pair[0].created_at <= pair[1].created_at);
        }
        // Unknown user: empty timeline, no panic.
        assert!(sim.user_timeline(UserId(u64::MAX)).is_empty());
    }

    #[test]
    fn parallel_collection_matches_serial() {
        let sim = small_sim();
        let q = donorpulse_text::KeywordQuery::paper();
        let serial: Vec<crate::Tweet> = sim
            .stream()
            .with_filter(Box::new(donorpulse_text::KeywordQuery::paper()))
            .collect();
        for threads in [1, 2, 4, 7] {
            let parallel = sim.collect_parallel(&q, threads);
            assert_eq!(parallel.tweets(), serial.as_slice(), "{threads} threads");
        }
        // Degenerate thread count clamps to 1.
        let one = sim.collect_parallel(&q, 0);
        assert_eq!(one.tweets(), serial.as_slice());
    }

    #[test]
    fn observed_batches_sum_to_collected() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let sim = small_sim();
        let q = donorpulse_text::KeywordQuery::paper();
        for threads in [1, 3, 4] {
            let seen = AtomicU64::new(0);
            let batches = AtomicU64::new(0);
            let collected = sim.collect_parallel_observed(&q, threads, &|n| {
                seen.fetch_add(n, Ordering::Relaxed);
                batches.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(
                seen.load(Ordering::Relaxed),
                collected.len() as u64,
                "{threads} threads"
            );
            // One batch per spawned worker (chunking may drop empty tails).
            assert!(batches.load(Ordering::Relaxed) <= threads as u64);
            assert!(batches.load(Ordering::Relaxed) >= 1);
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = GeneratorConfig::default();
        cfg.n_users = 0;
        assert!(TwitterSimulation::generate(cfg).is_err());
    }
}
