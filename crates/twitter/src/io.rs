//! Corpus persistence: JSON-Lines archives.
//!
//! A real collection pipeline writes the stream to disk once and
//! analyzes it many times. This module stores a [`Corpus`] (and user
//! profiles) as JSONL — one serde-encoded record per line — the de facto
//! interchange format for tweet archives, so corpora survive process
//! restarts and can be inspected with standard text tools.

use crate::tweet::Tweet;
use crate::user::UserProfile;
use crate::Corpus;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors from corpus archiving.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line failed to parse.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Malformed { line, message } => {
                write!(f, "malformed record at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a corpus as JSONL (one tweet per line).
pub fn write_corpus<W: Write>(corpus: &Corpus, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for tweet in corpus.tweets() {
        let line = serde_json::to_string(tweet).map_err(|e| IoError::Malformed {
            line: 0,
            message: e.to_string(),
        })?;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a corpus from JSONL. Empty lines are skipped; any other
/// malformed line aborts with its line number.
pub fn read_corpus<R: Read>(reader: R) -> Result<Corpus, IoError> {
    let mut corpus = Corpus::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let tweet: Tweet = serde_json::from_str(&line).map_err(|e| IoError::Malformed {
            line: i + 1,
            message: e.to_string(),
        })?;
        corpus.push(tweet);
    }
    Ok(corpus)
}

/// Writes user profiles as JSONL.
pub fn write_users<W: Write>(users: &[UserProfile], writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    for user in users {
        let line = serde_json::to_string(user).map_err(|e| IoError::Malformed {
            line: 0,
            message: e.to_string(),
        })?;
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()?;
    Ok(())
}

/// Reads user profiles from JSONL.
pub fn read_users<R: Read>(reader: R) -> Result<Vec<UserProfile>, IoError> {
    let mut users = Vec::new();
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let user: UserProfile = serde_json::from_str(&line).map_err(|e| IoError::Malformed {
            line: i + 1,
            message: e.to_string(),
        })?;
        users.push(user);
    }
    Ok(users)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TwitterSimulation;
    use crate::genmodel::GeneratorConfig;
    use donorpulse_text::KeywordQuery;

    fn small_corpus() -> (Corpus, Vec<UserProfile>) {
        let mut cfg = GeneratorConfig::paper_scaled(0.002);
        cfg.seed = 5;
        let sim = TwitterSimulation::generate(cfg).expect("sim");
        let corpus: Corpus = sim
            .stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .collect();
        (corpus, sim.users().to_vec())
    }

    #[test]
    fn corpus_round_trips() {
        let (corpus, _) = small_corpus();
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        assert_eq!(back.tweets(), corpus.tweets());
    }

    #[test]
    fn users_round_trip() {
        let (_, users) = small_corpus();
        let mut buf = Vec::new();
        write_users(&users, &mut buf).unwrap();
        let back = read_users(buf.as_slice()).unwrap();
        assert_eq!(back, users);
    }

    #[test]
    fn one_record_per_line() {
        let (corpus, _) = small_corpus();
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), corpus.len());
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn empty_lines_tolerated() {
        let (corpus, _) = small_corpus();
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let back = read_corpus(text.as_bytes()).unwrap();
        assert_eq!(back.len(), corpus.len());
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = "{\"not\": \"a tweet\"}\n";
        match read_corpus(data.as_bytes()) {
            Err(IoError::Malformed { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected malformed error, got {other:?}"),
        }
    }

    #[test]
    fn empty_corpus_round_trips() {
        let mut buf = Vec::new();
        write_corpus(&Corpus::new(), &mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(read_corpus(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn stats_survive_round_trip() {
        let (corpus, _) = small_corpus();
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back.stats(), corpus.stats());
    }
}
