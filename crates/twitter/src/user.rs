//! Simulated Twitter users.
//!
//! Each user carries the observable fields a crawler sees (handle,
//! free-text profile location) *and* the generative ground truth the
//! paper never had: the true home state, the attention distribution the
//! user tweets from, and the archetype that produced it. Ground truth
//! lets the integration tests check that the characterization pipeline
//! actually recovers what was planted.

use crate::genmodel::Archetype;
use donorpulse_geo::UsState;
use donorpulse_text::Organ;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique user identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u64);

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Where a simulated user truly lives (generative ground truth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HomeLocation {
    /// A US state/territory.
    Us(UsState),
    /// Outside the USA.
    Foreign,
}

/// A simulated user profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Unique id.
    pub id: UserId,
    /// Handle, e.g. `@donor_kate_42`.
    pub handle: String,
    /// Raw self-reported profile location (what a crawler sees). May be
    /// empty, junk, a nickname, or a well-formed "City, ST".
    pub profile_location: String,
    /// Ground truth home (never visible to the pipeline under test).
    pub home: HomeLocation,
    /// Ground-truth attention distribution over the six organs; the
    /// user's on-topic tweets sample organs from it. Sums to 1.
    pub attention: [f64; Organ::COUNT],
    /// The archetype that generated `attention`.
    pub archetype: Archetype,
    /// Number of on-topic tweets this user will emit over the window.
    pub on_topic_tweets: u32,
    /// Number of off-topic (chatter) tweets, rejected by the filter.
    pub chatter_tweets: u32,
}

impl UserProfile {
    /// Ground-truth home state (`None` for foreign users).
    pub fn home_state(&self) -> Option<UsState> {
        match self.home {
            HomeLocation::Us(s) => Some(s),
            HomeLocation::Foreign => None,
        }
    }

    /// Ground-truth dominant organ (argmax of attention).
    pub fn dominant_organ(&self) -> Organ {
        let mut best = 0;
        for i in 1..Organ::COUNT {
            if self.attention[i] > self.attention[best] {
                best = i;
            }
        }
        Organ::from_index(best).expect("index in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(attention: [f64; 6]) -> UserProfile {
        UserProfile {
            id: UserId(7),
            handle: "@x".into(),
            profile_location: "Wichita, KS".into(),
            home: HomeLocation::Us(UsState::Kansas),
            attention,
            archetype: Archetype::SingleFocus(Organ::Kidney),
            on_topic_tweets: 2,
            chatter_tweets: 1,
        }
    }

    #[test]
    fn home_state_accessor() {
        let p = profile([0.1, 0.5, 0.1, 0.1, 0.1, 0.1]);
        assert_eq!(p.home_state(), Some(UsState::Kansas));
        let mut q = p.clone();
        q.home = HomeLocation::Foreign;
        assert_eq!(q.home_state(), None);
    }

    #[test]
    fn dominant_organ_is_argmax() {
        let p = profile([0.1, 0.5, 0.1, 0.1, 0.1, 0.1]);
        assert_eq!(p.dominant_organ(), Organ::Kidney);
        let q = profile([0.3, 0.3, 0.1, 0.1, 0.1, 0.1]);
        // Tie: first in canonical order wins (heart).
        assert_eq!(q.dominant_organ(), Organ::Heart);
    }

    #[test]
    fn user_id_display() {
        assert_eq!(UserId(42).to_string(), "u42");
    }
}
