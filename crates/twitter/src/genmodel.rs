//! The generative model behind the simulated Twitter population.
//!
//! Everything the paper *measured* on its proprietary corpus is planted
//! here as ground truth, so the characterization pipeline can be
//! validated against known parameters:
//!
//! * **organ popularity** — heart > kidney > liver > lung > pancreas >
//!   intestine, calibrated so the Spearman correlation against OPTN 2012
//!   transplant counts lands near the paper's `r = .84` (heart is
//!   over-popular on Twitter relative to its transplant rank — rank 1 vs
//!   rank 3 — which is exactly what caps the correlation at ~.83);
//! * **co-attention structure** — an asymmetric matrix reproducing
//!   Fig. 3's claims (kidney is the top co-organ for heart, liver and
//!   pancreas users; heart for kidney, lung and intestine users);
//! * **state anomalies** — multiplicative boosts planting Fig. 5's
//!   findings (Kansas as the lone Midwestern kidney anomaly, Louisiana
//!   kidney, Massachusetts kidney + lung) and Fig. 6's clustering zones;
//! * **archetypes** — single-focus / dual-focus / generalist Dirichlet
//!   mixtures that give K-Means its cluster structure (Fig. 7);
//! * **activity** — a truncated discrete power law on tweets-per-user
//!   whose mean matches Table I's 1.88.

use donorpulse_geo::UsState;
use donorpulse_text::Organ;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A user's attention archetype (ground truth for Fig. 7 validation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Attention concentrated on a single organ.
    SingleFocus(Organ),
    /// Attention split over two organs (ordered: primary, secondary).
    DualFocus(Organ, Organ),
    /// Attention spread over all organs.
    Generalist,
}

/// Full configuration of the generative model. `Default` is the
/// paper-calibrated configuration at 5% scale; use
/// [`GeneratorConfig::paper_full`] for the full 975k-tweet corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// RNG seed — everything downstream is deterministic in it.
    pub seed: u64,
    /// Total number of users (US + foreign).
    pub n_users: usize,
    /// Fraction of users who truly live in the USA.
    pub us_user_fraction: f64,
    /// Base popularity mixture over organs (sums to 1).
    pub organ_popularity: [f64; Organ::COUNT],
    /// Asymmetric co-attention: row `i` is the distribution of secondary
    /// attention for users whose dominant organ is `i` (diagonal 0).
    pub coattention: [[f64; Organ::COUNT]; Organ::COUNT],
    /// Planted per-state organ boosts `(state, organ, multiplier)`.
    pub state_organ_boost: Vec<(UsState, Organ, f64)>,
    /// Mixture weights (single-focus, dual-focus, generalist); sums to 1.
    pub archetype_mix: (f64, f64, f64),
    /// Dirichlet concentration for single-focus users:
    /// `(dominant_alpha, rest_total_alpha)`.
    pub single_alpha: (f64, f64),
    /// Dirichlet concentration for dual-focus users:
    /// `(primary_alpha, secondary_alpha, rest_total_alpha)`.
    pub dual_alpha: (f64, f64, f64),
    /// Uniform Dirichlet concentration for generalists.
    pub generalist_alpha: f64,
    /// Exponent of the truncated power law on on-topic tweets per user.
    pub activity_exponent: f64,
    /// Upper truncation of tweets per user.
    pub activity_max: u32,
    /// Expected chatter (off-topic) tweets per on-topic tweet.
    pub chatter_ratio: f64,
    /// Probability an on-topic tweet mentions a second organ
    /// (Table I: 1.03 organs per tweet).
    pub dual_mention_prob: f64,
    /// Probability a tweet carries GPS coordinates (~1.4%).
    pub geotag_prob: f64,
    /// Scheduled awareness events (viral stories, campaigns) that bias
    /// conversation toward one organ during a window — the signal a
    /// real-time sensor (the paper's conclusion) must pick up.
    pub events: Vec<AwarenessEvent>,
}

/// A planted awareness event: during `[start_day, end_day)` each
/// on-topic tweet switches its primary organ to `organ` with probability
/// `intensity` (on top of the user's normal attention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AwarenessEvent {
    /// The organ the event is about.
    pub organ: Organ,
    /// First day of the event (0-based day index).
    pub start_day: u32,
    /// One past the last day.
    pub end_day: u32,
    /// Probability a tweet in the window is redirected to the organ.
    pub intensity: f64,
}

impl AwarenessEvent {
    /// True when `day` falls inside the event window.
    pub fn active_on(&self, day: u32) -> bool {
        (self.start_day..self.end_day).contains(&day)
    }
}

impl GeneratorConfig {
    /// Paper-calibrated configuration at full scale (~975k collected
    /// tweets, ~519k users). Heavy: use in release builds/benches.
    pub fn paper_full() -> Self {
        Self {
            seed: 0x0D01_07AB,
            n_users: 519_000,
            us_user_fraction: 0.175,
            organ_popularity: [0.44, 0.24, 0.14, 0.10, 0.05, 0.03],
            coattention: PAPER_COATTENTION,
            state_organ_boost: paper_anomalies(),
            archetype_mix: (0.70, 0.20, 0.10),
            single_alpha: (18.0, 1.5),
            dual_alpha: (8.0, 6.0, 0.8),
            generalist_alpha: 2.5,
            activity_exponent: 2.5,
            activity_max: 500,
            chatter_ratio: 4.0,
            dual_mention_prob: 0.03,
            geotag_prob: 0.014,
            events: Vec::new(),
        }
    }

    /// Paper configuration scaled down by `scale` (user count only; all
    /// distributions unchanged). `scale = 0.05` gives a ~49k-tweet corpus
    /// that runs in well under a second.
    pub fn paper_scaled(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut cfg = Self::paper_full();
        cfg.n_users = ((cfg.n_users as f64) * scale).round().max(100.0) as usize;
        cfg
    }

    /// Validates internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_users == 0 {
            return Err("n_users must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.us_user_fraction) {
            return Err("us_user_fraction must be in [0,1]".into());
        }
        let pop_sum: f64 = self.organ_popularity.iter().sum();
        if (pop_sum - 1.0).abs() > 1e-6 || self.organ_popularity.iter().any(|&w| w < 0.0) {
            return Err("organ_popularity must be a distribution".into());
        }
        for (i, row) in self.coattention.iter().enumerate() {
            if row[i] != 0.0 {
                return Err(format!("coattention diagonal must be 0 (row {i})"));
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > 1e-6 || row.iter().any(|&w| w < 0.0) {
                return Err(format!("coattention row {i} must be a distribution"));
            }
        }
        let (a, b, c) = self.archetype_mix;
        if (a + b + c - 1.0).abs() > 1e-6 || a < 0.0 || b < 0.0 || c < 0.0 {
            return Err("archetype_mix must be a distribution".into());
        }
        for &(_, _, m) in &self.state_organ_boost {
            if m <= 0.0 {
                return Err("boost multipliers must be positive".into());
            }
        }
        if self.activity_exponent <= 1.0 {
            return Err("activity_exponent must exceed 1".into());
        }
        if self.activity_max == 0 {
            return Err("activity_max must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.dual_mention_prob)
            || !(0.0..=1.0).contains(&self.geotag_prob)
        {
            return Err("probabilities must be in [0,1]".into());
        }
        if self.chatter_ratio < 0.0 {
            return Err("chatter_ratio must be nonnegative".into());
        }
        for (i, e) in self.events.iter().enumerate() {
            if e.start_day >= e.end_day {
                return Err(format!("event {i} has an empty window"));
            }
            if !(0.0..=1.0).contains(&e.intensity) {
                return Err(format!("event {i} intensity outside [0,1]"));
            }
        }
        Ok(())
    }

    /// State-adjusted organ mixture for a user living in `state`
    /// (`None` for foreign users → base mixture).
    pub fn organ_weights_for(&self, state: Option<UsState>) -> [f64; Organ::COUNT] {
        let mut w = self.organ_popularity;
        if let Some(s) = state {
            for &(bs, organ, mult) in &self.state_organ_boost {
                if bs == s {
                    w[organ.index()] *= mult;
                }
            }
        }
        let total: f64 = w.iter().sum();
        for v in &mut w {
            *v /= total;
        }
        w
    }
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self::paper_scaled(0.05)
    }
}

/// The asymmetric co-attention matrix reproducing Fig. 3's structure.
/// Row = dominant organ; canonical organ order
/// (heart, kidney, liver, lung, pancreas, intestine).
pub const PAPER_COATTENTION: [[f64; 6]; 6] = [
    // heart: kidney strongest (paper: kidney is most important for heart)
    [0.00, 0.40, 0.20, 0.25, 0.10, 0.05],
    // kidney: heart strongest
    [0.35, 0.00, 0.30, 0.10, 0.20, 0.05],
    // liver: kidney strongest
    [0.25, 0.45, 0.00, 0.15, 0.10, 0.05],
    // lung: heart strongest (paper: lung users lean to heart over kidney)
    [0.45, 0.25, 0.15, 0.00, 0.10, 0.05],
    // pancreas: kidney strongest (kidney-pancreas dual transplants)
    [0.15, 0.50, 0.25, 0.07, 0.00, 0.03],
    // intestine: heart strongest
    [0.40, 0.20, 0.25, 0.10, 0.05, 0.00],
];

/// The planted state anomalies reproducing Fig. 5's highlighted organs
/// and Fig. 6's clustering zones.
pub fn paper_anomalies() -> Vec<(UsState, Organ, f64)> {
    use Organ::*;
    use UsState::*;
    // Multipliers are sized so the anomaly is detectable at the state's
    // population: the paper describes Kansas's kidney conversations as
    // "highly exceeding the national expectation", and small states
    // (Delaware, Rhode Island, North Dakota) need strong effects to
    // clear the log-RR confidence interval at their sample sizes.
    vec![
        // Kidney zone — Kansas is the only Midwestern kidney anomaly.
        (Kansas, Kidney, 2.6),
        (Louisiana, Kidney, 2.2),
        (Massachusetts, Kidney, 1.8),
        (NewYork, Kidney, 1.4),
        // Lung zone. Lung's base share is small (0.10), so its
        // multipliers must be larger for the same absolute excess.
        (Massachusetts, Lung, 2.4),
        (Oregon, Lung, 2.2),
        (Georgia, Lung, 1.9),
        (Virginia, Lung, 1.8),
        (Wisconsin, Lung, 2.0),
        // Liver zone.
        (Delaware, Liver, 2.4),
        (RhodeIsland, Liver, 2.3),
        (Colorado, Liver, 2.0),
        (NorthDakota, Liver, 2.3),
        (Nebraska, Liver, 2.1),
        // Heart zone.
        (Minnesota, Heart, 1.3),
        (California, Heart, 1.2),
        (Missouri, Heart, 1.25),
    ]
}

// ---------------------------------------------------------------------
// Sampling primitives (rand 0.8 core only: no rand_distr dependency).
// ---------------------------------------------------------------------

/// Samples a standard normal via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue; // avoid ln(0)
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Samples `Gamma(alpha, 1)` via Marsaglia–Tsang (with the `alpha < 1`
/// boost).
pub fn sample_gamma<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "gamma shape must be positive");
    if alpha < 1.0 {
        // Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
        let g = sample_gamma(rng, alpha + 1.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return g * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

/// Samples a Dirichlet distribution with the given concentration vector.
pub fn sample_dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: &[f64]) -> Vec<f64> {
    assert!(!alpha.is_empty(), "dirichlet needs at least one component");
    let gammas: Vec<f64> = alpha.iter().map(|&a| sample_gamma(rng, a)).collect();
    let total: f64 = gammas.iter().sum();
    if total <= 0.0 {
        // Numerically possible only for pathologically tiny alphas; fall
        // back to uniform.
        return vec![1.0 / alpha.len() as f64; alpha.len()];
    }
    gammas.into_iter().map(|g| g / total).collect()
}

/// Samples an index from unnormalized nonnegative weights.
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive sum");
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1 // floating-point edge
}

/// A precomputed truncated discrete power law `P(k) ∝ k^{-alpha}` on
/// `k ∈ [1, k_max]` — the tweets-per-user activity distribution.
#[derive(Debug, Clone)]
pub struct PowerLawActivity {
    cdf: Vec<f64>,
}

impl PowerLawActivity {
    /// Precomputes the CDF.
    pub fn new(alpha: f64, k_max: u32) -> Self {
        assert!(alpha > 1.0 && k_max >= 1);
        let mut cdf = Vec::with_capacity(k_max as usize);
        let mut acc = 0.0;
        for k in 1..=k_max {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("nonempty");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples a tweet count in `[1, k_max]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite"))
        {
            Ok(i) | Err(i) => (i as u32 + 1).min(self.cdf.len() as u32),
        }
    }

    /// Analytic mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        // Differentiate the CDF back into the pmf.
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i as f64 + 1.0) * (c - prev);
            prev = c;
        }
        mean
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_config_is_valid() {
        GeneratorConfig::paper_full().validate().unwrap();
        GeneratorConfig::default().validate().unwrap();
        GeneratorConfig::paper_scaled(0.01).validate().unwrap();
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = GeneratorConfig::default();
        c.n_users = 0;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.organ_popularity = [0.5; 6];
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.coattention[0][0] = 0.5;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.archetype_mix = (0.5, 0.5, 0.5);
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.activity_exponent = 0.5;
        assert!(c.validate().is_err());

        let mut c = GeneratorConfig::default();
        c.state_organ_boost
            .push((UsState::Kansas, Organ::Kidney, -1.0));
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "scale must be in (0, 1]")]
    fn scaled_rejects_zero() {
        let _ = GeneratorConfig::paper_scaled(0.0);
    }

    #[test]
    fn config_serde_round_trip() {
        // Configs are experiment manifests: they must survive JSON.
        let cfg = GeneratorConfig::paper_full();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GeneratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.n_users, cfg.n_users);
        assert_eq!(back.organ_popularity, cfg.organ_popularity);
        assert_eq!(back.state_organ_boost, cfg.state_organ_boost);
        back.validate().unwrap();
    }

    #[test]
    fn organ_weights_boosted_in_anomalous_states() {
        let cfg = GeneratorConfig::paper_full();
        let base = cfg.organ_weights_for(None);
        let kansas = cfg.organ_weights_for(Some(UsState::Kansas));
        // Kidney share strictly larger in Kansas.
        assert!(kansas[Organ::Kidney.index()] > base[Organ::Kidney.index()]);
        // Both remain distributions.
        assert!((kansas.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((base.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // A non-anomalous state matches the base mixture.
        let iowa = cfg.organ_weights_for(Some(UsState::Iowa));
        for (a, b) in iowa.iter().zip(&base) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn popularity_order_matches_paper() {
        let w = GeneratorConfig::paper_full().organ_popularity;
        for pair in [
            (Organ::Heart, Organ::Kidney),
            (Organ::Kidney, Organ::Liver),
            (Organ::Liver, Organ::Lung),
            (Organ::Lung, Organ::Pancreas),
            (Organ::Pancreas, Organ::Intestine),
        ] {
            assert!(w[pair.0.index()] > w[pair.1.index()]);
        }
    }

    #[test]
    fn gamma_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        for &alpha in &[0.5, 1.0, 2.0, 9.0] {
            let n = 40_000;
            let mean: f64 = (0..n).map(|_| sample_gamma(&mut rng, alpha)).sum::<f64>() / n as f64;
            // Gamma(alpha, 1) has mean alpha.
            assert!(
                (mean - alpha).abs() < 0.06 * alpha.max(1.0),
                "alpha {alpha}: mean {mean}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_gamma(&mut rng, 0.0);
    }

    #[test]
    fn dirichlet_sums_to_one_and_tracks_alpha() {
        let mut rng = StdRng::seed_from_u64(12);
        let alpha = [18.0, 0.5, 0.5, 0.5, 0.3, 0.2];
        let mut mean = [0.0; 6];
        let n = 5_000;
        for _ in 0..n {
            let d = sample_dirichlet(&mut rng, &alpha);
            assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
            for (m, v) in mean.iter_mut().zip(&d) {
                *m += v / n as f64;
            }
        }
        // E[d_i] = alpha_i / sum(alpha) = 18/20 = 0.9 for the first.
        assert!((mean[0] - 0.9).abs() < 0.02, "mean {:?}", mean);
    }

    #[test]
    fn weighted_sampler_respects_weights() {
        let mut rng = StdRng::seed_from_u64(13);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[sample_weighted(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn power_law_mean_matches_table_one() {
        // The paper's Table I: 1.88 tweets per user. The calibrated
        // truncated power law (alpha = 2.5, k_max = 500) must land close.
        let act = PowerLawActivity::new(2.5, 500);
        let mean = act.mean();
        assert!(
            (mean - 1.88).abs() < 0.12,
            "analytic mean {mean} too far from 1.88"
        );
        // Empirical agreement with the analytic mean.
        let mut rng = StdRng::seed_from_u64(14);
        let n = 100_000;
        let emp: f64 = (0..n).map(|_| act.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(
            (emp - mean).abs() < 0.05,
            "empirical {emp} vs analytic {mean}"
        );
    }

    #[test]
    fn power_law_samples_in_range_and_heavy_tailed() {
        let act = PowerLawActivity::new(2.5, 500);
        let mut rng = StdRng::seed_from_u64(15);
        let mut saw_heavy = false;
        for _ in 0..50_000 {
            let k = act.sample(&mut rng);
            assert!((1..=500).contains(&k));
            if k >= 50 {
                saw_heavy = true;
            }
        }
        // The tail exists: at least one user with 50+ tweets in 50k draws.
        assert!(saw_heavy);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(16);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
