//! Property-based tests for the simulated Twitter platform.

use donorpulse_text::KeywordQuery;
use donorpulse_twitter::genmodel::{sample_dirichlet, sample_weighted, PowerLawActivity};
use donorpulse_twitter::{AwarenessEvent, GeneratorConfig, TwitterSimulation};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_sim(seed: u64) -> TwitterSimulation {
    let mut cfg = GeneratorConfig::paper_scaled(0.001);
    cfg.seed = seed;
    TwitterSimulation::generate(cfg).expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simulation_invariants_hold_for_any_seed(seed in 0u64..1000) {
        let sim = tiny_sim(seed);
        // Schedule is sorted and inside the window.
        for pair in sim.schedule().windows(2) {
            prop_assert!(pair[0].at <= pair[1].at);
        }
        prop_assert!(sim.schedule().iter().all(|e| e.at.in_collection_window()));
        // Attention rows are distributions.
        for u in sim.users() {
            let s: f64 = u.attention.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
        // On-topic accounting matches per-user counters.
        let on_topic: u32 = sim.users().iter().map(|u| u.on_topic_tweets).sum();
        prop_assert_eq!(sim.on_topic_len(), on_topic as usize);
    }

    #[test]
    fn realization_is_pure(seed in 0u64..500, idx_frac in 0.0..1.0f64) {
        let sim = tiny_sim(seed);
        let idx = ((sim.firehose_len() - 1) as f64 * idx_frac) as usize;
        prop_assert_eq!(sim.realize(idx), sim.realize(idx));
    }

    #[test]
    fn filter_agrees_with_schedule_flag(seed in 0u64..200) {
        let sim = tiny_sim(seed);
        let q = KeywordQuery::paper();
        for i in (0..sim.firehose_len()).step_by(7) {
            let tweet = sim.realize(i);
            prop_assert_eq!(q.matches(&tweet.text), sim.schedule()[i].on_topic,
                "event {}: {}", i, tweet.text);
        }
    }

    #[test]
    fn dirichlet_output_is_simplex(
        alphas in prop::collection::vec(0.05..30.0f64, 2..8),
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = sample_dirichlet(&mut rng, &alphas);
        prop_assert_eq!(d.len(), alphas.len());
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(d.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn weighted_sampling_never_picks_zero_weight(
        mut weights in prop::collection::vec(0.0..5.0f64, 2..10),
        zero_at_frac in 0.0..1.0f64,
        seed in 0u64..100,
    ) {
        let zero_at = ((weights.len() - 1) as f64 * zero_at_frac) as usize;
        weights[zero_at] = 0.0;
        if weights.iter().sum::<f64>() <= 0.0 {
            let fix = (zero_at + 1) % weights.len();
            weights[fix] = 1.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let pick = sample_weighted(&mut rng, &weights);
            prop_assert!(pick < weights.len());
            prop_assert!(weights[pick] > 0.0, "picked zero-weight index {}", pick);
        }
    }

    #[test]
    fn power_law_in_range(alpha in 1.5..4.0f64, kmax in 2u32..200, seed in 0u64..50) {
        let act = PowerLawActivity::new(alpha, kmax);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let k = act.sample(&mut rng);
            prop_assert!((1..=kmax).contains(&k));
        }
        let mean = act.mean();
        prop_assert!(mean >= 1.0 && mean <= kmax as f64);
    }

    #[test]
    fn event_windows_validated(start in 0u32..400, len in 0u32..50, intensity in -0.5..1.5f64) {
        let mut cfg = GeneratorConfig::paper_scaled(0.001);
        cfg.events.push(AwarenessEvent {
            organ: donorpulse_text::Organ::Heart,
            start_day: start,
            end_day: start + len,
            intensity,
        });
        let valid = len > 0 && (0.0..=1.0).contains(&intensity);
        prop_assert_eq!(cfg.validate().is_ok(), valid);
    }
}
