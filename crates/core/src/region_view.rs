//! Fig. 4: per-state organ signatures.
//!
//! Each state is a row of `K` under the region membership (Eq. 2) — a
//! distribution of attention over the six organs. The paper observes
//! that every state has its own "organ signature" despite heart leading
//! almost everywhere, and that states can be split by their second
//! most-mentioned organ.

use crate::aggregate::Aggregation;
use donorpulse_geo::UsState;
use donorpulse_text::Organ;
use serde::Serialize;
use std::collections::HashMap;

/// One state's signature.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StateSignature {
    /// The state.
    pub state: UsState,
    /// Number of users aggregated.
    pub users: usize,
    /// Attention distribution in canonical organ order.
    pub distribution: [f64; Organ::COUNT],
    /// Organs ranked by attention, descending.
    pub ranked: Vec<(Organ, f64)>,
}

/// The Fig. 4 view over a region aggregation.
#[derive(Debug, Clone, Serialize)]
pub struct RegionCharacterization {
    /// One signature per state, in aggregation row order.
    pub signatures: Vec<StateSignature>,
}

impl RegionCharacterization {
    /// Builds signatures from a region aggregation.
    pub fn new(aggregation: &Aggregation<UsState>) -> Self {
        let signatures = aggregation
            .groups
            .iter()
            .enumerate()
            .map(|(i, &state)| {
                let row = aggregation.matrix.row(i);
                let mut distribution = [0.0; Organ::COUNT];
                distribution.copy_from_slice(row);
                StateSignature {
                    state,
                    users: aggregation.sizes[i],
                    distribution,
                    ranked: aggregation.ranked_row(i),
                }
            })
            .collect();
        Self { signatures }
    }

    /// Signature for one state.
    pub fn signature(&self, state: UsState) -> Option<&StateSignature> {
        self.signatures.iter().find(|s| s.state == state)
    }

    /// The most-mentioned organ per state (the paper's point: this is
    /// heart nearly everywhere, which is why RR is needed).
    pub fn top_organ(&self, state: UsState) -> Option<Organ> {
        self.signature(state).map(|s| s.ranked[0].0)
    }

    /// The second most-mentioned organ per state.
    pub fn second_organ(&self, state: UsState) -> Option<Organ> {
        self.signature(state)
            .and_then(|s| s.ranked.get(1))
            .map(|&(o, _)| o)
    }

    /// Splits states by their second most-mentioned organ — the grouping
    /// the paper suggests in Sec. IV-B.
    pub fn by_second_organ(&self) -> HashMap<Organ, Vec<UsState>> {
        let mut map: HashMap<Organ, Vec<UsState>> = HashMap::new();
        for s in &self.signatures {
            if let Some(&(organ, _)) = s.ranked.get(1) {
                map.entry(organ).or_default().push(s.state);
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_linalg::Matrix;

    fn aggregation() -> Aggregation<UsState> {
        // Two states: Kansas kidney-second, Texas liver-second.
        Aggregation {
            groups: vec![UsState::Kansas, UsState::Texas],
            sizes: vec![10, 20],
            matrix: Matrix::from_rows(&[
                vec![0.5, 0.3, 0.1, 0.05, 0.03, 0.02],
                vec![0.5, 0.1, 0.3, 0.05, 0.03, 0.02],
            ])
            .unwrap(),
        }
    }

    #[test]
    fn signatures_built() {
        let rc = RegionCharacterization::new(&aggregation());
        assert_eq!(rc.signatures.len(), 2);
        let ks = rc.signature(UsState::Kansas).unwrap();
        assert_eq!(ks.users, 10);
        assert!((ks.distribution[Organ::Heart.index()] - 0.5).abs() < 1e-12);
        assert!(rc.signature(UsState::Ohio).is_none());
    }

    #[test]
    fn top_and_second_organs() {
        let rc = RegionCharacterization::new(&aggregation());
        assert_eq!(rc.top_organ(UsState::Kansas), Some(Organ::Heart));
        assert_eq!(rc.second_organ(UsState::Kansas), Some(Organ::Kidney));
        assert_eq!(rc.second_organ(UsState::Texas), Some(Organ::Liver));
    }

    #[test]
    fn grouping_by_second_organ() {
        let rc = RegionCharacterization::new(&aggregation());
        let groups = rc.by_second_organ();
        assert_eq!(groups[&Organ::Kidney], vec![UsState::Kansas]);
        assert_eq!(groups[&Organ::Liver], vec![UsState::Texas]);
    }
}
