//! Multi-campaign sensing: the campaign registry that makes the whole
//! pipeline multi-tenant over a **single firehose pass**.
//!
//! The paper hardwires one query `Q = Context × Subject` (organ donation
//! terms × organ lexicon), but its method — keyword sensing → location
//! augmentation → per-user attention → characterization — never looks at
//! *which* keywords fired. A [`CampaignSpec`] captures exactly the three
//! campaign-specific inputs: a name, the Context term list, and a set of
//! named categories whose term lists play the role the organ lexicons
//! play for the paper's campaign. Everything downstream (mention counts,
//! attention matrix, risk map, report) is reused unchanged by mapping
//! category `i` onto canonical slot `i` of the six-slot
//! [`Organ`] axis.
//!
//! A [`CampaignSet`] is the compiled registry one run senses for. All
//! campaigns share one stream connection: the endpoint filters the
//! firehose by the **union** of the campaign matchers, and each
//! consumer re-evaluates the per-campaign matchers on admitted text to
//! decide which campaign sensors ingest a tweet. Because membership is
//! a pure function of tweet text, nothing about campaign routing needs
//! to ride the wire — batch frames, markers, park queues, and dead
//! letters stay campaign-agnostic, and a resumed or healed worker
//! recomputes the same memberships from the same bytes.
//!
//! **Isolation guarantee** (`docs/CAMPAIGNS.md`): adding campaigns to a
//! run never changes another campaign's artifacts. The organ-donation
//! campaign in a multi-campaign run produces byte-identical snapshots,
//! fingerprints, checkpointed exports, and served bodies to today's
//! single-campaign run — the invariant `scripts/verify.sh` enforces as
//! the CAMPAIGN RESULT gate.

use crate::{CoreError, Result};
use donorpulse_text::extract::OrganExtractor;
use donorpulse_text::keywords::CONTEXT_TERMS;
use donorpulse_text::{KeywordQuery, Organ, TextFilter};
use std::path::Path;

/// Name of the built-in default campaign — the paper's query.
pub const DEFAULT_CAMPAIGN: &str = "organ-donation";

/// Upper bound on campaigns per run: memberships travel as a `u32`
/// bitmask inside the process, and per-campaign sensors are cloned
/// into every shard, so the registry refuses silly cardinalities.
pub const MAX_CAMPAIGNS: usize = 32;

/// Categories per campaign are capped by the canonical six-slot
/// subject axis the analytics layer is built around.
pub const MAX_CATEGORIES: usize = Organ::COUNT;

/// One campaign's declaration: the three inputs the paper's method
/// actually depends on. Loaded from a manifest ([`CampaignSet::load`])
/// or built in ([`CampaignSpec::builtin`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Registry key, URL segment, and metric-name stem. Lowercase
    /// `[a-z0-9-]`, unique within a set.
    pub name: String,
    /// Context terms (left side of the paper's Fig. 1 for this
    /// campaign). Empty only for the built-in reference entry.
    pub context: Vec<String>,
    /// Named categories and their surface-form lexicons (right side of
    /// Fig. 1). Category `i` occupies canonical subject slot `i`; at
    /// most [`MAX_CATEGORIES`].
    pub categories: Vec<(String, Vec<String>)>,
}

impl CampaignSpec {
    /// The built-in organ-donation campaign: the paper's context
    /// vocabulary crossed with the six organ lexicons.
    pub fn builtin() -> Self {
        CampaignSpec {
            name: DEFAULT_CAMPAIGN.to_string(),
            context: CONTEXT_TERMS.iter().map(|t| t.to_string()).collect(),
            categories: Organ::ALL
                .into_iter()
                .map(|o| {
                    (
                        o.name().to_lowercase(),
                        o.lexicon().iter().map(|t| t.to_string()).collect(),
                    )
                })
                .collect(),
        }
    }

    /// True when this spec *is* the built-in campaign (by name). The
    /// built-in may be referenced from a manifest by bare name; its
    /// vocabulary cannot be redefined there, which keeps the
    /// byte-identity guarantee unambiguous.
    pub fn is_builtin(&self) -> bool {
        self.name == DEFAULT_CAMPAIGN
    }
}

/// A compiled campaign: its spec plus the two automata the hot path
/// runs — the admission matcher and the category-mention extractor.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    matcher: KeywordQuery,
    extractor: OrganExtractor,
}

impl Campaign {
    /// Validates and compiles one spec.
    fn compile(spec: CampaignSpec) -> Result<Self> {
        validate_slug("campaign name", &spec.name)?;
        if spec.is_builtin() {
            let builtin = CampaignSpec::builtin();
            if !spec.context.is_empty() || !spec.categories.is_empty() {
                return Err(CoreError::Campaign(format!(
                    "campaign {DEFAULT_CAMPAIGN:?} is built in and cannot be redefined; \
                     reference it by bare name"
                )));
            }
            // Compile through the exact constructors the single-tenant
            // pipeline has always used, not the generic path — the
            // byte-identity guarantee should not hinge on the generic
            // compiler being equivalent.
            return Ok(Campaign {
                spec: builtin,
                matcher: KeywordQuery::paper(),
                extractor: OrganExtractor::new(),
            });
        }
        if spec.context.is_empty() {
            return Err(CoreError::Campaign(format!(
                "campaign {:?}: at least one context term required",
                spec.name
            )));
        }
        if spec.categories.is_empty() {
            return Err(CoreError::Campaign(format!(
                "campaign {:?}: at least one category required",
                spec.name
            )));
        }
        if spec.categories.len() > MAX_CATEGORIES {
            return Err(CoreError::Campaign(format!(
                "campaign {:?}: {} categories exceed the {MAX_CATEGORIES}-slot subject axis",
                spec.name,
                spec.categories.len()
            )));
        }
        for term in &spec.context {
            validate_term(&spec.name, "context", term)?;
        }
        let mut subject = Vec::new();
        for (cat, terms) in &spec.categories {
            validate_slug("category name", cat)?;
            if terms.is_empty() {
                return Err(CoreError::Campaign(format!(
                    "campaign {:?}: category {cat:?} has no terms",
                    spec.name
                )));
            }
            for term in terms {
                validate_term(&spec.name, cat, term)?;
                subject.push(term.clone());
            }
        }
        if spec
            .categories
            .iter()
            .enumerate()
            .any(|(i, (cat, _))| spec.categories[..i].iter().any(|(c, _)| c == cat))
        {
            return Err(CoreError::Campaign(format!(
                "campaign {:?}: duplicate category name",
                spec.name
            )));
        }
        let matcher = KeywordQuery::new(spec.context.iter().cloned(), subject);
        let extractor = OrganExtractor::with_lexicons(
            spec.categories
                .iter()
                .map(|(_, terms)| terms.iter().map(String::as_str).collect::<Vec<_>>()),
        );
        Ok(Campaign {
            spec,
            matcher,
            extractor,
        })
    }

    /// Registry key / URL segment / metric stem.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The declared spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// True when this is the built-in organ-donation campaign.
    pub fn is_builtin(&self) -> bool {
        self.spec.is_builtin()
    }

    /// The admission matcher `Q = Context × Subject` for this campaign.
    pub fn matcher(&self) -> &KeywordQuery {
        &self.matcher
    }

    /// The category-mention extractor (category `i` → subject slot `i`).
    pub fn extractor(&self) -> &OrganExtractor {
        &self.extractor
    }

    /// Category display names in slot order.
    pub fn category_names(&self) -> Vec<&str> {
        self.spec
            .categories
            .iter()
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// True when this campaign's query admits the tweet text.
    pub fn matches(&self, text: &str) -> bool {
        self.matcher.matches(text)
    }

    /// The campaign name with `-` folded to `_` — the stem of this
    /// campaign's `campaign_<name>_*` metric names.
    pub fn metric_stem(&self) -> String {
        self.spec.name.replace('-', "_")
    }

    /// `campaign_<stem>_<suffix>`, interned to the `&'static str` the
    /// metrics registry requires. Campaign names arrive at runtime from
    /// the manifest, so the name must be leaked once; the intern cache
    /// bounds that to one leak per distinct metric name per process,
    /// however many runs reuse it.
    pub fn metric_name(&self, suffix: &str) -> &'static str {
        intern_metric_name(format!("campaign_{}_{suffix}", self.metric_stem()))
    }
}

/// Interns a runtime-built metric name, returning a `&'static str`.
/// The obs registry keys counters and gauges by `&'static str`; static
/// catalog names satisfy that for free, but per-campaign names are
/// manifest-derived. Leaks each distinct name exactly once per process
/// (a `Box::leak` guarded by a dedup map), which is bounded by
/// `MAX_CAMPAIGNS` × the handful of per-campaign metric suffixes.
fn intern_metric_name(name: String) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static CACHE: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut cache = CACHE.lock().expect("metric name intern cache poisoned");
    if let Some(&interned) = cache.get(&name) {
        return interned;
    }
    let interned: &'static str = Box::leak(name.clone().into_boxed_str());
    cache.insert(name, interned);
    interned
}

/// A campaign name or category name: nonempty lowercase `[a-z0-9-]`,
/// at most 64 bytes — safe as a URL path segment, a checkpoint string
/// field, and (with `-` → `_`) a metric name stem.
fn validate_slug(what: &str, name: &str) -> Result<()> {
    if name.is_empty() || name.len() > 64 {
        return Err(CoreError::Campaign(format!(
            "{what} {name:?}: must be 1..=64 bytes"
        )));
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
    {
        return Err(CoreError::Campaign(format!(
            "{what} {name:?}: only lowercase letters, digits, and '-' allowed"
        )));
    }
    Ok(())
}

/// A matcher/lexicon term must survive normalization with at least one
/// word character, or the compiled automaton would reject it (empty
/// patterns match everywhere).
fn validate_term(campaign: &str, field: &str, term: &str) -> Result<()> {
    if donorpulse_text::normalize::normalize(term)
        .trim()
        .is_empty()
    {
        return Err(CoreError::Campaign(format!(
            "campaign {campaign:?}: {field} term {term:?} normalizes to nothing"
        )));
    }
    Ok(())
}

/// The union of every campaign matcher in a set — what the (single,
/// shared) stream endpoint filters the firehose by. A tweet is
/// delivered when **any** campaign wants it; per-campaign membership is
/// re-derived downstream from the text.
#[derive(Debug, Clone)]
pub struct UnionFilter {
    matchers: Vec<KeywordQuery>,
}

impl TextFilter for UnionFilter {
    fn accepts(&self, text: &str) -> bool {
        self.matchers.iter().any(|m| m.matches(text))
    }
}

/// The compiled, validated campaign registry one run senses for.
///
/// Campaign order is manifest order and is load-bearing: index 0 is
/// the **primary** campaign (its export rides in the legacy slot of
/// [`crate::SensorCheckpoint`]), and snapshot blocks, report sections,
/// and metric registrations all iterate in set order so output stays
/// deterministic.
#[derive(Debug, Clone)]
pub struct CampaignSet {
    campaigns: Vec<Campaign>,
}

impl Default for CampaignSet {
    fn default() -> Self {
        Self::default_single()
    }
}

impl CampaignSet {
    /// The registry every pre-campaign entry point implies: just the
    /// built-in organ-donation campaign.
    pub fn default_single() -> Self {
        // A bare-name spec, exactly as a manifest would reference the
        // built-in; `compile` resolves it to the full vocabulary.
        let bare = CampaignSpec {
            name: DEFAULT_CAMPAIGN.to_string(),
            context: Vec::new(),
            categories: Vec::new(),
        };
        CampaignSet {
            campaigns: vec![Campaign::compile(bare).expect("builtin spec compiles")],
        }
    }

    /// Compiles and validates a set of specs (manifest order kept).
    pub fn from_specs(specs: Vec<CampaignSpec>) -> Result<Self> {
        if specs.is_empty() {
            return Err(CoreError::Campaign(
                "a campaign set needs at least one campaign".into(),
            ));
        }
        if specs.len() > MAX_CAMPAIGNS {
            return Err(CoreError::Campaign(format!(
                "{} campaigns exceed the {MAX_CAMPAIGNS}-campaign limit",
                specs.len()
            )));
        }
        for (i, spec) in specs.iter().enumerate() {
            if specs[..i].iter().any(|s| s.name == spec.name) {
                return Err(CoreError::Campaign(format!(
                    "duplicate campaign name {:?}",
                    spec.name
                )));
            }
        }
        let campaigns = specs
            .into_iter()
            .map(Campaign::compile)
            .collect::<Result<Vec<_>>>()?;
        Ok(CampaignSet { campaigns })
    }

    /// Parses a manifest (see `docs/CAMPAIGNS.md`) and compiles it.
    pub fn parse_manifest(text: &str) -> Result<Self> {
        Self::from_specs(parse_manifest_specs(text)?)
    }

    /// Reads and parses a manifest file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            CoreError::Campaign(format!("reading manifest {}: {e}", path.display()))
        })?;
        Self::parse_manifest(&text).map_err(|e| match e {
            CoreError::Campaign(msg) => CoreError::Campaign(format!("{}: {msg}", path.display())),
            other => other,
        })
    }

    /// Number of campaigns (≥ 1).
    pub fn len(&self) -> usize {
        self.campaigns.len()
    }

    /// A set is never empty; this exists for clippy's sake.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All campaigns in set order.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// The primary campaign (index 0).
    pub fn primary(&self) -> &Campaign {
        &self.campaigns[0]
    }

    /// The non-primary campaigns, in set order.
    pub fn extras(&self) -> &[Campaign] {
        &self.campaigns[1..]
    }

    /// Looks a campaign up by name.
    pub fn get(&self, name: &str) -> Option<(usize, &Campaign)> {
        self.campaigns
            .iter()
            .enumerate()
            .find(|(_, c)| c.name() == name)
    }

    /// Campaign names in set order.
    pub fn names(&self) -> Vec<&str> {
        self.campaigns.iter().map(Campaign::name).collect()
    }

    /// True when this is exactly the implied pre-campaign registry:
    /// one campaign, the built-in default. Single-tenant fast paths
    /// (and the legacy checkpoint layout) key off this.
    pub fn is_default_single(&self) -> bool {
        self.campaigns.len() == 1 && self.campaigns[0].name() == DEFAULT_CAMPAIGN
    }

    /// The stream-endpoint filter: the single campaign's own matcher
    /// when the set is a singleton (bit-for-bit the pre-campaign
    /// behaviour), the union matcher otherwise.
    pub fn endpoint_filter(&self) -> Box<dyn TextFilter + Send> {
        if self.campaigns.len() == 1 {
            Box::new(self.campaigns[0].matcher().clone())
        } else {
            Box::new(UnionFilter {
                matchers: self.campaigns.iter().map(|c| c.matcher.clone()).collect(),
            })
        }
    }

    /// Campaign-membership bitmask for a tweet text: bit `i` set when
    /// campaign `i`'s matcher admits it. `0` can only reach a consumer
    /// through fault-injected duplicates of corrupt frames; such
    /// tweets are ingested by no sensor.
    pub fn mask_of(&self, text: &str) -> u32 {
        let mut mask = 0u32;
        for (i, c) in self.campaigns.iter().enumerate() {
            if c.matches(text) {
                mask |= 1 << i;
            }
        }
        mask
    }
}

/// Parses the dependency-free campaign manifest: a strict subset of
/// TOML chosen so operators can hand-write it and `grep` can audit it.
///
/// ```toml
/// [[campaign]]
/// name = "organ-donation"        # bare name references the built-in
///
/// [[campaign]]
/// name = "blood-drive"
/// context = ["donate", "donor"]
/// category.blood = ["blood"]
/// category.plasma = ["plasma"]
/// ```
///
/// Supported grammar: `[[campaign]]` table headers, `name = "…"`,
/// `context = ["…", …]`, and dotted `category.<slug> = ["…", …]` keys,
/// one per line, with `#` comments. Anything else is an error with a
/// line number — silent tolerance here would mean silently dropping a
/// tenant's vocabulary.
fn parse_manifest_specs(text: &str) -> Result<Vec<CampaignSpec>> {
    let mut specs: Vec<CampaignSpec> = Vec::new();
    let mut current: Option<CampaignSpec> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| CoreError::Campaign(format!("line {}: {msg}", lineno + 1));
        if line == "[[campaign]]" {
            if let Some(spec) = current.take() {
                finish_spec(&mut specs, spec, lineno)?;
            }
            current = Some(CampaignSpec {
                name: String::new(),
                context: Vec::new(),
                categories: Vec::new(),
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(err(format!(
                "unsupported table header {line:?} (only [[campaign]] is recognized)"
            )));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected `key = value`, got {line:?}")));
        };
        let (key, value) = (key.trim(), value.trim());
        let Some(spec) = current.as_mut() else {
            return Err(err(format!(
                "key {key:?} appears before the first [[campaign]] header"
            )));
        };
        match key {
            "name" => {
                if !spec.name.is_empty() {
                    return Err(err("duplicate `name` key".into()));
                }
                spec.name = parse_toml_string(value).map_err(err)?;
            }
            "context" => {
                if !spec.context.is_empty() {
                    return Err(err("duplicate `context` key".into()));
                }
                spec.context = parse_toml_string_array(value).map_err(err)?;
            }
            _ => {
                if let Some(cat) = key.strip_prefix("category.") {
                    let terms = parse_toml_string_array(value).map_err(err)?;
                    if spec.categories.iter().any(|(c, _)| c == cat) {
                        return Err(err(format!("duplicate category {cat:?}")));
                    }
                    spec.categories.push((cat.to_string(), terms));
                } else {
                    return Err(err(format!(
                        "unknown key {key:?} (expected name, context, or category.<slug>)"
                    )));
                }
            }
        }
    }
    if let Some(spec) = current.take() {
        finish_spec(&mut specs, spec, text.lines().count())?;
    }
    if specs.is_empty() {
        return Err(CoreError::Campaign(
            "manifest declares no [[campaign]] entries".into(),
        ));
    }
    Ok(specs)
}

/// Closes one `[[campaign]]` block: the name is mandatory.
fn finish_spec(specs: &mut Vec<CampaignSpec>, spec: CampaignSpec, lineno: usize) -> Result<()> {
    if spec.name.is_empty() {
        return Err(CoreError::Campaign(format!(
            "campaign block ending at line {lineno} has no `name`"
        )));
    }
    specs.push(spec);
    Ok(())
}

/// Removes a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses a double-quoted string. Escapes are deliberately not
/// supported: every slug and keyword this manifest can need is plain
/// ASCII, and rejecting `\` keeps the grammar auditable.
fn parse_toml_string(value: &str) -> std::result::Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("expected a double-quoted string, got {value:?}"))?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(format!(
            "quotes and backslashes are not supported in {value:?}"
        ));
    }
    Ok(inner.to_string())
}

/// Parses a single-line array of double-quoted strings.
fn parse_toml_string_array(value: &str) -> std::result::Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"…\", …] array, got {value:?}"))?;
    let inner = inner.trim();
    let mut out = Vec::new();
    if inner.is_empty() {
        return Ok(out);
    }
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            // Tolerate one trailing comma, a TOML-ism hands write.
            continue;
        }
        out.push(parse_toml_string(part)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"
# Two tenants over one firehose pass.
[[campaign]]
name = "organ-donation"

[[campaign]]
name = "blood-drive"
context = ["donate", "donated", "donation", "donations", "donor", "donors"]
category.blood = ["blood"]        # whole blood
category.plasma = ["plasma"]
"#;

    #[test]
    fn builtin_compiles_to_the_paper_query() {
        let set = CampaignSet::default_single();
        assert!(set.is_default_single());
        assert_eq!(set.names(), vec![DEFAULT_CAMPAIGN]);
        let c = set.primary();
        assert!(c.matches("be a kidney donor today"));
        assert!(!c.matches("my heart is broken"));
        assert_eq!(
            c.extractor().extract("kidney kidney heart").as_array(),
            OrganExtractor::new()
                .extract("kidney kidney heart")
                .as_array()
        );
        assert_eq!(c.category_names().len(), Organ::COUNT);
        assert_eq!(c.metric_stem(), "organ_donation");
    }

    #[test]
    fn manifest_parses_and_masks_members() {
        let set = CampaignSet::parse_manifest(MANIFEST).expect("parse");
        assert_eq!(set.names(), vec!["organ-donation", "blood-drive"]);
        assert!(!set.is_default_single());
        // Organ-donation only.
        assert_eq!(set.mask_of("be a kidney donor today"), 0b01);
        // Blood-drive only: context word + blood, no organ.
        assert_eq!(
            set.mask_of("blood donation drive at the gym tomorrow"),
            0b10
        );
        assert_eq!(
            set.mask_of("plasma donor appointment booked for friday"),
            0b10
        );
        // Both: context + organ + blood.
        assert_eq!(
            set.mask_of("donate blood and register as a kidney donor"),
            0b11
        );
        // Neither.
        assert_eq!(set.mask_of("good morning everyone"), 0b00);
    }

    #[test]
    fn union_filter_accepts_any_member() {
        let set = CampaignSet::parse_manifest(MANIFEST).expect("parse");
        let f = set.endpoint_filter();
        assert!(f.accepts("be a kidney donor today"));
        assert!(f.accepts("blood donation drive at the gym tomorrow"));
        assert!(!f.accepts("good morning everyone"));
        // Singleton sets filter with the campaign's own matcher.
        let single = CampaignSet::default_single().endpoint_filter();
        assert!(single.accepts("kidney donor"));
        assert!(!single.accepts("blood donation drive at the gym tomorrow"));
    }

    #[test]
    fn custom_extractor_counts_category_slots() {
        let set = CampaignSet::parse_manifest(MANIFEST).expect("parse");
        let (_, bd) = set.get("blood-drive").expect("present");
        let counts = bd.extractor().extract("blood blood plasma");
        assert_eq!(counts.count(Organ::from_index(0).unwrap()), 2); // blood
        assert_eq!(counts.count(Organ::from_index(1).unwrap()), 1); // plasma
        assert_eq!(counts.total(), 3);
        assert_eq!(bd.category_names(), vec!["blood", "plasma"]);
    }

    #[test]
    fn validation_rejects_bad_manifests() {
        // Redefining the builtin.
        let err = CampaignSet::parse_manifest(
            "[[campaign]]\nname = \"organ-donation\"\ncontext = [\"donate\"]\ncategory.x = [\"y\"]\n",
        )
        .unwrap_err();
        assert!(err.to_string().contains("built in"), "{err}");
        // Duplicate names.
        assert!(CampaignSet::parse_manifest(
            "[[campaign]]\nname = \"organ-donation\"\n[[campaign]]\nname = \"organ-donation\"\n"
        )
        .is_err());
        // Custom campaign without categories.
        assert!(
            CampaignSet::parse_manifest("[[campaign]]\nname = \"x\"\ncontext = [\"give\"]\n")
                .is_err()
        );
        // Bad slug.
        assert!(CampaignSet::parse_manifest(
            "[[campaign]]\nname = \"Bad Name\"\ncontext = [\"give\"]\ncategory.a = [\"b\"]\n"
        )
        .is_err());
        // Seven categories overflow the subject axis.
        let mut m = String::from("[[campaign]]\nname = \"x\"\ncontext = [\"give\"]\n");
        for i in 0..7 {
            m.push_str(&format!("category.c{i} = [\"t{i}\"]\n"));
        }
        assert!(CampaignSet::parse_manifest(&m).is_err());
        // Unknown key carries a line number.
        let err =
            CampaignSet::parse_manifest("[[campaign]]\nname = \"x\"\nbogus = \"y\"\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        // Empty manifest.
        assert!(CampaignSet::parse_manifest("# nothing\n").is_err());
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let set = CampaignSet::parse_manifest(
            "  [[campaign]]  \n  name = \"organ-donation\"  # builtin\n",
        )
        .expect("parse");
        assert!(set.is_default_single());
        // '#' inside a string is content, not a comment.
        let err = CampaignSet::parse_manifest("[[campaign]]\nname = \"a#b\"\n").unwrap_err();
        assert!(err.to_string().contains("only lowercase"), "{err}");
    }
}
