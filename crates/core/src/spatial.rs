//! Spatial autocorrelation of organ conversations — Moran's I over the
//! state contiguity graph.
//!
//! The paper frames its regional findings against known geographic
//! health patterns (the Stroke Belt, Western fatty-liver prevalence) and
//! asks about "clustering of well-defined borders of adjacent regions".
//! Moran's I is the standard formalization: for a per-state attribute
//! `x` (here an organ's attention share) and binary contiguity weights
//! `w`,
//!
//! ```text
//! I = (n / W) · Σᵢⱼ wᵢⱼ (xᵢ − x̄)(xⱼ − x̄) / Σᵢ (xᵢ − x̄)²
//! ```
//!
//! `I > E[I] = −1/(n−1)` means neighboring states talk alike (regional
//! clustering); `I < E[I]` means checkerboard dissimilarity. Significance
//! comes from a label-permutation null.
//!
//! Note on the simulator: the planted anomalies are deliberately
//! *state-level* (Kansas, Delaware, …), not regional, so the simulated
//! corpus shows little spatial autocorrelation — the honest negative.
//! The machinery is validated on synthetic contiguous patterns instead.

use crate::region_view::RegionCharacterization;
use crate::{CoreError, Result};
use donorpulse_geo::adjacency::are_adjacent;
use donorpulse_geo::UsState;
use donorpulse_text::Organ;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Moran's I with its permutation significance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MoransI {
    /// The statistic.
    pub i: f64,
    /// Expected value under the null, `−1/(n−1)`.
    pub expected: f64,
    /// Permutation p-value for the two-sided test `I ≠ E[I]`.
    pub p_value: f64,
    /// States included (those connected to at least one other included
    /// state).
    pub n: usize,
}

impl MoransI {
    /// True when the spatial pattern is significant at `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Computes Moran's I for an arbitrary per-state attribute.
///
/// States whose value is absent, or that have no *included* neighbor
/// (Alaska, Hawaii, Puerto Rico), drop out — isolated observations carry
/// no contiguity information.
pub fn morans_i(values: &[(UsState, f64)], permutations: usize, seed: u64) -> Result<MoransI> {
    if permutations < 10 {
        return Err(CoreError::InvalidParameter(format!(
            "need at least 10 permutations, got {permutations}"
        )));
    }
    // Keep only states with at least one neighbor inside the sample.
    let states: Vec<UsState> = values.iter().map(|&(s, _)| s).collect();
    let included: Vec<(UsState, f64)> = values
        .iter()
        .copied()
        .filter(|&(s, _)| states.iter().any(|&t| are_adjacent(s, t)))
        .collect();
    let n = included.len();
    if n < 4 {
        return Err(CoreError::InvalidParameter(format!(
            "Moran's I needs at least 4 connected states, got {n}"
        )));
    }

    let xs: Vec<f64> = included.iter().map(|&(_, x)| x).collect();
    let statistic = |xs: &[f64]| -> Result<f64> {
        let n_f = n as f64;
        let mean = xs.iter().sum::<f64>() / n_f;
        let denom: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        if denom <= 0.0 {
            return Err(CoreError::InvalidParameter(
                "Moran's I undefined for a constant attribute".to_string(),
            ));
        }
        let mut num = 0.0;
        let mut w_total = 0.0;
        for (i, &(si, _)) in included.iter().enumerate() {
            for (j, &(sj, _)) in included.iter().enumerate() {
                if i != j && are_adjacent(si, sj) {
                    num += (xs[i] - mean) * (xs[j] - mean);
                    w_total += 1.0;
                }
            }
        }
        Ok((n_f / w_total) * (num / denom))
    };

    let observed = statistic(&xs)?;
    let expected = -1.0 / (n as f64 - 1.0);

    // Permutation null: shuffle the attribute over the included states.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut shuffled = xs.clone();
    let mut extreme = 0usize;
    for _ in 0..permutations {
        for i in (1..n).rev() {
            shuffled.swap(i, rng.gen_range(0..=i));
        }
        let null_i = statistic(&shuffled)?;
        if (null_i - expected).abs() >= (observed - expected).abs() {
            extreme += 1;
        }
    }
    let p_value = (extreme + 1) as f64 / (permutations + 1) as f64;

    Ok(MoransI {
        i: observed,
        expected,
        p_value,
        n,
    })
}

/// Moran's I of one organ's attention share across the characterized
/// states (rows of the region `K`).
pub fn organ_morans_i(
    regions: &RegionCharacterization,
    organ: Organ,
    permutations: usize,
    seed: u64,
) -> Result<MoransI> {
    let values: Vec<(UsState, f64)> = regions
        .signatures
        .iter()
        .map(|s| (s.state, s.distribution[organ.index()]))
        .collect();
    morans_i(&values, permutations, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_geo::Region;

    /// A strongly regional pattern: high values across the South, low
    /// elsewhere — Stroke Belt shaped.
    fn southern_pattern() -> Vec<(UsState, f64)> {
        UsState::ALL
            .iter()
            .map(|&s| {
                let x = if s.region() == Region::South {
                    0.9
                } else {
                    0.1
                };
                (s, x)
            })
            .collect()
    }

    /// Spatially random pattern (hash-based).
    fn scattered_pattern() -> Vec<(UsState, f64)> {
        UsState::ALL
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, ((i * 2_654_435_761) % 97) as f64 / 97.0))
            .collect()
    }

    #[test]
    fn regional_pattern_is_positively_autocorrelated() {
        let m = morans_i(&southern_pattern(), 200, 1).unwrap();
        assert!(m.i > 0.5, "I = {}", m.i);
        assert!(m.significant_at(0.01), "p = {}", m.p_value);
        // Islands dropped: 52 − AK/HI/PR.
        assert_eq!(m.n, 49);
    }

    #[test]
    fn scattered_pattern_is_not_significant() {
        let m = morans_i(&scattered_pattern(), 200, 2).unwrap();
        assert!(
            !m.significant_at(0.01),
            "scattered pattern flagged: I = {}, p = {}",
            m.i,
            m.p_value
        );
        assert!((m.expected + 1.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn checkerboard_is_negatively_autocorrelated() {
        // Color the contiguity graph greedily two ways and assign
        // opposite values — neighbors differ as much as possible.
        let mut values = Vec::new();
        let mut color: std::collections::HashMap<UsState, bool> = std::collections::HashMap::new();
        for &s in UsState::ALL {
            // Greedy: pick the color least used among already-colored
            // neighbors.
            let n_true = donorpulse_geo::adjacency::neighbors(s)
                .into_iter()
                .filter(|n| color.get(n) == Some(&true))
                .count();
            let n_false = donorpulse_geo::adjacency::neighbors(s)
                .into_iter()
                .filter(|n| color.get(n) == Some(&false))
                .count();
            let c = n_true <= n_false;
            color.insert(s, c);
            values.push((s, if c { 1.0 } else { 0.0 }));
        }
        let m = morans_i(&values, 200, 3).unwrap();
        assert!(m.i < m.expected, "I = {} not below {}", m.i, m.expected);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(morans_i(&southern_pattern(), 5, 1).is_err());
        // Constant attribute.
        let flat: Vec<(UsState, f64)> = UsState::ALL.iter().map(|&s| (s, 0.5)).collect();
        assert!(morans_i(&flat, 50, 1).is_err());
        // Too few connected states.
        let tiny = vec![
            (UsState::Alaska, 1.0),
            (UsState::Hawaii, 0.0),
            (UsState::PuertoRico, 0.5),
        ];
        assert!(morans_i(&tiny, 50, 1).is_err());
    }

    #[test]
    fn organ_shares_on_simulated_corpus_mostly_flat() {
        // The simulator plants *state-level* anomalies, not regional
        // ones, so strong positive spatial autocorrelation should be the
        // exception, not the rule.
        let run = crate::testsupport::shared_run();
        let mut significant = 0;
        for organ in Organ::ALL {
            let m = organ_morans_i(&run.regions, organ, 100, 9).unwrap();
            if m.significant_at(0.01) {
                significant += 1;
            }
        }
        assert!(significant <= 2, "{significant} organs spatially clustered");
    }
}
