//! The fault-tolerant streaming front-half.
//!
//! [`run_faulted_stream`] pipelines **simulator → keyword filter →
//! geocode admission → sensor** over bounded [`std::sync::mpsc`]
//! channels, one stage per thread, with backpressure: a slow stage
//! blocks its upstream sender instead of buffering unboundedly.
//!
//! Resilience is layered in front of and behind the channels:
//!
//! * the **source** stage drives a [`FaultyStreamApi`], which hands it
//!   encoded byte frames in either wire version; the stage sniffs the
//!   version of each frame and **parses** it
//!   ([`decode_any`], or [`BatchFrame::decode_views`] on the
//!   zero-copy path), reconnects with deterministic
//!   exponential backoff (on a [`VirtualClock`] — no wall-clock
//!   sleeping), and pushes decoded tweets through a [`Resequencer`]
//!   that restores id order and deduplicates both injected duplicates
//!   and the replayed overlap window after every reconnect. Tweets
//!   travel the inter-stage channels in **batches** (`Vec<Tweet>`), so
//!   a v2 frame carrying 64 tweets costs one channel send, not 64;
//! * **unparseable frames** (classified by
//!   [`FrameError`]:
//!   truncated, bad checksum, bad magic, bad payload) trigger a
//!   consumer-forced reconnect so the backfill window redelivers the
//!   intact frame; a frame that stays unparseable past the retry
//!   budget is abandoned — the **verbatim damaged bytes** go to the
//!   dead-letter log — and counted as coverage gap;
//! * the **geocode admission** stage calls a fallible
//!   [`LocationService`] with per-call retry/backoff; when the service
//!   stays down past the budget, tweets **park** in a bounded FIFO side
//!   queue and are re-resolved — in arrival order, ahead of new
//!   arrivals — once the service recovers, so delivery order into the
//!   sensor is never perturbed;
//! * the **sensor** stage ingests on the caller's thread into an
//!   [`IncrementalSensor`], whose id-idempotent `ingest` is the final
//!   dedup backstop.
//!
//! Every fault, retry, drop, queue depth and coverage gap is counted
//! through `donorpulse-obs` (catalog: `docs/OBSERVABILITY.md`). The key
//! invariant, asserted in `tests/faulted_stream.rs`: with retries
//! enabled and all faults recoverable, the post-stream snapshot is
//! **byte-identical** to the clean batch pipeline's artifacts, and
//! `stream_gap_tweets_total` is zero. Admission control deliberately
//! gates *delivery*, not *resolution*: the sensor derives locations
//! from the same [`Geocoder`] as the batch pipeline, so resilience
//! machinery can never perturb the characterization itself.

use crate::campaign::CampaignSet;
use crate::checkpoint::{DeadLetter, DeadLetterLog};
use crate::incremental::IncrementalSensor;
use crate::pipeline::RunMetrics;
use donorpulse_geo::service::{GeoServiceError, LocationService};
use donorpulse_geo::Geocoder;
use donorpulse_obs::MetricsRegistry;
use donorpulse_twitter::fault::{Delivery, FaultConfig, FaultStats, FaultyStreamApi};
use donorpulse_twitter::time::VirtualClock;
use donorpulse_twitter::wire::{
    decode_any, frame_version, BatchFrame, FrameError, WireMode, WIRE_VERSION_V2,
};
use donorpulse_twitter::{Tweet, TweetId, TweetView, TwitterSimulation, UserId};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{mpsc, Arc};
use std::thread;

/// Deterministic truncated-exponential backoff schedule, with optional
/// seeded jitter so a consumer group doesn't thundering-herd.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Attempts before giving up on one operation.
    pub max_attempts: u32,
    /// Virtual delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Ceiling on a single backoff delay, in milliseconds.
    pub max_ms: u64,
    /// Jitter amplitude as a permille fraction of each delay (0 = no
    /// jitter, 1000 = up to +100%). The jitter is *not* random at run
    /// time: it is a hash of `(jitter_seed, consumer_id, attempt)`, so
    /// a given consumer always retries on the same schedule while
    /// distinct consumers desynchronize.
    pub jitter_permille: u64,
    /// Seed mixed into the jitter hash — pass the run seed so reruns
    /// reproduce the exact same retry timeline.
    pub jitter_seed: u64,
    /// This consumer's identity within the group (shard id). Two
    /// consumers with identical schedules but different ids land on
    /// different jittered delays.
    pub consumer_id: u64,
}

/// SplitMix64 finalizer — the jitter hash.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RetryPolicy {
    /// The un-jittered delay before retry number `attempt` (0-based):
    /// `min(base · 2^attempt, max)`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        self.base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_ms)
    }

    /// The delay actually slept: `backoff_ms` plus a deterministic
    /// jitter in `[0, backoff · jitter_permille / 1000]` derived from
    /// `(jitter_seed, consumer_id, attempt)`. With `jitter_permille`
    /// of 0 (the default) this is exactly [`RetryPolicy::backoff_ms`].
    pub fn jittered_backoff_ms(&self, attempt: u32) -> u64 {
        let base = self.backoff_ms(attempt);
        if self.jitter_permille == 0 {
            return base;
        }
        let span = base.saturating_mul(self.jitter_permille) / 1_000;
        if span == 0 {
            return base;
        }
        let h = splitmix64(
            self.jitter_seed
                ^ self.consumer_id.wrapping_mul(0xD6E8_FEB8_6659_FD93)
                ^ ((attempt as u64) << 32),
        );
        base.saturating_add(h % (span + 1))
    }

    /// The same schedule re-keyed for another consumer in the group.
    pub fn for_consumer(self, consumer_id: u64) -> Self {
        RetryPolicy {
            consumer_id,
            ..self
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_ms: 50,
            max_ms: 5_000,
            jitter_permille: 0,
            jitter_seed: 0,
            consumer_id: 0,
        }
    }
}

/// Restores tweet-id order and drops redeliveries.
///
/// The stream promises at-least-once delivery with bounded disorder
/// (adjacent swaps, replayed backfill windows). The resequencer holds
/// up to `depth` tweets in an ordered pending buffer and releases the
/// smallest ids first; anything at or below the emission high-water
/// mark — an injected duplicate or a replayed overlap record — is
/// dropped and counted.
///
/// ```
/// use donorpulse_core::stream_consumer::Resequencer;
/// use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};
///
/// let t = |id: u64| Tweet {
///     id: TweetId(id),
///     user: UserId(0),
///     created_at: SimInstant(id),
///     text: String::new(),
///     geo: None,
/// };
/// let mut seq = Resequencer::new(2);
/// let mut out = Vec::new();
/// seq.push(t(1), &mut out); // swapped pair arrives 1, 0
/// seq.push(t(0), &mut out);
/// seq.push(t(0), &mut out); // replayed duplicate
/// seq.flush(&mut out);
/// let ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
/// assert_eq!(ids, vec![0, 1]);
/// assert_eq!(seq.duplicates_dropped(), 1);
/// ```
#[derive(Debug)]
pub struct Resequencer {
    depth: usize,
    pending: BTreeMap<TweetId, Tweet>,
    last_emitted: Option<TweetId>,
    duplicates_dropped: u64,
}

impl Resequencer {
    /// A resequencer tolerating `depth` tweets of disorder.
    pub fn new(depth: usize) -> Self {
        Resequencer {
            depth: depth.max(1),
            pending: BTreeMap::new(),
            last_emitted: None,
            duplicates_dropped: 0,
        }
    }

    /// True when a delivery with this id would be accepted (not a
    /// redelivery of something emitted or already pending).
    fn accepts(&self, id: TweetId) -> bool {
        !self.last_emitted.is_some_and(|hw| id <= hw) && !self.pending.contains_key(&id)
    }

    /// Releases the smallest pending ids into `out` until the buffer
    /// is back within its disorder depth.
    fn spill(&mut self, out: &mut Vec<Tweet>) {
        while self.pending.len() > self.depth {
            let (&id, _) = self.pending.iter().next().expect("pending non-empty");
            let tweet = self.pending.remove(&id).expect("present");
            self.last_emitted = Some(id);
            out.push(tweet);
        }
    }

    /// Offers one delivery; ready tweets are appended to `out` in id
    /// order.
    pub fn push(&mut self, tweet: Tweet, out: &mut Vec<Tweet>) {
        if !self.accepts(tweet.id) {
            self.duplicates_dropped += 1;
            return;
        }
        self.pending.insert(tweet.id, tweet);
        self.spill(out);
    }

    /// Offers one *borrowed* delivery straight off the v2 decoder.
    ///
    /// Same semantics as [`Resequencer::push`], but the view is only
    /// materialized into an owned [`Tweet`] when it is actually
    /// accepted — an injected duplicate or a replayed overlap record
    /// is dropped without allocating anything. This is the zero-copy
    /// stream path's dedup gate.
    pub fn push_view(&mut self, view: &TweetView<'_>, out: &mut Vec<Tweet>) {
        if !self.accepts(view.id) {
            self.duplicates_dropped += 1;
            return;
        }
        self.pending.insert(view.id, view.to_tweet());
        self.spill(out);
    }

    /// Drains everything still pending (end of stream), in id order.
    pub fn flush(&mut self, out: &mut Vec<Tweet>) {
        while let Some((&id, _)) = self.pending.iter().next() {
            let tweet = self.pending.remove(&id).expect("present");
            self.last_emitted = Some(id);
            out.push(tweet);
        }
    }

    /// Redeliveries dropped so far.
    pub fn duplicates_dropped(&self) -> u64 {
        self.duplicates_dropped
    }

    /// Highest id emitted so far.
    pub fn high_water(&self) -> Option<TweetId> {
        self.last_emitted
    }
}

/// Configuration for [`run_faulted_stream`].
#[derive(Debug, Clone)]
pub struct StreamPipelineConfig {
    /// Capacity of each inter-stage channel (backpressure bound).
    pub channel_capacity: usize,
    /// Disorder tolerance of the source [`Resequencer`].
    pub reorder_depth: usize,
    /// Retry schedule for reconnects and malformed-record recovery.
    pub source_retry: RetryPolicy,
    /// Retry schedule for individual geocoding calls.
    pub geo_retry: RetryPolicy,
    /// Capacity of the geocode park queue; arrivals beyond it while the
    /// service is down are dropped (counted as coverage gap).
    pub park_capacity: usize,
    /// Retry budget for the final park-queue drain at end of stream.
    pub final_drain_attempts: u32,
    /// Observability registry (pass [`MetricsRegistry::enabled`] to
    /// collect the fault/retry/gap counters).
    pub metrics: MetricsRegistry,
    /// Wire mode the source requests from the platform adapter:
    /// [`WireMode::V1`] (one frame per tweet) or [`WireMode::V2`]
    /// (batched frames). Artifacts are byte-identical either way.
    pub wire: WireMode,
    /// On v2 frames, decode through borrowed [`TweetView`]s and only
    /// materialize owned tweets the resequencer accepts — the
    /// zero-copy path. Ignored for v1 frames (their decode is a
    /// single record either way).
    pub borrowed_decode: bool,
    /// The campaigns this run senses for. The endpoint filters the
    /// firehose by their union; each consumer re-matches admitted text
    /// per campaign and feeds one sensor per campaign. Defaults to the
    /// built-in organ-donation singleton, which reproduces the
    /// pre-campaign pipeline exactly.
    pub campaigns: Arc<CampaignSet>,
}

impl Default for StreamPipelineConfig {
    fn default() -> Self {
        StreamPipelineConfig {
            channel_capacity: 256,
            reorder_depth: 8,
            source_retry: RetryPolicy::default(),
            geo_retry: RetryPolicy {
                max_attempts: 6,
                ..RetryPolicy::default()
            },
            park_capacity: 4_096,
            final_drain_attempts: 64,
            metrics: MetricsRegistry::disabled(),
            // Batched frames have been the soak default since PR 7/8;
            // v1 remains available as the compatibility mode.
            wire: WireMode::v2(),
            borrowed_decode: false,
            campaigns: Arc::new(CampaignSet::default_single()),
        }
    }
}

/// Everything a faulted streaming run produces.
pub struct FaultedStreamRun<'a> {
    /// The primary campaign's sensor after the stream ended — snapshot
    /// it for artifacts. For the default run this is the organ-donation
    /// sensor, exactly as before campaigns existed.
    pub sensor: IncrementalSensor<'a>,
    /// One sensor per non-primary campaign, in campaign-set order
    /// (`campaigns.extras()`). Empty for a single-campaign run.
    pub extra_sensors: Vec<IncrementalSensor<'a>>,
    /// Fault counters from the stream adapter.
    pub fault_stats: FaultStats,
    /// Observability snapshot (empty with a disabled registry).
    pub metrics: RunMetrics,
    /// On-topic tweets the clean stream would have delivered.
    pub expected_tweets: u64,
    /// Tweets that reached the sensor.
    pub delivered_tweets: u64,
    /// True when the source gave up reconnecting (retry budget
    /// exhausted) before the stream ended.
    pub source_aborted: bool,
    /// Tweets still parked (unresolvable) when the stream ended.
    pub parked_at_end: u64,
    /// Everything the run abandoned — persistently corrupt records and
    /// tweets dropped past every park/retry budget — in a replayable
    /// log (source abandonments first, then admission-stage ones in
    /// arrival order). Empty in recoverable runs.
    pub dead_letters: DeadLetterLog,
}

/// What the source stage reports back after its thread joins.
pub(crate) struct SourceOutcome {
    pub(crate) stats: FaultStats,
    pub(crate) aborted: bool,
    /// Records abandoned at the source (persistently corrupt past the
    /// reconnect budget), in abandonment order.
    pub(crate) dead: Vec<DeadLetter>,
}

/// The per-class decode-failure counter a [`FrameError`] lands in
/// (catalog: `docs/OBSERVABILITY.md`).
fn wire_error_metric(err: &FrameError) -> &'static str {
    match err {
        FrameError::Truncated { .. } => "wire_truncated_total",
        FrameError::BadChecksum { .. } => "wire_bad_checksum_total",
        FrameError::BadMagic => "wire_bad_magic_total",
        FrameError::BadPayload(_) => "wire_bad_payload_total",
    }
}

/// Reconnects with truncated-exponential backoff on a virtual clock.
/// Returns `false` when the retry budget is exhausted.
fn reconnect_with_backoff(
    stream: &mut FaultyStreamApi<'_>,
    policy: &RetryPolicy,
    clock: &mut VirtualClock,
    metrics: &MetricsRegistry,
) -> bool {
    let attempts = metrics.counter("stream_reconnect_attempts_total");
    let backoff = metrics.counter("stream_backoff_virtual_ms_total");
    for attempt in 0..policy.max_attempts {
        let delay = policy.jittered_backoff_ms(attempt);
        clock.advance_ms(delay);
        backoff.add(delay);
        attempts.incr();
        if stream.reconnect() {
            return true;
        }
    }
    false
}

/// The source stage: drives the faulted stream, reconnects, recovers
/// malformed records, resequences, and feeds the filter stage.
///
/// With `resume_after` set, the stream seeks past every tweet at or
/// below that id before the first delivery — resume does not replay
/// the already-checkpointed prefix.
pub(crate) fn pump_source(
    sim: &TwitterSimulation,
    faults: FaultConfig,
    config: &StreamPipelineConfig,
    resume_after: Option<TweetId>,
    tx: mpsc::SyncSender<Vec<Tweet>>,
) -> SourceOutcome {
    let metrics = &config.metrics;
    let mut stream = FaultyStreamApi::connect(sim, config.campaigns.endpoint_filter(), faults)
        .with_wire(config.wire);
    if let Some(hw) = resume_after {
        stream.resume_after(hw);
    }
    let mut reseq = Resequencer::new(config.reorder_depth);
    let mut clock = VirtualClock::new();
    let mut ready: Vec<Tweet> = Vec::new();

    let delivered = metrics.counter("stream_deliveries_total");
    let malformed = metrics.counter("stream_malformed_total");
    let abandoned = metrics.counter("stream_malformed_abandoned_total");
    let gap = metrics.counter("stream_gap_tweets_total");
    let frames_total = metrics.counter("wire_frames_total");
    let frames_decoded = metrics.counter("wire_frames_decoded_total");
    let wire_bytes = metrics.counter("wire_bytes_total");
    let v2_frames = metrics.counter("wire_v2_frames_total");
    let v2_tweets = metrics.counter("wire_v2_batch_tweets_total");
    let batch_sends = metrics.counter("stream_batch_sends_total");

    // Budget for re-requesting a record that arrived corrupt. Fresh
    // stream progress (an id above anything seen) refills it, so a
    // persistently corrupt record exhausts it and is abandoned rather
    // than reconnect-looping forever.
    let corrupt_budget_full = config.source_retry.max_attempts;
    let mut corrupt_budget = corrupt_budget_full;
    let mut max_seen: Option<TweetId> = None;
    let mut aborted = false;
    let mut dead: Vec<DeadLetter> = Vec::new();
    let dead_total = metrics.counter("dead_letter_total");

    'pump: loop {
        match stream.next_delivery() {
            Delivery::Frame(bytes) => {
                delivered.incr();
                frames_total.incr();
                wire_bytes.add(bytes.len() as u64);
                let is_v2 = frame_version(&bytes) == Some(WIRE_VERSION_V2);
                ready.clear();
                // Decode, version-sniffed: borrowed views on the
                // zero-copy path (duplicates die before allocating),
                // owned tweets otherwise. Either way every decoded
                // id refills the corrupt budget when it makes fresh
                // stream progress, exactly as the v1 path did.
                let parsed: Result<u64, FrameError> = if is_v2 && config.borrowed_decode {
                    BatchFrame::decode_views(&bytes).map(|views| {
                        for view in &views {
                            if max_seen.map_or(true, |m| view.id > m) {
                                max_seen = Some(view.id);
                                corrupt_budget = corrupt_budget_full;
                            }
                            reseq.push_view(view, &mut ready);
                        }
                        views.len() as u64
                    })
                } else {
                    decode_any(&bytes).map(|tweets| {
                        let n = tweets.len() as u64;
                        for tweet in tweets {
                            if max_seen.map_or(true, |m| tweet.id > m) {
                                max_seen = Some(tweet.id);
                                corrupt_budget = corrupt_budget_full;
                            }
                            reseq.push(tweet, &mut ready);
                        }
                        n
                    })
                };
                match parsed {
                    Ok(n) => {
                        frames_decoded.incr();
                        if is_v2 {
                            v2_frames.incr();
                            v2_tweets.add(n);
                        }
                        if !ready.is_empty() {
                            batch_sends.incr();
                            if tx.send(std::mem::take(&mut ready)).is_err() {
                                break 'pump;
                            }
                        }
                    }
                    Err(err) => {
                        malformed.incr();
                        metrics.counter(wire_error_metric(&err)).incr();
                        if corrupt_budget > 0 {
                            // Force a reconnect: the replayed backfill
                            // window redelivers the frame, intact if
                            // the damage was transient.
                            corrupt_budget -= 1;
                            if !reconnect_with_backoff(
                                &mut stream,
                                &config.source_retry,
                                &mut clock,
                                metrics,
                            ) {
                                aborted = true;
                                break 'pump;
                            }
                        } else {
                            // Past the budget: the frame is broken at
                            // the source. Abandon the verbatim bytes
                            // to the dead-letter log and move on.
                            abandoned.incr();
                            gap.incr();
                            dead_total.incr();
                            dead.push(DeadLetter::Frame(bytes));
                            corrupt_budget = corrupt_budget_full;
                        }
                    }
                }
            }
            Delivery::Disconnected => {
                if !reconnect_with_backoff(&mut stream, &config.source_retry, &mut clock, metrics) {
                    aborted = true;
                    break 'pump;
                }
            }
            Delivery::End => break 'pump,
        }
    }
    ready.clear();
    reseq.flush(&mut ready);
    if !ready.is_empty() {
        batch_sends.incr();
        let _ = tx.send(std::mem::take(&mut ready));
    }
    drop(tx);

    let stats = stream.stats();
    metrics
        .counter("stream_disconnects_total")
        .add(stats.disconnects);
    metrics
        .counter("stream_reconnects_total")
        .add(stats.reconnects);
    metrics
        .counter("stream_reconnect_failures_total")
        .add(stats.reconnect_failures);
    metrics
        .counter("stream_replayed_tweets_total")
        .add(stats.replayed);
    metrics
        .counter("stream_duplicates_dropped_total")
        .add(reseq.duplicates_dropped());
    metrics
        .counter("stream_reordered_total")
        .add(stats.reordered);
    metrics
        .counter("stream_skipped_tweets_total")
        .add(stats.skipped);
    gap.add(stats.skipped);
    metrics
        .gauge("stream_source_aborted")
        .set(u64::from(aborted));
    SourceOutcome {
        stats,
        aborted,
        dead,
    }
}

/// What [`replay_dead_letters`] did with each log entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Tweets the sensor ingested fresh during replay.
    pub tweets_replayed: u64,
    /// Dead frames that decoded after all — the damage spared the
    /// payload-relevant bytes enough for a later tool, or the log was
    /// written by a version whose budget abandoned intact frames.
    /// Counted inside `tweets_replayed` when ingested fresh.
    pub frames_recovered: u64,
    /// Dead frames that still fail to decode; they stay lost.
    pub frames_undecodable: u64,
    /// Entries the sensor had already seen (id-idempotent dedup).
    pub duplicates: u64,
}

/// Feeds a dead-letter log back through a sensor, in log order.
///
/// Tweet entries ingest directly; frame entries go through
/// [`decode_any`] first — the log preserves damaged bytes verbatim in
/// whatever wire version they arrived, so replay must sniff just like
/// the live source does — and frames that still fail to decode are
/// counted, not retried: a damaged frame cannot be repaired offline.
/// A recovered v2 batch replays every tweet it carried. The sensor's
/// id-idempotent `ingest` makes replay safe to run against a sensor
/// that already absorbed some of the entries. `tests/sharding.rs`
/// asserts that replaying a degraded run's log restores clean
/// coverage; `repro replay-dead-letters` is the operator-facing
/// wrapper.
pub fn replay_dead_letters(
    sensor: &mut IncrementalSensor<'_>,
    log: &DeadLetterLog,
) -> ReplayReport {
    replay_dead_letters_matching(sensor, log, |_| true)
}

/// [`replay_dead_letters`], restricted to tweets a campaign matcher
/// accepts — the per-campaign replay a multi-tenant run needs, since
/// one shared dead-letter log holds the union of every campaign's
/// abandonments. Entries the predicate rejects are other campaigns'
/// business and are neither ingested nor counted (a recovered frame
/// still counts as recovered even when none of its tweets belong to
/// this campaign). With an always-true predicate this *is*
/// `replay_dead_letters`, because a single-campaign log only ever
/// holds that campaign's tweets.
pub fn replay_dead_letters_matching(
    sensor: &mut IncrementalSensor<'_>,
    log: &DeadLetterLog,
    accepts: impl Fn(&str) -> bool,
) -> ReplayReport {
    let mut report = ReplayReport::default();
    let ingest = |sensor: &mut IncrementalSensor<'_>, tweet: &Tweet, report: &mut ReplayReport| {
        if !accepts(&tweet.text) {
            return;
        }
        if sensor.ingest(tweet) {
            report.tweets_replayed += 1;
        } else {
            report.duplicates += 1;
        }
    };
    for entry in log.entries() {
        match entry {
            DeadLetter::Tweet(t) => ingest(sensor, t, &mut report),
            DeadLetter::Frame(bytes) => match decode_any(bytes) {
                Ok(tweets) => {
                    report.frames_recovered += 1;
                    for t in &tweets {
                        ingest(sensor, t, &mut report);
                    }
                }
                Err(_) => {
                    report.frames_undecodable += 1;
                }
            },
        }
    }
    report
}

/// The geocode admission stage's state: a fallible service call with
/// retries in front of a bounded FIFO park queue. Shared with
/// `core::shard`, where each worker owns one.
pub(crate) struct GeoAdmission<'s> {
    pub(crate) service: &'s (dyn LocationService + Sync),
    /// Borrowed profile lookup — returns a `&str` into the platform's
    /// user table, so the admission hot loop never clones a profile
    /// string per tweet.
    pub(crate) profile_of: Box<dyn Fn(UserId) -> Option<&'s str> + 's>,
    pub(crate) policy: RetryPolicy,
    pub(crate) park: VecDeque<Tweet>,
    pub(crate) park_capacity: usize,
    pub(crate) peak_depth: usize,
    pub(crate) clock: VirtualClock,
    pub(crate) metrics: MetricsRegistry,
    /// Tweets abandoned by this stage (park overflow), in order.
    pub(crate) dead: Vec<DeadLetter>,
}

impl<'s> GeoAdmission<'s> {
    /// Attempts to resolve one tweet's author, retrying with backoff.
    /// `true` means the service answered (whatever the resolution).
    fn try_locate(&mut self, tweet: &Tweet, attempts: u32) -> bool {
        let failures = self.metrics.counter("geo_lookup_failures_total");
        let retries = self.metrics.counter("geo_lookup_retries_total");
        let backoff = self.metrics.counter("geo_backoff_virtual_ms_total");
        let latency = self.metrics.counter("geo_latency_virtual_ms_total");
        let profile = (self.profile_of)(tweet.user);
        for attempt in 0..attempts {
            match self.service.locate_user(profile, tweet.geo) {
                Ok(resp) => {
                    self.clock.advance_ms(resp.latency_ms);
                    latency.add(resp.latency_ms);
                    return true;
                }
                Err(err) => {
                    failures.incr();
                    if let GeoServiceError::Timeout { waited_ms } = err {
                        self.clock.advance_ms(waited_ms);
                        latency.add(waited_ms);
                    }
                    let delay = self.policy.jittered_backoff_ms(attempt);
                    self.clock.advance_ms(delay);
                    backoff.add(delay);
                    retries.incr();
                }
            }
        }
        false
    }

    /// Drains the park queue front-first while the service answers,
    /// appending admitted tweets to `out`. Stops at the first tweet the
    /// retry budget cannot resolve — order into the sensor is FIFO.
    pub(crate) fn drain(&mut self, attempts: u32, out: &mut Vec<Tweet>) {
        while let Some(front) = self.park.front() {
            let front = front.clone();
            if self.try_locate(&front, attempts) {
                self.park.pop_front();
                out.push(front);
            } else {
                self.metrics.counter("geo_budget_exhausted_total").incr();
                break;
            }
        }
    }

    /// Admits one arrival through the park queue (FIFO: parked tweets
    /// re-resolve ahead of it). An arrival past the park capacity is
    /// abandoned to the dead-letter log, not silently dropped.
    pub(crate) fn admit(&mut self, tweet: Tweet, out: &mut Vec<Tweet>) {
        if self.park.len() >= self.park_capacity {
            self.metrics.counter("geo_parked_dropped_total").incr();
            self.metrics.counter("stream_gap_tweets_total").incr();
            self.metrics.counter("dead_letter_total").incr();
            self.dead.push(DeadLetter::Tweet(tweet));
            return;
        }
        self.park.push_back(tweet);
        self.peak_depth = self.peak_depth.max(self.park.len());
        self.drain(self.policy.max_attempts, out);
    }

    /// End of stream: everything still parked is unresolvable —
    /// abandon it to the dead-letter log (in arrival order) and return
    /// how many tweets that was. Never call this at a checkpoint:
    /// residue there is saved, not abandoned.
    pub(crate) fn abandon_leftovers(&mut self) -> u64 {
        let n = self.park.len() as u64;
        let dead_total = self.metrics.counter("dead_letter_total");
        for t in self.park.drain(..) {
            dead_total.incr();
            self.dead.push(DeadLetter::Tweet(t));
        }
        n
    }
}

/// Runs the full fault-tolerant streaming front-half over a simulated
/// platform and returns the sensor plus fault accounting.
///
/// `geocoder` is what the *sensor* resolves locations with (identical
/// to the batch pipeline's — this is what makes clean-vs-recovered
/// byte-identity structural); `service` is the fallible geocoding
/// dependency the admission stage must survive. Pass the same
/// [`Geocoder`] as both to run fault-free admission.
pub fn run_faulted_stream<'a>(
    sim: &'a TwitterSimulation,
    geocoder: &'a Geocoder,
    service: &(dyn LocationService + Sync),
    faults: FaultConfig,
    config: StreamPipelineConfig,
) -> FaultedStreamRun<'a> {
    let metrics = config.metrics.clone();
    metrics
        .gauge("stream_channel_capacity")
        .set(config.channel_capacity as u64);
    metrics
        .gauge("stream_reorder_depth")
        .set(config.reorder_depth as u64);

    let (src_tx, src_rx) = mpsc::sync_channel::<Vec<Tweet>>(config.channel_capacity);
    let (filt_tx, filt_rx) = mpsc::sync_channel::<Vec<Tweet>>(config.channel_capacity);
    let (geo_tx, geo_rx) = mpsc::sync_channel::<Vec<Tweet>>(config.channel_capacity);

    let campaigns = Arc::clone(&config.campaigns);
    let profile_of = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    };
    let mut sensor = IncrementalSensor::with_extractor(
        geocoder,
        profile_of,
        campaigns.primary().extractor().clone(),
    );
    let mut extra_sensors: Vec<IncrementalSensor<'a>> = campaigns
        .extras()
        .iter()
        .map(|c| IncrementalSensor::with_extractor(geocoder, profile_of, c.extractor().clone()))
        .collect();

    let (outcome, parked_at_end, delivered_tweets, dead_letters) = thread::scope(|scope| {
        let source = scope.spawn({
            let config = &config;
            move || {
                let mut span = config.metrics.stage("stream_source");
                let outcome = pump_source(sim, faults, config, None, src_tx);
                span.set_items(outcome.stats.delivered);
                span.finish();
                outcome
            }
        });

        let filter = scope.spawn({
            let metrics = metrics.clone();
            let campaigns = Arc::clone(&campaigns);
            move || {
                let mut span = metrics.stage("stream_filter");
                let rejected = metrics.counter("consumer_filter_rejected_total");
                let passed = metrics.counter("consumer_filter_passed_total");
                let batch_sends = metrics.counter("stream_batch_sends_total");
                // Per-campaign admission counters exist only once a
                // manifest is in play, so the default single-tenant
                // run's metric snapshot stays byte-identical.
                let matched: Option<Vec<_>> = (!campaigns.is_default_single()).then(|| {
                    campaigns
                        .campaigns()
                        .iter()
                        .map(|c| metrics.counter(c.metric_name("matched_total")))
                        .collect()
                });
                let mut n = 0u64;
                for mut batch in src_rx {
                    n += batch.len() as u64;
                    // Defense in depth: the endpoint already union-
                    // filtered, so rejects here indicate upstream
                    // corruption slipping through as "intact".
                    batch.retain(|tweet| {
                        let mask = campaigns.mask_of(&tweet.text);
                        if mask != 0 {
                            passed.incr();
                            if let Some(matched) = &matched {
                                for (i, handle) in matched.iter().enumerate() {
                                    if mask & (1 << i) != 0 {
                                        handle.incr();
                                    }
                                }
                            }
                            true
                        } else {
                            rejected.incr();
                            false
                        }
                    });
                    if !batch.is_empty() {
                        batch_sends.incr();
                        if filt_tx.send(batch).is_err() {
                            break;
                        }
                    }
                }
                span.set_items(n);
                span.finish();
            }
        });

        let geo = scope.spawn({
            let metrics = metrics.clone();
            let campaigns = Arc::clone(&campaigns);
            let geo_policy = config.geo_retry;
            let park_capacity = config.park_capacity;
            let final_drain_attempts = config.final_drain_attempts;
            move || {
                let mut span = metrics.stage("stream_geocode");
                let mut admission = GeoAdmission {
                    service,
                    profile_of: Box::new(|id: UserId| {
                        sim.users()
                            .get(id.0 as usize)
                            .map(|u| u.profile_location.as_str())
                    }),
                    policy: geo_policy,
                    park: VecDeque::new(),
                    park_capacity,
                    peak_depth: 0,
                    clock: VirtualClock::new(),
                    metrics: metrics.clone(),
                    dead: Vec::new(),
                };
                let batch_sends = metrics.counter("stream_batch_sends_total");
                let single = campaigns.len() == 1;
                let mut out: Vec<Tweet> = Vec::new();
                let mut n = 0u64;
                'geo: for batch in filt_rx {
                    n += batch.len() as u64;
                    out.clear();
                    for tweet in batch {
                        // Only primary-class traffic rides the fallible
                        // enrichment gate: the service's failure schedule
                        // is pure in its call index, and the park queue
                        // is bounded, so letting extra tenants' tweets
                        // through it would shift the primary's schedule
                        // and displace its parked tweets — breaking the
                        // byte-identity guarantee (docs/CAMPAIGNS.md).
                        // Extra-only tweets are admitted directly; their
                        // sensors resolve locations with the same
                        // infallible sensor-side geocoder either way.
                        if single || campaigns.primary().matches(&tweet.text) {
                            admission.admit(tweet, &mut out);
                        } else {
                            out.push(tweet);
                        }
                    }
                    if !out.is_empty() {
                        batch_sends.incr();
                        if geo_tx.send(std::mem::take(&mut out)).is_err() {
                            break 'geo;
                        }
                    }
                }
                // End of stream: give parked tweets a recovery-sized
                // retry budget before declaring them unresolvable.
                out.clear();
                admission.drain(final_drain_attempts, &mut out);
                if !out.is_empty() {
                    batch_sends.incr();
                    let _ = geo_tx.send(std::mem::take(&mut out));
                }
                let parked = admission.abandon_leftovers();
                metrics.gauge("geo_parked_depth").set(parked);
                metrics
                    .gauge("geo_parked_peak_depth")
                    .set(admission.peak_depth as u64);
                metrics.counter("stream_gap_tweets_total").add(parked);
                span.set_items(n);
                span.finish();
                (parked, admission.dead)
            }
        });

        // Sensor stage on the caller thread. Throughput counters keep
        // their single-tenant meaning by tracking the primary campaign;
        // extra campaigns get their own `campaign_<name>_*` series.
        let mut span = metrics.stage("stream_sensor");
        let ingested = metrics.counter("sensor_ingested_total");
        let mut delivered = 0u64;
        if campaigns.len() == 1 {
            // Single-tenant fast path: every admitted tweet belongs to
            // the one campaign, so batches go straight down without
            // re-matching.
            for batch in geo_rx {
                let fresh = sensor.ingest_batch(&batch);
                delivered += fresh;
                ingested.add(fresh);
            }
        } else {
            let camp_ingested: Vec<_> = campaigns
                .campaigns()
                .iter()
                .map(|c| metrics.counter(c.metric_name("ingested_total")))
                .collect();
            let mut routed: Vec<Vec<Tweet>> = vec![Vec::new(); campaigns.len()];
            for batch in geo_rx {
                for buf in &mut routed {
                    buf.clear();
                }
                // Membership is a pure function of the text, so it is
                // re-derived here instead of riding the wire.
                for tweet in batch {
                    let mask = campaigns.mask_of(&tweet.text);
                    for (i, buf) in routed.iter_mut().enumerate() {
                        if mask & (1 << i) != 0 {
                            buf.push(tweet.clone());
                        }
                    }
                }
                let fresh = sensor.ingest_batch(&routed[0]);
                delivered += fresh;
                ingested.add(fresh);
                camp_ingested[0].add(fresh);
                for (i, extra) in extra_sensors.iter_mut().enumerate() {
                    camp_ingested[i + 1].add(extra.ingest_batch(&routed[i + 1]));
                }
            }
        }
        metrics
            .counter("sensor_duplicates_ignored_total")
            .add(sensor.duplicates_ignored());
        span.set_items(delivered);
        span.finish();

        let outcome = source.join().expect("source stage panicked");
        filter.join().expect("filter stage panicked");
        let (parked, geo_dead) = geo.join().expect("geocode stage panicked");
        let mut letters = DeadLetterLog::new();
        for d in outcome.dead.iter().cloned().chain(geo_dead) {
            letters.push(d);
        }
        (outcome, parked, delivered, letters)
    });

    // Tenant-imbalance gauges: how unevenly the shared firehose pass
    // splits across campaigns (permille of total per-campaign ingests).
    if !campaigns.is_default_single() {
        let totals: Vec<u64> = std::iter::once(sensor.tweets_seen())
            .chain(extra_sensors.iter().map(|s| s.tweets_seen()))
            .collect();
        let sum: u64 = totals.iter().sum();
        if sum > 0 {
            let mut lo = u64::MAX;
            let mut hi = 0u64;
            for (campaign, total) in campaigns.campaigns().iter().zip(&totals) {
                let share = total * 1000 / sum;
                metrics
                    .gauge(campaign.metric_name("share_permille"))
                    .set(share);
                lo = lo.min(share);
                hi = hi.max(share);
            }
            metrics.gauge("campaign_imbalance_permille").set(hi - lo);
        }
    }

    FaultedStreamRun {
        sensor,
        extra_sensors,
        fault_stats: outcome.stats,
        metrics: metrics.snapshot(),
        expected_tweets: sim.on_topic_len() as u64,
        delivered_tweets,
        source_aborted: outcome.aborted,
        parked_at_end,
        dead_letters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_twitter::SimInstant;

    fn tweet(id: u64) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(0),
            created_at: SimInstant(id),
            text: String::new(),
            geo: None,
        }
    }

    #[test]
    fn backoff_is_truncated_exponential() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_ms: 50,
            max_ms: 1_000,
            ..RetryPolicy::default()
        };
        let delays: Vec<u64> = (0..6).map(|a| p.backoff_ms(a)).collect();
        assert_eq!(delays, vec![50, 100, 200, 400, 800, 1_000]);
        // Huge attempt numbers must not overflow.
        assert_eq!(p.backoff_ms(u32::MAX), 1_000);
        // With jitter off, the jittered delay IS the base delay — the
        // PR 3 single-consumer timeline is unchanged.
        assert_eq!(p.jittered_backoff_ms(3), p.backoff_ms(3));
    }

    #[test]
    fn jittered_backoff_desynchronizes_identical_schedules() {
        let schedule = RetryPolicy {
            max_attempts: 8,
            base_ms: 100,
            max_ms: 10_000,
            jitter_permille: 500,
            jitter_seed: 0xD0_0D,
            consumer_id: 0,
        };
        let a = schedule.for_consumer(0);
        let b = schedule.for_consumer(1);
        let delays_a: Vec<u64> = (0..8).map(|at| a.jittered_backoff_ms(at)).collect();
        let delays_b: Vec<u64> = (0..8).map(|at| b.jittered_backoff_ms(at)).collect();
        // Same schedule, different consumer: the herd splits up.
        assert_ne!(delays_a, delays_b, "two shards must not retry in lockstep");
        // Deterministic: the same consumer always sleeps the same.
        let replay: Vec<u64> = (0..8).map(|at| a.jittered_backoff_ms(at)).collect();
        assert_eq!(delays_a, replay);
        // Bounded: base ≤ jittered ≤ base + base·permille/1000.
        for (attempt, &d) in delays_a.iter().enumerate() {
            let base = a.backoff_ms(attempt as u32);
            assert!(d >= base && d <= base + base / 2, "attempt {attempt}: {d}");
        }
        // A different seed re-draws every consumer's jitter.
        let reseeded = RetryPolicy {
            jitter_seed: 0xBEEF,
            ..a
        };
        assert_ne!(
            delays_a,
            (0..8)
                .map(|at| reseeded.jittered_backoff_ms(at))
                .collect::<Vec<u64>>()
        );
    }

    #[test]
    fn resequencer_restores_swapped_order() {
        let mut seq = Resequencer::new(4);
        let mut out = Vec::new();
        for id in [1u64, 0, 2, 4, 3, 5] {
            seq.push(tweet(id), &mut out);
        }
        seq.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(seq.duplicates_dropped(), 0);
    }

    #[test]
    fn resequencer_drops_replayed_window() {
        let mut seq = Resequencer::new(2);
        let mut out = Vec::new();
        for id in 0..10u64 {
            seq.push(tweet(id), &mut out);
        }
        // Reconnect replays 6..10, then fresh ids continue.
        for id in 6..12u64 {
            seq.push(tweet(id), &mut out);
        }
        seq.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, (0..12).collect::<Vec<u64>>());
        assert_eq!(
            seq.duplicates_dropped(),
            4,
            "replay of 6..10: 8,9 pending, 6,7 emitted — all dropped"
        );
    }

    #[test]
    fn flush_emits_held_tweets_in_id_order_at_shutdown() {
        // Regression: shard workers shut down mid-disorder, so flush
        // must sort whatever is still pending — not emit it in arrival
        // order — and advance the high-water mark past all of it.
        let mut seq = Resequencer::new(8);
        let mut out = Vec::new();
        for id in [7u64, 3, 5, 1, 6, 2] {
            seq.push(tweet(id), &mut out);
        }
        assert!(out.is_empty(), "all pending: disorder within depth");
        seq.flush(&mut out);
        let ids: Vec<u64> = out.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 5, 6, 7]);
        assert_eq!(seq.high_water(), Some(TweetId(7)));
        // Post-flush, a replay of anything emitted is still a dup.
        seq.push(tweet(5), &mut out);
        assert_eq!(seq.duplicates_dropped(), 1);
        assert_eq!(out.len(), 6, "replayed id 5 was dropped, not re-emitted");
        // An empty flush is a no-op.
        let before = out.len();
        seq.flush(&mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn push_view_has_push_semantics_exactly() {
        let mut owned = Resequencer::new(2);
        let mut viewed = Resequencer::new(2);
        let mut out_owned = Vec::new();
        let mut out_viewed = Vec::new();
        for id in [1u64, 0, 0, 2, 4, 3, 3, 5] {
            let t = tweet(id);
            let view = TweetView {
                id: t.id,
                user: t.user,
                created_at: t.created_at,
                text: &t.text,
                geo: t.geo,
            };
            owned.push(t.clone(), &mut out_owned);
            viewed.push_view(&view, &mut out_viewed);
        }
        owned.flush(&mut out_owned);
        viewed.flush(&mut out_viewed);
        assert_eq!(out_owned, out_viewed);
        assert_eq!(owned.duplicates_dropped(), viewed.duplicates_dropped());
        assert_eq!(owned.high_water(), viewed.high_water());
    }

    #[test]
    fn resequencer_emission_is_eager_past_depth() {
        let mut seq = Resequencer::new(2);
        let mut out = Vec::new();
        seq.push(tweet(0), &mut out);
        seq.push(tweet(1), &mut out);
        assert!(out.is_empty(), "held back within depth");
        seq.push(tweet(2), &mut out);
        assert_eq!(out.len(), 1, "depth exceeded releases the smallest");
        assert_eq!(out[0].id, TweetId(0));
    }
}
