//! `core::serve` — the always-on sensor daemon with an ETag-cached
//! HTTP query front-end.
//!
//! The batch pipeline answers "what did the corpus look like?" once,
//! after the fact; the ROADMAP's north star is a sensor that answers
//! "what does it look like *right now*?" for as long as the stream
//! runs. [`run_serve_daemon`] wires that up from parts that already
//! exist:
//!
//! * **Ingest** is the sharded, checkpointed consumer group
//!   ([`run_sharded_stream`]) running unmodified on its own threads.
//! * **Snapshots** are epoch-consistent cuts: a watcher thread polls
//!   the checkpoint store for the newest epoch complete across every
//!   shard ([`latest_complete_epoch`]), merges the per-shard
//!   [`SensorExport`]s, and swaps the result in behind an `Arc`.
//!   Queries never see a half-ingested state — only marker-aligned
//!   cuts, exactly what a resumed run would restore.
//! * **The HTTP layer** is dependency-free HTTP/1.1 over a std
//!   [`TcpListener`] and a bounded worker pool. Every response
//!   rendered from a snapshot carries the snapshot's FNV fingerprint
//!   ([`SensorExport::fingerprint`]) as a strong `ETag`;
//!   `If-None-Match` hits answer `304 Not Modified` without touching
//!   the analytics at all, and `200` bodies come from a per-endpoint
//!   rendered-body cache that is invalidated only when the
//!   fingerprint advances.
//! * **Analytics** reuse the batch back-half verbatim:
//!   [`analyze_located_corpus`] turns a snapshot into the same
//!   [`PipelineRun`] the batch pipeline produces, so `/report` serves
//!   the batch pipeline's bytes (memoized per fingerprint — at most
//!   one full analysis per published snapshot, shared by every
//!   endpoint).
//!
//! Endpoints: `GET /healthz`, `GET /metrics`, `GET /report`,
//! `GET /risk`, `GET /attention/state/{state}`,
//! `GET /attention/organ/{organ}`, `POST /shutdown`. The full
//! reference, including the consistency model and a curl walkthrough,
//! lives in `docs/SERVING.md`.
//!
//! Shutdown drains: ingest always runs to the end of the stream, the
//! final marker flushes a closing checkpoint cut
//! ([`crate::shard::ShardConfig::checkpoint_final`]), and the daemon
//! reports the closing fingerprint — a served run remains resumable
//! and verifiable exactly like a CLI run.
//!
//! [`run_loadgen`] is the matching seeded closed-loop load generator
//! (`repro loadgen`, `scripts/bench_serve.sh`), so "heavy traffic" is
//! a gated number rather than a hope.

use crate::campaign::CampaignSet;
use crate::checkpoint::{latest_complete_epoch, CheckpointStore, SensorCheckpoint};
use crate::incremental::{IncrementalSensor, SensorExport};
use crate::pipeline::{analyze_located_corpus, LocatedCorpus, PipelineConfig, PipelineRun};
use crate::report::PaperReport;
use crate::shard::{
    resolve_shards, run_sharded_stream, ShardConfig, ShardServices, ShardedStreamRun,
};
use crate::{CoreError, Result};
use donorpulse_geo::service::LocationService;
use donorpulse_geo::{Geocoder, UsState};
use donorpulse_obs::MetricsRegistry;
use donorpulse_text::Organ;
use donorpulse_twitter::fault::FaultConfig;
use donorpulse_twitter::{TwitterSimulation, UserId};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// Byte ceiling for the request line; longer lines answer `400`.
const MAX_REQUEST_LINE: usize = 4096;
/// Byte ceiling for a single header line.
const MAX_HEADER_LINE: usize = 8192;
/// Header-count ceiling per request.
const MAX_HEADERS: usize = 64;
/// Request bodies beyond this are refused (no endpoint needs one).
const MAX_BODY: usize = 64 * 1024;
/// Pending-connection queue between the acceptor and the worker pool.
const ACCEPT_QUEUE: usize = 256;
/// Per-connection socket timeout: an idle keep-alive connection is
/// closed after this long rather than pinning a worker forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// Converts any displayable error into a [`CoreError::Serve`].
fn serve_err(e: impl std::fmt::Display) -> CoreError {
    CoreError::Serve(e.to_string())
}

/// The strong `ETag` value for a snapshot fingerprint (quoted 16-digit
/// hex, e.g. `"00c0ffee00c0ffee"`).
fn etag_of(fingerprint: u64) -> String {
    format!("\"{fingerprint:016x}\"")
}

// ---------------------------------------------------------------------
// HTTP request parsing.
// ---------------------------------------------------------------------

/// One parsed HTTP/1.x request head (bodies are read and discarded —
/// no endpoint consumes one).
#[derive(Debug, Clone, PartialEq, Eq)]
struct HttpRequest {
    method: String,
    target: String,
    if_none_match: Option<String>,
    keep_alive: bool,
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
enum ParsedRequest {
    /// A well-formed request head.
    Complete(HttpRequest),
    /// Clean EOF before any bytes — the peer closed the connection.
    Closed,
    /// A malformed or over-limit request; answer `400` and close.
    Invalid(&'static str),
}

/// Reads one line, refusing lines longer than `limit` bytes. `None`
/// means EOF before any byte; `Err(InvalidData)` (from non-UTF-8
/// input) is reported as an oversized/invalid line via `Err(())` —
/// flattened by the caller into a `400`.
fn read_line_limited<R: BufRead>(
    reader: &mut R,
    limit: usize,
) -> io::Result<std::result::Result<Option<String>, ()>> {
    let mut line = String::new();
    let n = match reader.by_ref().take(limit as u64 + 1).read_line(&mut line) {
        Ok(n) => n,
        Err(e) if e.kind() == io::ErrorKind::InvalidData => return Ok(Err(())),
        Err(e) => return Err(e),
    };
    if n == 0 {
        return Ok(Ok(None));
    }
    if n > limit {
        return Ok(Err(()));
    }
    Ok(Ok(Some(line)))
}

/// Parses one request head off `reader`, enforcing the size limits.
/// I/O errors (timeouts, resets) propagate; protocol violations come
/// back as [`ParsedRequest::Invalid`] so the connection can answer
/// `400` before closing.
fn parse_request<R: BufRead>(reader: &mut R) -> io::Result<ParsedRequest> {
    let line = match read_line_limited(reader, MAX_REQUEST_LINE)? {
        Err(()) => return Ok(ParsedRequest::Invalid("request line too long")),
        Ok(None) => return Ok(ParsedRequest::Closed),
        Ok(Some(line)) => line,
    };
    let line = line.trim_end_matches(['\r', '\n']);
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Ok(ParsedRequest::Invalid("malformed request line")),
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ParsedRequest::Invalid("unsupported protocol version"));
    }
    if !target.starts_with('/') {
        return Ok(ParsedRequest::Invalid("target must be an absolute path"));
    }
    let mut keep_alive = version == "HTTP/1.1";
    let mut if_none_match = None;
    let mut content_length = 0usize;
    let mut count = 0usize;
    loop {
        let header = match read_line_limited(reader, MAX_HEADER_LINE)? {
            Err(()) => return Ok(ParsedRequest::Invalid("header line too long")),
            Ok(None) => return Ok(ParsedRequest::Invalid("connection closed mid-headers")),
            Ok(Some(line)) => line,
        };
        let header = header.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        count += 1;
        if count > MAX_HEADERS {
            return Ok(ParsedRequest::Invalid("too many headers"));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Ok(ParsedRequest::Invalid("malformed header"));
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "if-none-match" => if_none_match = Some(value.to_string()),
            "content-length" => {
                let Ok(n) = value.parse::<usize>() else {
                    return Ok(ParsedRequest::Invalid("bad content-length"));
                };
                content_length = n;
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Ok(ParsedRequest::Invalid("request body too large"));
    }
    if content_length > 0 {
        // Drain the body so a keep-alive connection stays framed.
        io::copy(
            &mut reader.by_ref().take(content_length as u64),
            &mut io::sink(),
        )?;
    }
    Ok(ParsedRequest::Complete(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        if_none_match,
        keep_alive,
    }))
}

// ---------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------

/// A resolved endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Route {
    Healthz,
    Metrics,
    Report,
    Risk,
    AttentionState(UsState),
    AttentionOrgan(Organ),
    /// `GET /campaigns` — the tenant roster with live fingerprints.
    Campaigns,
    /// `GET /campaigns/{name}/...` — a campaign-scoped query. The name
    /// is resolved against the registry at handling time (routing is
    /// static, the roster is not), as is the category segment of
    /// `attention/organ/{category}`.
    Campaign {
        name: String,
        endpoint: CampaignEndpoint,
    },
    Shutdown,
}

/// The query family inside `/campaigns/{name}/`.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CampaignEndpoint {
    Report,
    Risk,
    AttentionState(UsState),
    /// The raw category segment; matched against the campaign's
    /// category names (builtin campaigns: the organ names).
    AttentionCategory(String),
}

/// Why a request did not resolve to a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteError {
    /// No such path (or no such state/organ) — `404`.
    NotFound,
    /// Path exists but not for this method — `405`.
    MethodNotAllowed,
}

/// Parses a state path segment: two-letter abbreviation (any case) or
/// full name with `_`/`+` standing in for spaces.
fn parse_state(segment: &str) -> Option<UsState> {
    let cleaned = segment.replace(['_', '+'], " ");
    UsState::from_abbr(&cleaned).or_else(|| UsState::from_name(&cleaned))
}

/// Parses an organ path segment by canonical name, case-insensitive.
fn parse_organ(segment: &str) -> Option<Organ> {
    Organ::ALL
        .into_iter()
        .find(|o| o.name().eq_ignore_ascii_case(segment))
}

/// Maps `(method, target)` to a [`Route`]. Query strings are ignored;
/// a trailing slash is tolerated.
fn route(method: &str, target: &str) -> std::result::Result<Route, RouteError> {
    let path = target.split('?').next().unwrap_or("");
    let path = if path.len() > 1 {
        path.trim_end_matches('/')
    } else {
        path
    };
    let found = if let Some(segment) = path.strip_prefix("/attention/state/") {
        Route::AttentionState(parse_state(segment).ok_or(RouteError::NotFound)?)
    } else if let Some(segment) = path.strip_prefix("/attention/organ/") {
        Route::AttentionOrgan(parse_organ(segment).ok_or(RouteError::NotFound)?)
    } else if let Some(rest) = path.strip_prefix("/campaigns/") {
        let (name, endpoint) = rest.split_once('/').ok_or(RouteError::NotFound)?;
        if name.is_empty() {
            return Err(RouteError::NotFound);
        }
        let endpoint = if let Some(segment) = endpoint.strip_prefix("attention/state/") {
            CampaignEndpoint::AttentionState(parse_state(segment).ok_or(RouteError::NotFound)?)
        } else if let Some(segment) = endpoint.strip_prefix("attention/organ/") {
            if segment.is_empty() {
                return Err(RouteError::NotFound);
            }
            CampaignEndpoint::AttentionCategory(segment.to_string())
        } else {
            match endpoint {
                "report" => CampaignEndpoint::Report,
                "risk" => CampaignEndpoint::Risk,
                _ => return Err(RouteError::NotFound),
            }
        };
        Route::Campaign {
            name: name.to_string(),
            endpoint,
        }
    } else {
        match path {
            "/healthz" => Route::Healthz,
            "/metrics" => Route::Metrics,
            "/report" => Route::Report,
            "/risk" => Route::Risk,
            "/campaigns" => Route::Campaigns,
            "/shutdown" => Route::Shutdown,
            _ => return Err(RouteError::NotFound),
        }
    };
    let method_ok = match found {
        Route::Shutdown => method == "POST",
        _ => method == "GET",
    };
    if !method_ok {
        return Err(RouteError::MethodNotAllowed);
    }
    Ok(found)
}

// ---------------------------------------------------------------------
// Snapshots and the hub.
// ---------------------------------------------------------------------

/// An epoch-consistent, immutable view of the sensor: the merged
/// per-shard exports at one checkpoint-marker cut, plus the cut's
/// identity (epoch) and content fingerprint (the `ETag`).
///
/// A multi-campaign daemon holds one export (and one fingerprint) per
/// campaign from the *same* cut, so every tenant's answers are mutually
/// consistent: they describe the same moment of the shared stream.
struct ServeSnapshot {
    epoch: u64,
    /// Primary campaign fingerprint — the `ETag` of the legacy
    /// single-tenant endpoints.
    fingerprint: u64,
    /// Primary campaign export.
    export: SensorExport,
    /// Non-primary campaigns' `(export, fingerprint)` pairs in
    /// [`CampaignSet::extras`] order. Empty for a single-tenant daemon.
    extras: Vec<(SensorExport, u64)>,
}

impl ServeSnapshot {
    /// Campaign `idx`'s view of this cut (0 = primary).
    fn campaign(&self, idx: usize) -> Option<(&SensorExport, u64)> {
        if idx == 0 {
            Some((&self.export, self.fingerprint))
        } else {
            self.extras.get(idx - 1).map(|(e, f)| (e, *f))
        }
    }

    /// Every campaign fingerprint, primary first.
    fn fingerprints(&self) -> Vec<u64> {
        std::iter::once(self.fingerprint)
            .chain(self.extras.iter().map(|(_, f)| *f))
            .collect()
    }
}

/// A rendered response body, cached per `(fingerprint, path)`.
struct RenderedBody {
    content_type: &'static str,
    bytes: Vec<u8>,
}

/// Shared state between the watcher, the ingest thread, and the HTTP
/// workers: the current snapshot, the rendered-body cache, the
/// memoized analysis, and the lifecycle flags.
struct SnapshotHub {
    metrics: MetricsRegistry,
    current: RwLock<Option<Arc<ServeSnapshot>>>,
    bodies: Mutex<HashMap<(u64, String), Arc<RenderedBody>>>,
    /// Memoized analyses keyed by campaign index; each entry remembers
    /// the fingerprint it was computed for, so the memo is at most one
    /// analysis per campaign per published snapshot.
    analysis: Mutex<HashMap<usize, (u64, Arc<PipelineRun>)>>,
    shutdown: AtomicBool,
    ingest_done: AtomicBool,
}

impl SnapshotHub {
    fn new(metrics: MetricsRegistry) -> Self {
        Self {
            metrics,
            current: RwLock::new(None),
            bodies: Mutex::new(HashMap::new()),
            analysis: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            ingest_done: AtomicBool::new(false),
        }
    }

    fn current(&self) -> Option<Arc<ServeSnapshot>> {
        self.current.read().expect("snapshot lock").clone()
    }

    /// Publishes a snapshot if it advances the current epoch; rendered
    /// bodies for fingerprints no campaign currently carries are
    /// dropped (the only invalidation path — within one fingerprint,
    /// caches live forever).
    fn publish(&self, snap: ServeSnapshot) -> bool {
        let fingerprints = snap.fingerprints();
        let epoch = snap.epoch;
        {
            let mut cur = self.current.write().expect("snapshot lock");
            if let Some(existing) = cur.as_ref() {
                if epoch <= existing.epoch {
                    return false;
                }
            }
            *cur = Some(Arc::new(snap));
        }
        self.bodies
            .lock()
            .expect("body cache lock")
            .retain(|(fp, _), _| fingerprints.contains(fp));
        self.metrics
            .counter("serve_snapshots_published_total")
            .incr();
        self.metrics.gauge("serve_epoch").set(epoch);
        true
    }

    /// The memoized full analysis for one campaign's view of a
    /// snapshot — computed at most once per (campaign, fingerprint),
    /// shared by every endpoint that needs it.
    fn analysis(
        &self,
        snap: &Arc<ServeSnapshot>,
        campaign_idx: usize,
        ctx: &AnalysisContext<'_>,
    ) -> Result<Arc<PipelineRun>> {
        let (export, fingerprint) = snap
            .campaign(campaign_idx)
            .ok_or_else(|| serve_err(format!("campaign index {campaign_idx} out of range")))?;
        let mut guard = self.analysis.lock().expect("analysis lock");
        if let Some((fp, run)) = guard.get(&campaign_idx) {
            if *fp == fingerprint {
                return Ok(Arc::clone(run));
            }
        }
        let run = Arc::new(compute_analysis(export, campaign_idx, ctx)?);
        self.metrics.counter("serve_analyses_total").incr();
        guard.insert(campaign_idx, (fingerprint, Arc::clone(&run)));
        Ok(run)
    }

    fn cached_body(&self, fingerprint: u64, key: &str) -> Option<Arc<RenderedBody>> {
        self.bodies
            .lock()
            .expect("body cache lock")
            .get(&(fingerprint, key.to_string()))
            .cloned()
    }

    fn insert_body(&self, fingerprint: u64, key: String, body: Arc<RenderedBody>) {
        self.bodies
            .lock()
            .expect("body cache lock")
            .insert((fingerprint, key), body);
    }
}

/// Everything needed to reconstruct the batch pipeline's artifacts
/// from a snapshot: the geocoder and profile lookup the sensor was
/// running with, the analytic knobs, and the firehose size for the
/// report's accounting lines.
struct AnalysisContext<'a> {
    geocoder: &'a Geocoder,
    profile_of: &'a (dyn Fn(UserId) -> Option<String> + Sync),
    analytics: PipelineConfig,
    firehose_tweets: u64,
    /// The tenant roster this daemon senses (primary first).
    campaigns: Arc<CampaignSet>,
}

/// Rebuilds the batch pipeline's [`PipelineRun`] from one campaign's
/// export. The located corpus, user→state map, and collection counters
/// all come from a restored sensor (proven byte-identical to the batch
/// front-half by the incremental-sensor tests); the back-half is the
/// shared [`analyze_located_corpus`]. Mentions were extracted at
/// ingest, so no extractor runs here — but a non-built-in campaign's
/// accumulated counts must ride along explicitly, because the analysis
/// back-half would otherwise re-extract from the text with the paper's
/// organ lexicon and see nothing.
fn compute_analysis(
    export: &SensorExport,
    campaign_idx: usize,
    ctx: &AnalysisContext<'_>,
) -> Result<PipelineRun> {
    let profile_of = ctx.profile_of;
    let campaign = ctx
        .campaigns
        .campaigns()
        .get(campaign_idx)
        .ok_or_else(|| serve_err(format!("campaign index {campaign_idx} out of range")))?;
    let mentions = (!campaign.is_builtin()).then(|| {
        export
            .tracks
            .iter()
            .filter(|(_, t)| t.state.is_some())
            .map(|(&id, t)| (id, t.mentions))
            .collect()
    });
    let sensor = IncrementalSensor::restore(ctx.geocoder, profile_of, export.clone());
    sensor.ensure_nonempty()?;
    let usa = sensor.corpus();
    let user_states = sensor.user_states();
    let collected_tweets = sensor.tweets_seen();
    // The batch pipeline's accounting note: users that never resolved,
    // split into confidently-foreign vs merely unlocatable. A
    // geo-locked track with no state was voided by a foreign geotag;
    // otherwise the profile parse decides.
    let (mut non_us_users, mut unlocated_users) = (0u64, 0u64);
    for (user, track) in &export.tracks {
        if track.state.is_none() {
            if track.geo_locked {
                non_us_users += 1;
            } else {
                let profile = profile_of(*user);
                if ctx.geocoder.locate(profile.as_deref(), None).non_us {
                    non_us_users += 1;
                } else {
                    unlocated_users += 1;
                }
            }
        }
    }
    analyze_located_corpus(
        LocatedCorpus {
            firehose_tweets: ctx.firehose_tweets,
            collected_tweets,
            usa,
            user_states,
            non_us_users,
            unlocated_users,
            mentions,
        },
        ctx.analytics.clone(),
    )
}

/// Loads and merges the per-shard checkpoints of one complete epoch,
/// one merged export per campaign (primary first). Parked
/// (not-yet-admitted) tweets are deliberately excluded: at the cut
/// they had not reached any sensor, and including them would break
/// the "snapshot = what a resumed run restores" contract.
fn load_cut(
    store: &dyn CheckpointStore,
    shards: usize,
    epoch: u64,
    campaigns: &CampaignSet,
) -> Result<Vec<SensorExport>> {
    let mut merged: Vec<SensorExport> = vec![SensorExport::default(); campaigns.len()];
    for shard in 0..shards as u32 {
        let bytes = store
            .load(shard, epoch)
            .map_err(serve_err)?
            .ok_or_else(|| serve_err(format!("shard {shard} epoch {epoch} missing")))?;
        let ckpt = SensorCheckpoint::decode(&bytes)?;
        // An online re-shard rewrites the layout in place; a probe
        // racing the rewrite can see files from both moduli. Refusing
        // the mix here means the watcher simply retries next tick,
        // after the swap has settled.
        if ckpt.shard_count != shards as u32 {
            return Err(serve_err(format!(
                "cut for shard {shard} was taken with {} shards, expected {shards}",
                ckpt.shard_count
            )));
        }
        if ckpt.campaign_names() != campaigns.names() {
            return Err(serve_err(format!(
                "cut for campaigns {:?} but this daemon senses {:?}",
                ckpt.campaign_names(),
                campaigns.names()
            )));
        }
        merged[0].absorb(ckpt.export)?;
        for (m, section) in merged[1..].iter_mut().zip(ckpt.extra_campaigns) {
            m.absorb(section.export)?;
        }
    }
    Ok(merged)
}

/// Builds the published snapshot from per-campaign merged exports.
fn snapshot_of(epoch: u64, exports: Vec<SensorExport>) -> ServeSnapshot {
    let mut exports = exports.into_iter();
    let export = exports.next().expect("registry has a primary campaign");
    ServeSnapshot {
        epoch,
        fingerprint: export.fingerprint(),
        export,
        extras: exports
            .map(|e| {
                let fp = e.fingerprint();
                (e, fp)
            })
            .collect(),
    }
}

/// The snapshot watcher: polls the store for newer complete epochs and
/// publishes them until ingest finishes (the final cut is published by
/// the ingest thread itself, straight from the merged sensors).
fn watcher_loop(
    hub: &SnapshotHub,
    store: &dyn CheckpointStore,
    shards: usize,
    poll: Duration,
    campaigns: &CampaignSet,
    metrics: &MetricsRegistry,
) {
    let mut published: Option<u64> = None;
    while !hub.ingest_done.load(Ordering::Acquire) {
        // An online re-shard (`--reshard-at`) changes the group's
        // modulus mid-run; the ingest side publishes the live count
        // through the `shard_count` gauge *after* the store holds the
        // new layout, so probing at the gauge's value keeps the
        // daemon answering across the swap. Zero (disabled registry)
        // falls back to the configured count.
        let live = metrics.gauge("shard_count").value();
        let shards_now = if live == 0 { shards } else { live as usize };
        if let Ok(Some(epoch)) = latest_complete_epoch(store, shards_now as u32) {
            if published.map_or(true, |p| epoch > p) {
                // A compaction racing this load just means we retry at
                // the next tick with a newer epoch.
                if let Ok(exports) = load_cut(store, shards_now, epoch, campaigns) {
                    hub.publish(snapshot_of(epoch, exports));
                    published = Some(epoch);
                }
            }
        }
        thread::sleep(poll);
    }
}

// ---------------------------------------------------------------------
// Request handling.
// ---------------------------------------------------------------------

/// One response, ready to write.
struct Reply {
    status: u16,
    body: Arc<RenderedBody>,
    etag: Option<String>,
}

impl Reply {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Reply {
            status,
            body: Arc::new(RenderedBody {
                content_type: "text/plain; charset=utf-8",
                bytes: body.into().into_bytes(),
            }),
            etag: None,
        }
    }

    fn json(status: u16, body: String) -> Self {
        Reply {
            status,
            body: Arc::new(RenderedBody {
                content_type: "application/json",
                bytes: body.into_bytes(),
            }),
            etag: None,
        }
    }

    fn not_modified(etag: String) -> Self {
        Reply {
            status: 304,
            body: Arc::new(RenderedBody {
                content_type: "text/plain; charset=utf-8",
                bytes: Vec::new(),
            }),
            etag: Some(etag),
        }
    }
}

/// Standard reason phrase for the status codes this server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// The per-status response counter name.
fn status_counter(status: u16) -> &'static str {
    match status {
        200 => "http_responses_200_total",
        304 => "http_responses_304_total",
        400 => "http_responses_400_total",
        404 => "http_responses_404_total",
        405 => "http_responses_405_total",
        503 => "http_responses_503_total",
        _ => "http_responses_other_total",
    }
}

/// Hand-rolled JSON string field helper (values here are ASCII-safe:
/// state/organ names, hex fingerprints).
fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `{"heart": 0.41, ...}` over the campaign's category slots in slot
/// order. For the builtin campaign the labels are exactly the organ
/// names in canonical order, so the legacy endpoints' bytes are
/// unchanged; custom campaigns print only their declared categories.
fn attention_object(row: &[f64], labels: &[&str]) -> String {
    let mut out = String::from("{");
    for (i, label) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(&mut out, label);
        let _ = write!(out, ": {}", row[i]);
    }
    out.push('}');
    out
}

/// The display label for a category slot: the campaign's declared name
/// when the slot is declared, the organ's canonical name otherwise.
fn slot_label<'l>(labels: &[&'l str], organ: Organ) -> &'l str {
    labels.get(organ.index()).copied().unwrap_or(organ.name())
}

/// Renders the `/risk` body from an analysis.
fn render_risk(run: &PipelineRun, epoch: u64, fingerprint: u64, labels: &[&str]) -> String {
    let mut highlighted: Vec<(UsState, Vec<Organ>)> = run.risk.highlighted().into_iter().collect();
    highlighted.sort_by_key(|&(s, _)| s);
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"alpha\": {}, \"epoch\": {}, \"fingerprint\": \"{:016x}\", \"states_analyzed\": {}, \"highlighted\": [",
        run.risk.alpha,
        epoch,
        fingerprint,
        run.region_k.groups.len()
    );
    for (i, (state, organs)) in highlighted.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"state\": ");
        push_json_str(&mut out, state.abbr());
        out.push_str(", \"name\": ");
        push_json_str(&mut out, state.name());
        out.push_str(", \"organs\": [");
        for (j, organ) in organs.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            push_json_str(&mut out, slot_label(labels, *organ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// Renders the `/attention/state/{state}` body, or `None` when the
/// state has no located users in this snapshot.
fn render_attention_state(
    run: &PipelineRun,
    epoch: u64,
    fingerprint: u64,
    state: UsState,
    labels: &[&str],
) -> Option<String> {
    let i = run.region_k.groups.iter().position(|&g| g == state)?;
    let mut out = String::from("{\"state\": ");
    push_json_str(&mut out, state.abbr());
    out.push_str(", \"name\": ");
    push_json_str(&mut out, state.name());
    let _ = write!(
        out,
        ", \"users\": {}, \"epoch\": {}, \"fingerprint\": \"{:016x}\", \"attention\": {}}}",
        run.region_k.sizes[i],
        epoch,
        fingerprint,
        attention_object(run.region_k.matrix.row(i), labels)
    );
    Some(out)
}

/// Renders the `/attention/organ/{organ}` body (and its
/// campaign-scoped twin, where the "organ" is a category slot), or
/// `None` when no user in this snapshot is dominated by the slot.
fn render_attention_organ(
    run: &PipelineRun,
    epoch: u64,
    fingerprint: u64,
    organ: Organ,
    labels: &[&str],
) -> Option<String> {
    let i = run.organ_k.groups.iter().position(|&g| g == organ)?;
    let mut out = String::from("{\"organ\": ");
    push_json_str(&mut out, slot_label(labels, organ));
    let _ = write!(
        out,
        ", \"users\": {}, \"epoch\": {}, \"fingerprint\": \"{:016x}\", \"attention\": {}}}",
        run.organ_k.sizes[i],
        epoch,
        fingerprint,
        attention_object(run.organ_k.matrix.row(i), labels)
    );
    Some(out)
}

/// Handles a routed request against the current snapshot.
fn handle(route: Route, req: &HttpRequest, hub: &SnapshotHub, ctx: &AnalysisContext<'_>) -> Reply {
    match route {
        Route::Healthz => {
            let mut out = String::from("{\"status\": \"ok\", ");
            match hub.current() {
                Some(s) => {
                    let _ = write!(
                        out,
                        "\"epoch\": {}, \"fingerprint\": \"{:016x}\", ",
                        s.epoch, s.fingerprint
                    );
                }
                None => out.push_str("\"epoch\": null, \"fingerprint\": null, "),
            }
            let _ = write!(
                out,
                "\"ingest_done\": {}}}",
                hub.ingest_done.load(Ordering::Acquire)
            );
            Reply::json(200, out)
        }
        Route::Metrics => Reply::json(200, hub.metrics.snapshot().to_json()),
        Route::Shutdown => Reply::json(200, "{\"shutting_down\": true}".to_string()),
        Route::Campaigns => {
            let snap = hub.current();
            let mut out = String::from("{\"campaigns\": [");
            for (i, campaign) in ctx.campaigns.campaigns().iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\"name\": ");
                push_json_str(&mut out, campaign.name());
                out.push_str(", \"categories\": [");
                for (j, label) in campaign.category_names().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    push_json_str(&mut out, label);
                }
                out.push(']');
                match snap.as_ref().and_then(|s| s.campaign(i)) {
                    Some((_, fp)) => {
                        let _ = write!(out, ", \"fingerprint\": \"{fp:016x}\"");
                    }
                    None => out.push_str(", \"fingerprint\": null"),
                }
                out.push('}');
            }
            match snap {
                Some(s) => {
                    let _ = write!(out, "], \"epoch\": {}}}", s.epoch);
                }
                None => out.push_str("], \"epoch\": null}"),
            }
            Reply::json(200, out)
        }
        Route::Report
        | Route::Risk
        | Route::AttentionState(_)
        | Route::AttentionOrgan(_)
        | Route::Campaign { .. } => {
            // Every snapshot-backed route resolves to a (campaign
            // slot, endpoint, cache key) triple; the legacy endpoints
            // are exactly the primary campaign's.
            let (idx, endpoint, key) = match route {
                Route::Report => (0, CampaignEndpoint::Report, "/report".to_string()),
                Route::Risk => (0, CampaignEndpoint::Risk, "/risk".to_string()),
                Route::AttentionState(s) => (
                    0,
                    CampaignEndpoint::AttentionState(s),
                    format!("/attention/state/{}", s.abbr()),
                ),
                Route::AttentionOrgan(o) => (
                    0,
                    CampaignEndpoint::AttentionCategory(o.name().to_string()),
                    format!("/attention/organ/{}", o.name()),
                ),
                Route::Campaign { name, endpoint } => {
                    let Some(idx) = ctx
                        .campaigns
                        .campaigns()
                        .iter()
                        .position(|c| c.name() == name)
                    else {
                        return Reply::text(404, format!("no campaign named {name:?}\n"));
                    };
                    let key = match &endpoint {
                        CampaignEndpoint::Report => format!("/campaigns/{name}/report"),
                        CampaignEndpoint::Risk => format!("/campaigns/{name}/risk"),
                        CampaignEndpoint::AttentionState(s) => {
                            format!("/campaigns/{name}/attention/state/{}", s.abbr())
                        }
                        CampaignEndpoint::AttentionCategory(c) => format!(
                            "/campaigns/{name}/attention/organ/{}",
                            c.to_ascii_lowercase()
                        ),
                    };
                    (idx, endpoint, key)
                }
                _ => unreachable!("snapshot routes only"),
            };
            let campaign = &ctx.campaigns.campaigns()[idx];
            let labels = campaign.category_names();
            let Some(snap) = hub.current() else {
                return Reply::text(503, "snapshot not ready: no complete epoch yet\n");
            };
            let Some((_, fingerprint)) = snap.campaign(idx) else {
                return Reply::text(503, "snapshot not ready: campaign section missing\n");
            };
            let etag = etag_of(fingerprint);
            if req.if_none_match.as_deref() == Some(etag.as_str()) {
                return Reply::not_modified(etag);
            }
            if let Some(body) = hub.cached_body(fingerprint, &key) {
                hub.metrics.counter("serve_render_cache_hits_total").incr();
                return Reply {
                    status: 200,
                    body,
                    etag: Some(etag),
                };
            }
            hub.metrics
                .counter("serve_render_cache_misses_total")
                .incr();
            let run = match hub.analysis(&snap, idx, ctx) {
                Ok(run) => run,
                Err(e) => return Reply::text(503, format!("analysis unavailable: {e}\n")),
            };
            let rendered = match endpoint {
                CampaignEndpoint::Report => match PaperReport::from_run(&run) {
                    Ok(report) => RenderedBody {
                        content_type: "text/plain; charset=utf-8",
                        bytes: report.render().into_bytes(),
                    },
                    Err(e) => return Reply::text(503, format!("report unavailable: {e}\n")),
                },
                CampaignEndpoint::Risk => RenderedBody {
                    content_type: "application/json",
                    bytes: render_risk(&run, snap.epoch, fingerprint, &labels).into_bytes(),
                },
                CampaignEndpoint::AttentionState(s) => {
                    match render_attention_state(&run, snap.epoch, fingerprint, s, &labels) {
                        Some(body) => RenderedBody {
                            content_type: "application/json",
                            bytes: body.into_bytes(),
                        },
                        None => {
                            return Reply::text(
                                404,
                                format!(
                                    "state {} has no located users in this snapshot\n",
                                    s.abbr()
                                ),
                            )
                        }
                    }
                }
                CampaignEndpoint::AttentionCategory(segment) => {
                    let Some(slot) = labels.iter().position(|l| l.eq_ignore_ascii_case(&segment))
                    else {
                        return Reply::text(
                            404,
                            format!(
                                "campaign {:?} has no category named {segment:?}\n",
                                campaign.name()
                            ),
                        );
                    };
                    let organ = Organ::from_index(slot).expect("category slot within organ range");
                    match render_attention_organ(&run, snap.epoch, fingerprint, organ, &labels) {
                        Some(body) => RenderedBody {
                            content_type: "application/json",
                            bytes: body.into_bytes(),
                        },
                        None => {
                            return Reply::text(
                                404,
                                format!(
                                    "organ {} dominates no user in this snapshot\n",
                                    labels[slot]
                                ),
                            )
                        }
                    }
                }
            };
            let body = Arc::new(rendered);
            hub.insert_body(fingerprint, key, Arc::clone(&body));
            Reply {
                status: 200,
                body,
                etag: Some(etag),
            }
        }
    }
}

/// Writes one response; returns the bytes put on the wire.
fn write_reply(stream: &mut TcpStream, reply: &Reply, keep_alive: bool) -> io::Result<u64> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", reply.status, reason(reply.status));
    let body: &[u8] = if reply.status == 304 {
        &[]
    } else {
        &reply.body.bytes
    };
    let _ = write!(head, "Content-Type: {}\r\n", reply.body.content_type);
    let _ = write!(head, "Content-Length: {}\r\n", body.len());
    if let Some(etag) = &reply.etag {
        let _ = write!(head, "ETag: {etag}\r\n");
    }
    let _ = write!(
        head,
        "Connection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" }
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    Ok((head.len() + body.len()) as u64)
}

/// Serves one connection: keep-alive request loop with per-request
/// accounting. Any I/O error just closes the connection.
fn serve_connection(
    mut stream: TcpStream,
    hub: &SnapshotHub,
    ctx: &AnalysisContext<'_>,
    addr: SocketAddr,
) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    loop {
        match parse_request(&mut reader)? {
            ParsedRequest::Closed => break,
            ParsedRequest::Invalid(why) => {
                hub.metrics.counter("http_requests_total").incr();
                let reply = Reply::text(400, format!("bad request: {why}\n"));
                let bytes = write_reply(&mut stream, &reply, false)?;
                hub.metrics.counter(status_counter(400)).incr();
                hub.metrics.counter("http_bytes_out_total").add(bytes);
                break;
            }
            ParsedRequest::Complete(req) => {
                hub.metrics.counter("http_requests_total").incr();
                let routed = route(&req.method, &req.target);
                let is_shutdown = matches!(routed, Ok(Route::Shutdown));
                let reply = match routed {
                    Ok(r) => handle(r, &req, hub, ctx),
                    Err(RouteError::NotFound) => Reply::text(404, "no such endpoint\n"),
                    Err(RouteError::MethodNotAllowed) => Reply::text(405, "method not allowed\n"),
                };
                let shutting_down = is_shutdown && reply.status == 200;
                let bytes = write_reply(&mut stream, &reply, req.keep_alive)?;
                hub.metrics.counter(status_counter(reply.status)).incr();
                hub.metrics.counter("http_bytes_out_total").add(bytes);
                if shutting_down {
                    hub.shutdown.store(true, Ordering::Release);
                    // Wake the acceptor out of its blocking accept.
                    let _ = TcpStream::connect(addr);
                }
                if !req.keep_alive {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// One worker: pull connections off the shared queue until it closes.
fn worker_loop(
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    hub: &SnapshotHub,
    ctx: &AnalysisContext<'_>,
    addr: SocketAddr,
) {
    loop {
        let conn = {
            let guard = rx.lock().expect("connection queue lock");
            guard.recv()
        };
        let Ok(conn) = conn else { break };
        let _ = serve_connection(conn, hub, ctx, addr);
    }
}

// ---------------------------------------------------------------------
// The daemon.
// ---------------------------------------------------------------------

/// Configuration for [`run_serve_daemon`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port `0` for an ephemeral port (the bound
    /// address is reported through `on_ready`).
    pub addr: String,
    /// HTTP worker threads (clamped to `1..=64`).
    pub workers: usize,
    /// Snapshot-watcher poll interval in milliseconds.
    pub poll_ms: u64,
    /// Analytic knobs for query-time analyses — set this to exactly
    /// the batch pipeline's configuration and `/report` serves the
    /// batch pipeline's bytes. The registry inside is ignored for
    /// serving (analyses run against a disabled registry unless the
    /// caller opts in); live counters ride on the stream registry.
    pub analytics: PipelineConfig,
    /// The ingest configuration ([`run_sharded_stream`]). The default
    /// enables periodic markers and the closing flush
    /// ([`ShardConfig::checkpoint_final`]) — live snapshots require
    /// markers, and a daemon should always leave a resumable store.
    pub shard: ShardConfig,
    /// Front a **process group** instead of in-process shard threads:
    /// ingest goes through [`crate::procgroup::run_proc_group`] with
    /// this spawn recipe, sharing the same durable store the watcher
    /// reads. `None` (the default) keeps shard workers in-process.
    pub procgroup: Option<crate::procgroup::ProcGroupLaunch>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            poll_ms: 2,
            analytics: PipelineConfig::default(),
            shard: ShardConfig {
                checkpoint_every: 512,
                checkpoint_final: true,
                ..ShardConfig::default()
            },
            procgroup: None,
        }
    }
}

/// Everything a finished daemon run produced.
pub struct ServeOutcome<'a> {
    /// The completed ingest run (sensor, fault accounting, epochs) —
    /// exactly what the CLI stream verbs report.
    pub stream: ShardedStreamRun<'a>,
    /// The address the daemon actually bound.
    pub addr: SocketAddr,
    /// Fingerprint of the final sensor state — what a `/report` after
    /// the last publish carried as its `ETag`, and what a resumed run
    /// must reproduce. `None` when ingest was killed mid-run.
    pub closing_fingerprint: Option<u64>,
    /// The last checkpoint epoch written (the closing cut when
    /// [`ShardConfig::checkpoint_final`] is on).
    pub final_epoch: u64,
    /// Final registry snapshot, including the `http_*`/`serve_*`
    /// counters accumulated while serving.
    pub metrics: crate::pipeline::RunMetrics,
}

/// Runs the always-on daemon: sharded checkpointed ingest, the
/// snapshot watcher, and the HTTP front-end, until a `POST /shutdown`
/// arrives (ingest always drains first — shutdown never truncates the
/// stream, and the closing checkpoint cut is flushed before the
/// daemon exits).
///
/// `on_ready` is invoked with the bound address before the first
/// connection is accepted — the CLI prints its `SERVING` line from
/// it, tests learn their ephemeral port.
///
/// The `geocoder`/`service` split follows
/// [`crate::stream_consumer::run_faulted_stream`]: ingest admission
/// survives the (possibly faulty) `service`, while snapshots and
/// analyses resolve through the infallible `geocoder`.
pub fn run_serve_daemon<'a>(
    sim: &'a TwitterSimulation,
    geocoder: &'a Geocoder,
    service: &(dyn LocationService + Sync),
    faults: FaultConfig,
    store: &dyn CheckpointStore,
    config: ServeConfig,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<ServeOutcome<'a>> {
    let shards = resolve_shards(config.shard.shards);
    let workers = config.workers.clamp(1, 64);
    let poll = Duration::from_millis(config.poll_ms.max(1));
    let metrics = config.shard.stream.metrics.clone();
    let listener = TcpListener::bind(config.addr.as_str()).map_err(serve_err)?;
    let addr = listener.local_addr().map_err(serve_err)?;
    metrics.gauge("serve_workers").set(workers as u64);

    let hub = SnapshotHub::new(metrics.clone());
    let profile_of = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    };
    let campaigns = Arc::clone(&config.shard.stream.campaigns);
    let ctx = AnalysisContext {
        geocoder,
        profile_of: &profile_of,
        analytics: config.analytics.clone(),
        firehose_tweets: sim.firehose_len() as u64,
        campaigns: Arc::clone(&campaigns),
    };
    let shard_config = config.shard.clone();
    let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(ACCEPT_QUEUE);
    let conn_rx = Mutex::new(conn_rx);

    on_ready(addr);

    // Ingest runs on *this* thread inside the scope: the finished
    // `ShardedStreamRun` carries the merged sensor (whose profile
    // closure is not `Send`), so it must never cross a thread
    // boundary. Everything that does cross — the listener, the
    // connection sender, shared refs — is `Send`.
    let (stream_run, closing_fingerprint) = thread::scope(|scope| {
        let hub = &hub;
        let ctx = &ctx;

        let watcher_campaigns = &campaigns;
        let watcher_metrics = shard_config.stream.metrics.clone();
        scope.spawn(move || {
            watcher_loop(hub, store, shards, poll, watcher_campaigns, &watcher_metrics)
        });

        let conn_rx = &conn_rx;
        for _ in 0..workers {
            scope.spawn(move || worker_loop(conn_rx, hub, ctx, addr));
        }

        // The acceptor: feed connections to the pool until shutdown,
        // then close the queue so the workers drain and exit.
        scope.spawn(move || {
            for conn in listener.incoming() {
                if hub.shutdown.load(Ordering::Acquire) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if conn_tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            drop(conn_tx);
        });

        let result = match &config.procgroup {
            Some(launch) => crate::procgroup::run_proc_group(
                sim,
                geocoder,
                faults,
                Some(store),
                &launch.spawner,
                crate::procgroup::ProcGroupConfig {
                    shard: shard_config,
                    transport: launch.transport,
                    kill_worker: None,
                    respawn_limit: launch.respawn_limit,
                },
            ),
            None => run_sharded_stream(
                sim,
                geocoder,
                ShardServices::Shared(service),
                faults,
                Some(store),
                shard_config,
            ),
        };
        let out = match result {
            Ok(run) => {
                // Publish the end-of-stream state directly: with the
                // closing marker this equals the final cut; without
                // markers it is the only snapshot the daemon ever gets.
                let closing = run.sensor.as_ref().map(|sensor| {
                    let mut exports = vec![sensor.export()];
                    exports.extend(run.extra_sensors.iter().map(|s| s.export()));
                    let fingerprint = exports[0].fingerprint();
                    let cur = hub.current().map(|c| (c.epoch, c.fingerprint));
                    if cur.map(|(_, fp)| fp) != Some(fingerprint) {
                        let epoch = run.last_epoch.max(cur.map_or(0, |(e, _)| e) + 1);
                        hub.publish(snapshot_of(epoch, exports));
                    }
                    fingerprint
                });
                Ok((run, closing))
            }
            Err(e) => Err(e),
        };
        hub.ingest_done.store(true, Ordering::Release);
        if out.is_err() {
            // A dead ingest pipeline cannot recover; stop serving.
            hub.shutdown.store(true, Ordering::Release);
            let _ = TcpStream::connect(addr);
        }
        // The scope's implicit join keeps serving until `/shutdown`
        // stops the acceptor and the workers drain.
        out
    })?;

    Ok(ServeOutcome {
        final_epoch: stream_run.last_epoch,
        addr,
        closing_fingerprint,
        metrics: metrics.snapshot(),
        stream: stream_run,
    })
}

// ---------------------------------------------------------------------
// Minimal HTTP client (load generator, smoke gates, tests).
// ---------------------------------------------------------------------

/// One response as seen by [`HttpClient`].
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// The `ETag` header, verbatim (quotes included), when present.
    pub etag: Option<String>,
    /// The response body.
    pub body: Vec<u8>,
}

/// A tiny keep-alive HTTP/1.1 client speaking exactly the subset this
/// server emits — enough for the load generator, the CI smoke gate
/// (`repro http-get`), and the integration tests, with no external
/// tooling (`curl`) required.
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<BufReader<TcpStream>>,
}

impl HttpClient {
    /// A client for `addr` with the default 10 s socket timeout.
    pub fn new(addr: SocketAddr) -> Self {
        Self::with_timeout(addr, Duration::from_secs(10))
    }

    /// A client with an explicit socket timeout.
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> Self {
        HttpClient {
            addr,
            timeout,
            conn: None,
        }
    }

    /// `GET path`, optionally conditional on an entity tag.
    pub fn get(&mut self, path: &str, if_none_match: Option<&str>) -> Result<HttpReply> {
        self.request("GET", path, if_none_match)
    }

    /// `POST path` with an empty body.
    pub fn post(&mut self, path: &str) -> Result<HttpReply> {
        self.request("POST", path, None)
    }

    /// Issues one request, reconnecting once if the pooled keep-alive
    /// connection has gone stale.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        if_none_match: Option<&str>,
    ) -> Result<HttpReply> {
        for attempt in 0..2 {
            if self.conn.is_none() {
                let stream =
                    TcpStream::connect_timeout(&self.addr, self.timeout).map_err(serve_err)?;
                stream
                    .set_read_timeout(Some(self.timeout))
                    .map_err(serve_err)?;
                stream
                    .set_write_timeout(Some(self.timeout))
                    .map_err(serve_err)?;
                self.conn = Some(BufReader::new(stream));
            }
            match self.try_request(method, path, if_none_match) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    self.conn = None;
                    if attempt == 1 {
                        return Err(serve_err(e));
                    }
                }
            }
        }
        unreachable!("loop returns on success or second failure")
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        if_none_match: Option<&str>,
    ) -> io::Result<HttpReply> {
        let reader = self.conn.as_mut().expect("connection established");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: donorpulse\r\n");
        if let Some(etag) = if_none_match {
            let _ = write!(head, "If-None-Match: {etag}\r\n");
        }
        head.push_str("Connection: keep-alive\r\n\r\n");
        reader.get_ref().write_all(head.as_bytes())?;

        let mut status_line = String::new();
        if reader.read_line(&mut status_line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before status line",
            ));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let mut etag = None;
        let mut content_length = 0usize;
        let mut close = false;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let line = line.trim_end_matches(['\r', '\n']);
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                match name.trim().to_ascii_lowercase().as_str() {
                    "etag" => etag = Some(value.to_string()),
                    "content-length" => {
                        content_length = value.parse().map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                        })?;
                    }
                    "connection" => close = value.eq_ignore_ascii_case("close"),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        if close {
            self.conn = None;
        }
        Ok(HttpReply { status, etag, body })
    }
}

// ---------------------------------------------------------------------
// Load generator.
// ---------------------------------------------------------------------

/// Configuration for [`run_loadgen`].
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients (clamped to `1..=64`).
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: u64,
    /// Seed for the per-client endpoint mix — the request *sequence*
    /// is reproducible; only timings vary.
    pub seed: u64,
    /// Per-request socket timeout in milliseconds.
    pub timeout_ms: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            clients: 4,
            requests: 2000,
            seed: 0x0D01_07AB,
            timeout_ms: 10_000,
        }
    }
}

/// What the load generator measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests attempted.
    pub requests: u64,
    /// `200` responses.
    pub responses_200: u64,
    /// `304` responses (conditional hits).
    pub responses_304: u64,
    /// Any other status (`404`, `503`, …).
    pub responses_other: u64,
    /// Transport-level failures.
    pub errors: u64,
    /// Wall time for the whole run.
    pub elapsed_nanos: u64,
    /// Median request latency.
    pub p50_nanos: u64,
    /// 99th-percentile request latency.
    pub p99_nanos: u64,
    /// Completed requests per second.
    pub qps: f64,
    /// `304` responses over attempted requests — the ETag cache's hit
    /// rate as observed from the client side.
    pub hit_rate: f64,
}

/// SplitMix64 step — the endpoint-mix RNG.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// States the generator queries (high-population plus the paper's
/// planted-anomaly Kansas).
const LOADGEN_STATES: [&str; 8] = ["KS", "TX", "CA", "NY", "OH", "FL", "WA", "PA"];

/// Weighted endpoint pick: report-heavy, with every endpoint family
/// represented.
fn pick_endpoint(rng: &mut u64) -> String {
    match splitmix_next(rng) % 100 {
        0..=34 => "/report".to_string(),
        35..=54 => "/risk".to_string(),
        55..=74 => {
            let i = (splitmix_next(rng) % LOADGEN_STATES.len() as u64) as usize;
            format!("/attention/state/{}", LOADGEN_STATES[i])
        }
        75..=89 => {
            let i = (splitmix_next(rng) % Organ::ALL.len() as u64) as usize;
            format!("/attention/organ/{}", Organ::ALL[i].name())
        }
        90..=94 => "/healthz".to_string(),
        _ => "/metrics".to_string(),
    }
}

/// Per-client tallies, merged by [`run_loadgen`].
#[derive(Default)]
struct ClientStats {
    requests: u64,
    ok: u64,
    not_modified: u64,
    other: u64,
    errors: u64,
    latencies: Vec<u64>,
}

/// One closed-loop client: issue `requests` requests back to back,
/// remembering the last `ETag` per path and sending it back as
/// `If-None-Match` — the realistic polling-client behaviour the `304`
/// path exists for.
fn loadgen_client(addr: SocketAddr, seed: u64, requests: u64, timeout: Duration) -> ClientStats {
    let mut rng = seed;
    let mut client = HttpClient::with_timeout(addr, timeout);
    let mut etags: HashMap<String, String> = HashMap::new();
    let mut stats = ClientStats {
        latencies: Vec::with_capacity(requests as usize),
        ..ClientStats::default()
    };
    for _ in 0..requests {
        let path = pick_endpoint(&mut rng);
        let inm = etags.get(&path).cloned();
        stats.requests += 1;
        let start = Instant::now();
        match client.get(&path, inm.as_deref()) {
            Ok(reply) => {
                stats.latencies.push(start.elapsed().as_nanos() as u64);
                match reply.status {
                    200 => stats.ok += 1,
                    304 => stats.not_modified += 1,
                    _ => stats.other += 1,
                }
                if let Some(etag) = reply.etag {
                    etags.insert(path, etag);
                }
            }
            Err(_) => stats.errors += 1,
        }
    }
    stats
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Runs the seeded closed-loop load generator against a daemon and
/// aggregates latency percentiles, throughput, and the observed `304`
/// hit rate. Transport failures are counted, never fatal.
pub fn run_loadgen(addr: SocketAddr, config: LoadgenConfig) -> LoadgenReport {
    let clients = config.clients.clamp(1, 64);
    let timeout = Duration::from_millis(config.timeout_ms.max(1));
    let per_client = config.requests / clients as u64;
    let remainder = config.requests % clients as u64;
    let start = Instant::now();
    let stats: Vec<ClientStats> = thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let n = per_client + u64::from((c as u64) < remainder);
                let seed = config
                    .seed
                    .wrapping_add(0x9E37_79B9_7F4A_7C15 * (c as u64 + 1));
                scope.spawn(move || loadgen_client(addr, seed, n, timeout))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen client panicked"))
            .collect()
    });
    let elapsed_nanos = start.elapsed().as_nanos() as u64;
    let mut merged = ClientStats::default();
    for s in stats {
        merged.requests += s.requests;
        merged.ok += s.ok;
        merged.not_modified += s.not_modified;
        merged.other += s.other;
        merged.errors += s.errors;
        merged.latencies.extend(s.latencies);
    }
    merged.latencies.sort_unstable();
    let completed = merged.latencies.len() as u64;
    let qps = if elapsed_nanos > 0 {
        completed as f64 / (elapsed_nanos as f64 / 1e9)
    } else {
        0.0
    };
    LoadgenReport {
        requests: merged.requests,
        responses_200: merged.ok,
        responses_304: merged.not_modified,
        responses_other: merged.other,
        errors: merged.errors,
        elapsed_nanos,
        p50_nanos: percentile(&merged.latencies, 0.50),
        p99_nanos: percentile(&merged.latencies, 0.99),
        qps,
        hit_rate: merged.not_modified as f64 / merged.requests.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> ParsedRequest {
        parse_request(&mut Cursor::new(raw.as_bytes())).expect("no io error on cursor")
    }

    #[test]
    fn parses_minimal_get() {
        let ParsedRequest::Complete(req) = parse("GET /report HTTP/1.1\r\nHost: x\r\n\r\n") else {
            panic!("expected complete request");
        };
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/report");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.if_none_match, None);
    }

    #[test]
    fn captures_if_none_match_and_connection_close() {
        let raw = "GET /risk HTTP/1.1\r\nIf-None-Match: \"00ff\"\r\nConnection: close\r\n\r\n";
        let ParsedRequest::Complete(req) = parse(raw) else {
            panic!("expected complete request");
        };
        assert_eq!(req.if_none_match.as_deref(), Some("\"00ff\""));
        assert!(!req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close() {
        let ParsedRequest::Complete(req) = parse("GET / HTTP/1.0\r\n\r\n") else {
            panic!("expected complete request");
        };
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_request_lines_are_invalid_not_panics() {
        for raw in [
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x HTTP/2\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET relative HTTP/1.1\r\n\r\n",
            "\r\n\r\n",
        ] {
            assert!(
                matches!(parse(raw), ParsedRequest::Invalid(_)),
                "not rejected: {raw:?}"
            );
        }
    }

    #[test]
    fn eof_before_any_byte_is_closed() {
        assert!(matches!(parse(""), ParsedRequest::Closed));
    }

    #[test]
    fn oversized_request_line_rejected() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(parse(&raw), ParsedRequest::Invalid(_)));
    }

    #[test]
    fn oversized_header_rejected() {
        let raw = format!(
            "GET / HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "b".repeat(MAX_HEADER_LINE)
        );
        assert!(matches!(parse(&raw), ParsedRequest::Invalid(_)));
    }

    #[test]
    fn too_many_headers_rejected() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            let _ = write!(raw, "X-H{i}: v\r\n");
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(&raw), ParsedRequest::Invalid(_)));
    }

    #[test]
    fn malformed_header_rejected() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nnocolonhere\r\n\r\n"),
            ParsedRequest::Invalid(_)
        ));
    }

    #[test]
    fn oversized_body_rejected() {
        let raw = format!(
            "POST /shutdown HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(parse(&raw), ParsedRequest::Invalid(_)));
    }

    #[test]
    fn routes_resolve() {
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("GET", "/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/report"), Ok(Route::Report));
        assert_eq!(route("GET", "/report/"), Ok(Route::Report));
        assert_eq!(route("GET", "/risk?x=1"), Ok(Route::Risk));
        assert_eq!(route("POST", "/shutdown"), Ok(Route::Shutdown));
        assert_eq!(
            route("GET", "/attention/state/KS"),
            Ok(Route::AttentionState(UsState::Kansas))
        );
        assert_eq!(
            route("GET", "/attention/state/kansas"),
            Ok(Route::AttentionState(UsState::Kansas))
        );
        assert_eq!(
            route("GET", "/attention/organ/Heart"),
            Ok(Route::AttentionOrgan(Organ::Heart))
        );
    }

    #[test]
    fn unknown_routes_and_methods_rejected() {
        assert_eq!(route("GET", "/nope"), Err(RouteError::NotFound));
        assert_eq!(
            route("GET", "/attention/state/ZZ"),
            Err(RouteError::NotFound)
        );
        assert_eq!(
            route("GET", "/attention/organ/spleen"),
            Err(RouteError::NotFound)
        );
        assert_eq!(route("POST", "/report"), Err(RouteError::MethodNotAllowed));
        assert_eq!(route("GET", "/shutdown"), Err(RouteError::MethodNotAllowed));
        assert_eq!(
            route("DELETE", "/healthz"),
            Err(RouteError::MethodNotAllowed)
        );
    }

    #[test]
    fn etag_is_quoted_hex() {
        assert_eq!(etag_of(0xabc), "\"0000000000000abc\"");
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.50), 50);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn endpoint_mix_is_seeded_and_covers_families() {
        let mut a = 42u64;
        let mut b = 42u64;
        let seq_a: Vec<String> = (0..200).map(|_| pick_endpoint(&mut a)).collect();
        let seq_b: Vec<String> = (0..200).map(|_| pick_endpoint(&mut b)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same request sequence");
        assert!(seq_a.iter().any(|p| p == "/report"));
        assert!(seq_a.iter().any(|p| p == "/risk"));
        assert!(seq_a.iter().any(|p| p.starts_with("/attention/state/")));
        assert!(seq_a.iter().any(|p| p.starts_with("/attention/organ/")));
    }

    #[test]
    fn publish_is_monotone_and_prunes_bodies() {
        let hub = SnapshotHub::new(MetricsRegistry::enabled());
        assert!(hub.publish(ServeSnapshot {
            epoch: 1,
            fingerprint: 10,
            export: SensorExport::default(),
            extras: Vec::new(),
        }));
        hub.insert_body(
            10,
            "/report".to_string(),
            Arc::new(RenderedBody {
                content_type: "text/plain; charset=utf-8",
                bytes: b"old".to_vec(),
            }),
        );
        hub.insert_body(
            20,
            "/campaigns/blood-drive/report".to_string(),
            Arc::new(RenderedBody {
                content_type: "text/plain; charset=utf-8",
                bytes: b"extra".to_vec(),
            }),
        );
        // Stale epoch refused.
        assert!(!hub.publish(ServeSnapshot {
            epoch: 1,
            fingerprint: 11,
            export: SensorExport::default(),
            extras: Vec::new(),
        }));
        assert!(hub.cached_body(10, "/report").is_some());
        // Newer epoch accepted; bodies for fingerprints no campaign
        // still carries vanish, while a surviving extra's body stays.
        assert!(hub.publish(ServeSnapshot {
            epoch: 2,
            fingerprint: 12,
            export: SensorExport::default(),
            extras: vec![(SensorExport::default(), 20)],
        }));
        assert!(hub.cached_body(10, "/report").is_none());
        assert!(hub
            .cached_body(20, "/campaigns/blood-drive/report")
            .is_some());
        assert_eq!(hub.current().unwrap().epoch, 2);
    }

    #[test]
    fn campaign_routes_resolve() {
        assert_eq!(route("GET", "/campaigns"), Ok(Route::Campaigns));
        assert_eq!(
            route("GET", "/campaigns/blood-drive/report"),
            Ok(Route::Campaign {
                name: "blood-drive".to_string(),
                endpoint: CampaignEndpoint::Report,
            })
        );
        assert_eq!(
            route("GET", "/campaigns/blood-drive/risk/"),
            Ok(Route::Campaign {
                name: "blood-drive".to_string(),
                endpoint: CampaignEndpoint::Risk,
            })
        );
        assert_eq!(
            route("GET", "/campaigns/organ-donation/attention/state/KS"),
            Ok(Route::Campaign {
                name: "organ-donation".to_string(),
                endpoint: CampaignEndpoint::AttentionState(UsState::Kansas),
            })
        );
        // Category segments resolve at handle time, against the
        // campaign's declared categories — not against Organ names.
        assert_eq!(
            route("GET", "/campaigns/blood-drive/attention/organ/plasma"),
            Ok(Route::Campaign {
                name: "blood-drive".to_string(),
                endpoint: CampaignEndpoint::AttentionCategory("plasma".to_string()),
            })
        );
        assert_eq!(route("GET", "/campaigns/x"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/campaigns/x/nope"), Err(RouteError::NotFound));
        assert_eq!(
            route("POST", "/campaigns/x/report"),
            Err(RouteError::MethodNotAllowed)
        );
        assert_eq!(
            route("POST", "/campaigns"),
            Err(RouteError::MethodNotAllowed)
        );
    }
}
