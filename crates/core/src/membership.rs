//! Membership-indicator matrices `L` (Eqs. 1 and 2).
//!
//! `L` is an `m × g` 0/1 matrix assigning each user (row of `Û`) to one
//! group. Eq. 1 groups by the user's most-cited organ; Eq. 2 groups by
//! region of residence. Groups that end up empty are dropped — `LᵀL`
//! must be invertible for Eq. 3, and an all-zero column would make it
//! singular (the paper's data simply never exhibits an empty state).

use crate::attention::AttentionMatrix;
use crate::{CoreError, Result};
use donorpulse_geo::UsState;
use donorpulse_linalg::Matrix;
use donorpulse_text::Organ;
use donorpulse_twitter::UserId;
use std::collections::HashMap;

/// A built membership: the indicator matrix plus the meaning of its
/// columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Membership<G> {
    /// Column labels (one per nonempty group).
    pub groups: Vec<G>,
    /// The `m × g` indicator matrix, row order matching `Û`.
    pub matrix: Matrix,
    /// Users per group (column sums).
    pub sizes: Vec<usize>,
}

/// Eq. 1: groups users by their most-cited organ.
///
/// Ties (common at Twitter's 1.88 tweets/user: one kidney mention plus
/// one heart mention is a dead heat) are broken *uniformly* by a hash of
/// the user id rather than by canonical organ order. A first-index
/// tie-break would systematically funnel every tied user into the
/// lowest-indexed organ's group, stripping the other groups of exactly
/// the co-attention signal Fig. 3 measures; the hash keeps the argmax
/// deterministic while leaving the group means unbiased.
pub fn by_dominant_organ(attention: &AttentionMatrix) -> Result<Membership<Organ>> {
    let dominants: Vec<Organ> = attention
        .users()
        .iter()
        .enumerate()
        .map(|(i, id)| dominant_with_fair_ties(attention.matrix().row(i), id.0))
        .collect();
    let mut present: Vec<Organ> = Vec::new();
    for organ in Organ::ALL {
        if dominants.contains(&organ) {
            present.push(organ);
        }
    }
    build(attention.user_count(), present, |i| Some(dominants[i]))
}

/// Argmax over an attention row with hash-of-user tie-breaking.
fn dominant_with_fair_ties(row: &[f64], user_id: u64) -> Organ {
    let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = (0..row.len()).filter(|&j| row[j] == max).collect();
    let pick = if tied.len() == 1 {
        tied[0]
    } else {
        // SplitMix64 finalizer: uniform, deterministic in the user id.
        let mut z = user_id.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        tied[(z % tied.len() as u64) as usize]
    };
    Organ::from_index(pick).expect("row has organ dimension")
}

/// Eq. 2: groups users by their (resolved) state of residence. Users
/// missing from `states` are left out of every group — they do not
/// contribute to the region characterization, exactly like the paper's
/// non-located users.
///
/// Returns the membership and the row indices that were actually
/// assigned (needed to subset `Û` before aggregation).
pub fn by_region(
    attention: &AttentionMatrix,
    states: &HashMap<UserId, UsState>,
) -> Result<(Membership<UsState>, Vec<usize>)> {
    let assigned: Vec<(usize, UsState)> = attention
        .users()
        .iter()
        .enumerate()
        .filter_map(|(i, id)| states.get(id).map(|&s| (i, s)))
        .collect();
    if assigned.is_empty() {
        return Err(CoreError::NoGroups {
            what: "region membership",
        });
    }
    let mut present: Vec<UsState> = Vec::new();
    for &s in UsState::ALL {
        if assigned.iter().any(|&(_, st)| st == s) {
            present.push(s);
        }
    }
    let rows: Vec<usize> = assigned.iter().map(|&(i, _)| i).collect();
    let state_of_subrow: Vec<UsState> = assigned.iter().map(|&(_, s)| s).collect();
    let membership = build(rows.len(), present, |sub| Some(state_of_subrow[sub]))?;
    Ok((membership, rows))
}

/// Builds a membership over `m` rows given each row's group (or `None`
/// to leave the row unassigned).
fn build<G: Copy + PartialEq>(
    m: usize,
    groups: Vec<G>,
    group_of: impl Fn(usize) -> Option<G>,
) -> Result<Membership<G>> {
    if groups.is_empty() || m == 0 {
        return Err(CoreError::NoGroups { what: "membership" });
    }
    let mut matrix = Matrix::zeros(m, groups.len())?;
    let mut sizes = vec![0usize; groups.len()];
    for i in 0..m {
        if let Some(g) = group_of(i) {
            if let Some(col) = groups.iter().position(|&x| x == g) {
                matrix.set(i, col, 1.0);
                sizes[col] += 1;
            }
        }
    }
    if sizes.contains(&0) {
        return Err(CoreError::NoGroups {
            what: "membership (empty group column)",
        });
    }
    Ok(Membership {
        groups,
        matrix,
        sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::extract::MentionCounts;

    fn attention(pairs: &[(u64, Organ)]) -> AttentionMatrix {
        let mut map = HashMap::new();
        for &(id, organ) in pairs {
            let mut mc = MentionCounts::new();
            mc.add(organ, 3);
            map.insert(UserId(id), mc);
        }
        AttentionMatrix::from_mentions(&map).unwrap()
    }

    #[test]
    fn dominant_organ_membership() {
        let am = attention(&[(1, Organ::Heart), (2, Organ::Heart), (3, Organ::Kidney)]);
        let m = by_dominant_organ(&am).unwrap();
        assert_eq!(m.groups, vec![Organ::Heart, Organ::Kidney]);
        assert_eq!(m.sizes, vec![2, 1]);
        assert_eq!(m.matrix.shape(), (3, 2));
        // Every row has exactly one 1.
        for i in 0..3 {
            let s: f64 = m.matrix.row(i).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn region_membership_skips_unlocated() {
        let am = attention(&[(1, Organ::Heart), (2, Organ::Kidney), (3, Organ::Liver)]);
        let mut states = HashMap::new();
        states.insert(UserId(1), UsState::Kansas);
        states.insert(UserId(3), UsState::Kansas);
        // User 2 unlocated.
        let (m, rows) = by_region(&am, &states).unwrap();
        assert_eq!(m.groups, vec![UsState::Kansas]);
        assert_eq!(m.sizes, vec![2]);
        assert_eq!(rows, vec![0, 2]);
    }

    #[test]
    fn region_membership_orders_states_canonically() {
        let am = attention(&[(1, Organ::Heart), (2, Organ::Heart), (3, Organ::Heart)]);
        let mut states = HashMap::new();
        states.insert(UserId(1), UsState::Wyoming);
        states.insert(UserId(2), UsState::Alabama);
        states.insert(UserId(3), UsState::Kansas);
        let (m, _) = by_region(&am, &states).unwrap();
        assert_eq!(
            m.groups,
            vec![UsState::Alabama, UsState::Kansas, UsState::Wyoming]
        );
    }

    #[test]
    fn no_located_users_errors() {
        let am = attention(&[(1, Organ::Heart)]);
        let states = HashMap::new();
        assert!(matches!(
            by_region(&am, &states),
            Err(CoreError::NoGroups { .. })
        ));
    }

    #[test]
    fn ltl_is_diagonal_group_sizes() {
        let am = attention(&[(1, Organ::Heart), (2, Organ::Heart), (3, Organ::Kidney)]);
        let m = by_dominant_organ(&am).unwrap();
        let ltl = m.matrix.transpose().matmul(&m.matrix).unwrap();
        assert_eq!(ltl.get(0, 0), 2.0);
        assert_eq!(ltl.get(1, 1), 1.0);
        assert_eq!(ltl.get(0, 1), 0.0);
    }
}
