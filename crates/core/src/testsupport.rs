//! Shared fixtures for the unit tests: one reasonably sized pipeline
//! run, computed once. Statistical shape assertions (heart tops most
//! states, Kansas kidney highlighted, …) need thousands of located
//! users; rebuilding that corpus per test would dominate the suite.

use crate::pipeline::{Pipeline, PipelineConfig, PipelineRun};
use std::sync::OnceLock;

/// A ~130k-user (25% of paper scale) run with the paper's planted
/// anomalies, shared by every test that checks statistical shape. The
/// scale matters: the planted relative-risk anomalies are ~1.5× effects
/// on states holding ~1% of the population, which are only reliably
/// significant with thousands of located users (the paper had 71,947).
pub(crate) fn shared_run() -> &'static PipelineRun {
    static RUN: OnceLock<PipelineRun> = OnceLock::new();
    RUN.get_or_init(|| {
        let mut config = PipelineConfig::paper_scaled(0.25);
        config.generator.seed = 20_150_422;
        config.user_clustering.k_min = 6;
        config.user_clustering.k_max = 14;
        config.user_clustering.silhouette_sample = 500;
        Pipeline::new().run(config).expect("shared pipeline run")
    })
}
