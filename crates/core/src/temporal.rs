//! Temporal awareness sensing — the paper's conclusion in code.
//!
//! The paper closes with: *"our findings suggest that the proposed
//! approach has the potential to characterize the awareness of organ
//! donation in real-time."* This module supplies that capability: a
//! per-day organ-attention time series over a corpus and a burst
//! detector that flags days whose organ share deviates from its trailing
//! baseline — the signal a viral transplant story or a donation campaign
//! leaves in the stream. The simulator can plant such events
//! ([`donorpulse_twitter::genmodel::AwarenessEvent`]), so detection is
//! tested against ground truth.

use crate::{CoreError, Result};
use donorpulse_text::extract::OrganExtractor;
use donorpulse_text::Organ;
use donorpulse_twitter::{Corpus, COLLECTION_DAYS};
use serde::Serialize;

/// Daily organ-mention counts over the collection window.
#[derive(Debug, Clone, Serialize)]
pub struct DailySeries {
    /// `counts[day][organ]` — mention counts.
    counts: Vec<[u64; Organ::COUNT]>,
}

impl DailySeries {
    /// Builds the series from a corpus (one pass, one extractor).
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let extractor = OrganExtractor::new();
        let mut counts = vec![[0u64; Organ::COUNT]; COLLECTION_DAYS as usize];
        for t in corpus.tweets() {
            let day = t.created_at.day() as usize;
            if day >= counts.len() {
                continue; // outside the window; defensive
            }
            let mc = extractor.extract(&t.text);
            for organ in Organ::ALL {
                counts[day][organ.index()] += mc.count(organ) as u64;
            }
        }
        Self { counts }
    }

    /// Number of days covered.
    pub fn days(&self) -> usize {
        self.counts.len()
    }

    /// Mention count of `organ` on `day`.
    pub fn count(&self, day: usize, organ: Organ) -> u64 {
        self.counts[day][organ.index()]
    }

    /// Total mentions on `day`.
    pub fn total(&self, day: usize) -> u64 {
        self.counts[day].iter().sum()
    }

    /// Share of `organ` on `day`, `None` when the day has no mentions.
    pub fn share(&self, day: usize, organ: Organ) -> Option<f64> {
        let total = self.total(day);
        (total > 0).then(|| self.count(day, organ) as f64 / total as f64)
    }

    /// The full share series of one organ (`NaN`-free: empty days yield
    /// `None`).
    pub fn share_series(&self, organ: Organ) -> Vec<Option<f64>> {
        (0..self.days()).map(|d| self.share(d, organ)).collect()
    }
}

/// Configuration for burst detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BurstConfig {
    /// Trailing-baseline window in days.
    pub window: usize,
    /// Z-score threshold for a bursting day.
    pub z_threshold: f64,
    /// Minimum mentions a day needs to be scored (guards tiny-sample
    /// share estimates).
    pub min_daily_mentions: u64,
    /// Minimum days of usable baseline before scoring begins.
    pub min_baseline_days: usize,
}

impl Default for BurstConfig {
    fn default() -> Self {
        Self {
            window: 28,
            z_threshold: 4.0,
            min_daily_mentions: 20,
            min_baseline_days: 14,
        }
    }
}

/// One detected burst: a maximal run of days where an organ's share sat
/// above its trailing baseline by more than the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Burst {
    /// The bursting organ.
    pub organ: Organ,
    /// First bursting day (0-based).
    pub start_day: usize,
    /// One past the last bursting day.
    pub end_day: usize,
    /// Day of the largest z-score.
    pub peak_day: usize,
    /// The largest z-score.
    pub peak_z: f64,
    /// Organ share on the peak day.
    pub peak_share: f64,
    /// Trailing-baseline share at the peak day.
    pub baseline_share: f64,
}

impl Burst {
    /// Duration in days.
    pub fn duration(&self) -> usize {
        self.end_day - self.start_day
    }
}

/// Detects bursts in a daily series.
pub fn detect_bursts(series: &DailySeries, config: BurstConfig) -> Result<Vec<Burst>> {
    if config.window < 2 {
        return Err(CoreError::InvalidParameter(
            "burst window must be at least 2 days".to_string(),
        ));
    }
    if config.z_threshold <= 0.0 {
        return Err(CoreError::InvalidParameter(
            "z threshold must be positive".to_string(),
        ));
    }
    let mut bursts = Vec::new();
    for organ in Organ::ALL {
        let mut current: Option<Burst> = None;
        // Days already flagged as bursting are excluded from later
        // baselines — otherwise a long burst contaminates its own
        // trailing window and truncates itself.
        let mut flagged = vec![false; series.days()];
        for day in 0..series.days() {
            let z = z_score(series, organ, day, &config, &flagged);
            match z {
                Some((z, share, baseline)) if z > config.z_threshold => {
                    flagged[day] = true;
                    match current.as_mut() {
                        Some(b) => {
                            b.end_day = day + 1;
                            if z > b.peak_z {
                                b.peak_z = z;
                                b.peak_day = day;
                                b.peak_share = share;
                                b.baseline_share = baseline;
                            }
                        }
                        None => {
                            current = Some(Burst {
                                organ,
                                start_day: day,
                                end_day: day + 1,
                                peak_day: day,
                                peak_z: z,
                                peak_share: share,
                                baseline_share: baseline,
                            });
                        }
                    }
                }
                _ => {
                    if let Some(b) = current.take() {
                        bursts.push(b);
                    }
                }
            }
        }
        if let Some(b) = current.take() {
            bursts.push(b);
        }
    }
    bursts.sort_by_key(|b| (b.start_day, b.organ.index()));
    Ok(bursts)
}

/// Z-score of `organ`'s share on `day` against the trailing window,
/// together with `(share, baseline_mean)`. `None` when the day or its
/// baseline is too thin.
fn z_score(
    series: &DailySeries,
    organ: Organ,
    day: usize,
    config: &BurstConfig,
    flagged: &[bool],
) -> Option<(f64, f64, f64)> {
    if series.total(day) < config.min_daily_mentions {
        return None;
    }
    let share = series.share(day, organ)?;
    let lo = day.saturating_sub(config.window);
    let mut baseline = Vec::with_capacity(config.window);
    for (d, &is_flagged) in flagged.iter().enumerate().take(day).skip(lo) {
        if !is_flagged && series.total(d) >= config.min_daily_mentions {
            if let Some(s) = series.share(d, organ) {
                baseline.push(s);
            }
        }
    }
    if baseline.len() < config.min_baseline_days {
        return None;
    }
    let n = baseline.len() as f64;
    let mean = baseline.iter().sum::<f64>() / n;
    let var = baseline
        .iter()
        .map(|s| (s - mean) * (s - mean))
        .sum::<f64>()
        / (n - 1.0);
    let sd = var.sqrt();
    if sd <= 0.0 {
        return None;
    }
    Some(((share - mean) / sd, share, mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::KeywordQuery;
    use donorpulse_twitter::genmodel::AwarenessEvent;
    use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};

    fn corpus_with_event(event: Option<AwarenessEvent>) -> Corpus {
        let mut cfg = GeneratorConfig::paper_scaled(0.05);
        cfg.seed = 77;
        if let Some(e) = event {
            cfg.events.push(e);
        }
        let sim = TwitterSimulation::generate(cfg).expect("sim");
        sim.stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .collect()
    }

    #[test]
    fn series_accounts_every_mention() {
        let corpus = corpus_with_event(None);
        let series = DailySeries::from_corpus(&corpus);
        assert_eq!(series.days(), 385);
        let series_total: u64 = (0..series.days()).map(|d| series.total(d)).sum();
        let extractor = OrganExtractor::new();
        let direct: u64 = corpus
            .tweets()
            .iter()
            .map(|t| extractor.extract(&t.text).total() as u64)
            .sum();
        assert_eq!(series_total, direct);
    }

    #[test]
    fn shares_sum_to_one_on_active_days() {
        let corpus = corpus_with_event(None);
        let series = DailySeries::from_corpus(&corpus);
        for day in 0..series.days() {
            if series.total(day) == 0 {
                continue;
            }
            let s: f64 = Organ::ALL
                .iter()
                .map(|&o| series.share(day, o).unwrap())
                .sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn planted_burst_is_detected() {
        let event = AwarenessEvent {
            organ: Organ::Pancreas,
            start_day: 150,
            end_day: 164,
            intensity: 0.5,
        };
        let corpus = corpus_with_event(Some(event));
        let series = DailySeries::from_corpus(&corpus);
        let bursts = detect_bursts(&series, BurstConfig::default()).unwrap();
        let hit = bursts
            .iter()
            .find(|b| b.organ == Organ::Pancreas && b.end_day > 150 && b.start_day < 164)
            .unwrap_or_else(|| panic!("pancreas burst not found: {bursts:?}"));
        // The detected window overlaps the planted one.
        assert!(hit.start_day < 164 && hit.end_day > 150, "{hit:?}");
        assert!(hit.peak_share > hit.baseline_share * 3.0, "{hit:?}");
        assert!(hit.duration() >= 7, "{hit:?}");
    }

    #[test]
    fn quiet_corpus_has_no_strong_bursts() {
        let corpus = corpus_with_event(None);
        let series = DailySeries::from_corpus(&corpus);
        let bursts = detect_bursts(&series, BurstConfig::default()).unwrap();
        // At z > 4 with a 28-day baseline, a stationary corpus should
        // produce at most a couple of noise blips, never a long burst.
        assert!(bursts.len() <= 3, "{bursts:?}");
        assert!(bursts.iter().all(|b| b.duration() <= 3), "{bursts:?}");
    }

    #[test]
    fn detector_rejects_bad_config() {
        let corpus = corpus_with_event(None);
        let series = DailySeries::from_corpus(&corpus);
        let bad = BurstConfig {
            window: 1,
            ..Default::default()
        };
        assert!(detect_bursts(&series, bad).is_err());
        let bad = BurstConfig {
            z_threshold: 0.0,
            ..Default::default()
        };
        assert!(detect_bursts(&series, bad).is_err());
    }

    #[test]
    fn event_validation_in_generator() {
        let mut cfg = GeneratorConfig::paper_scaled(0.01);
        cfg.events.push(AwarenessEvent {
            organ: Organ::Heart,
            start_day: 10,
            end_day: 10,
            intensity: 0.5,
        });
        assert!(cfg.validate().is_err());
        let mut cfg = GeneratorConfig::paper_scaled(0.01);
        cfg.events.push(AwarenessEvent {
            organ: Organ::Heart,
            start_day: 10,
            end_day: 20,
            intensity: 1.5,
        });
        assert!(cfg.validate().is_err());
    }
}
