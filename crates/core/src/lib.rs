//! `donorpulse-core` — the paper's primary contribution.
//!
//! Pacheco et al. characterize organ-donation awareness from Twitter by
//! representing each user as a normalized attention distribution over
//! the six major solid organs (the matrix `Û`, Sec. III-B), then
//! aggregating users through membership-indicator matrices `L`
//! (Eqs. 1–2) with the closed form
//!
//! ```text
//! K = (LᵀL)⁻¹ Lᵀ Û          (Eq. 3)
//! ```
//!
//! Rows of `K` are group centroids: organ characterizations when `L`
//! groups users by their most-cited organ (Fig. 3), state
//! characterizations when `L` groups them by residence (Fig. 4). On top
//! of that sit the relative-risk highlighting of Eq. 4 (Fig. 5), the
//! Bhattacharyya/agglomerative state clustering (Fig. 6), and the
//! K-Means user clustering with silhouette-driven model selection
//! (Fig. 7).
//!
//! The [`pipeline`] module wires the full system end to end against the
//! simulated Twitter substrate: stream collection with the `Q` keyword
//! filter → location augmentation (geo-tag, then profile) → USA filter →
//! characterizations. [`report`] renders every table and figure of the
//! paper from a pipeline run. [`stream_consumer`] is the fault-tolerant
//! streaming front-half: the same stages pipelined over bounded
//! channels with reconnect/retry/park resilience, feeding the
//! [`incremental`] sensor and provably reproducing the batch artifacts
//! when every fault is recoverable. [`serve`] keeps that sensor
//! always-on: a dependency-free HTTP daemon answering report, risk,
//! and attention queries from epoch-consistent snapshots with
//! fingerprint `ETag`s.
//!
//! Every pipeline stage is instrumented through the dependency-free
//! `donorpulse-obs` layer: configure the run with an enabled
//! [`donorpulse_obs::MetricsRegistry`] and [`PipelineRun`] carries a
//! [`pipeline::RunMetrics`] snapshot of per-stage wall times,
//! throughputs, and domain counters (`docs/OBSERVABILITY.md` is the
//! catalog). The default disabled registry makes instrumentation free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod attention;
pub mod campaign;
pub mod checkpoint;
pub mod cooccurrence;
pub mod incremental;
pub mod membership;
pub mod pipeline;
pub mod procgroup;
pub mod region_view;
pub mod relative_risk;
pub mod report;
pub mod reshard;
pub mod roles;
pub mod serve;
pub mod shard;
pub mod spatial;
pub mod state_clusters;
pub mod stream_consumer;
pub mod temporal;
pub mod user_clusters;

mod error;

#[cfg(test)]
pub(crate) mod testsupport;

pub use aggregate::Aggregation;
pub use attention::AttentionMatrix;
pub use campaign::{Campaign, CampaignSet, CampaignSpec, DEFAULT_CAMPAIGN};
pub use checkpoint::{
    compact_checkpoints, CampaignSection, CheckpointStore, DeadLetter, DeadLetterLog,
    DirCheckpointStore, MemCheckpointStore, SensorCheckpoint,
};
pub use error::CoreError;
pub use pipeline::{Pipeline, PipelineConfig, PipelineRun, RunMetrics};
pub use procgroup::{
    run_proc_group, run_shard_worker, ProcGroupConfig, ProcGroupLaunch, ProcTransport,
    ShardWorkerConfig, WorkerConn, WorkerSpawner,
};
pub use reshard::{reshard_checkpoints, ReshardReport};
pub use serve::{
    run_loadgen, run_serve_daemon, HttpClient, HttpReply, LoadgenConfig, LoadgenReport,
    ServeConfig, ServeOutcome,
};
pub use shard::{run_sharded_stream, ShardConfig, ShardServices, ShardedStreamRun};
pub use stream_consumer::{
    replay_dead_letters, run_faulted_stream, FaultedStreamRun, ReplayReport, Resequencer,
    RetryPolicy, StreamPipelineConfig,
};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
