//! Rendering of every table and figure in the paper from a
//! [`PipelineRun`].
//!
//! Each artifact has a serializable data structure (for JSON export and
//! for EXPERIMENTS.md bookkeeping) and a plain-text renderer that prints
//! the same rows/series the paper reports.

use crate::pipeline::PipelineRun;
use crate::Result;
use donorpulse_geo::UsState;
use donorpulse_stats::correlation::{spearman, Correlation};
use donorpulse_stats::histogram::log_scale_height;
use donorpulse_text::Organ;
use serde::Serialize;
use std::fmt::Write as _;

/// Table I: dataset statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// First/last collection dates and corpus statistics (USA corpus).
    pub stats: donorpulse_twitter::CorpusStats,
    /// Tweets collected before the USA filter (the paper's 975,021).
    pub collected_tweets: u64,
    /// USA fraction of collected tweets.
    pub usa_fraction: f64,
}

impl Table1 {
    /// Builds the table from a run.
    pub fn from_run(run: &PipelineRun) -> Self {
        Self {
            stats: run.usa.stats(),
            collected_tweets: run.collected_tweets,
            usa_fraction: run.usa_fraction(),
        }
    }

    /// Plain-text rendering in the paper's row order.
    pub fn render(&self) -> String {
        let s = &self.stats;
        let mut out = String::new();
        let _ = writeln!(out, "TABLE I. STATISTICS OF THE DATASET");
        let _ = writeln!(out, "{:-<46}", "");
        let mut row = |k: &str, v: String| {
            let _ = writeln!(out, "{k:<28} {v:>16}");
        };
        row("Start Data Collection", s.start.clone().unwrap_or_default());
        row(
            "Finish Data Collection",
            s.finish.clone().unwrap_or_default(),
        );
        row("Number of Days", s.days.to_string());
        row("Tweets collected", s.tweets.to_string());
        row("Number of Users", s.users.to_string());
        row("Avg. Tweets / Day", format!("{:.0}", s.avg_tweets_per_day));
        row(
            "Avg. Tweets / User",
            format!("{:.2}", s.avg_tweets_per_user),
        );
        row(
            "Organs mentioned / Tweet",
            format!("{:.2}", s.organs_per_tweet),
        );
        row(
            "Organs mentioned / User",
            format!("{:.2}", s.organs_per_user),
        );
        let _ = writeln!(
            out,
            "* {} out of {} tweets identified as from USA users ({:.1}%)",
            s.tweets,
            self.collected_tweets,
            self.usa_fraction * 100.0
        );
        out
    }
}

/// Fig. 2(a): users per organ + Spearman against OPTN 2012 transplants.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2a {
    /// `(organ, users mentioning it)`, canonical order.
    pub users_per_organ: Vec<(Organ, u64)>,
    /// Spearman correlation between Twitter popularity and transplant
    /// counts (paper: r = .84, p < .05).
    pub spearman: Correlation,
}

impl Fig2a {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Result<Self> {
        let hist = run.attention.users_per_organ();
        let users_per_organ: Vec<(Organ, u64)> = Organ::ALL
            .into_iter()
            .map(|o| (o, hist.count(o.name())))
            .collect();
        let popularity: Vec<f64> = users_per_organ.iter().map(|&(_, c)| c as f64).collect();
        let transplants: Vec<f64> = Organ::ALL
            .iter()
            .map(|o| o.transplants_2012() as f64)
            .collect();
        let spearman = spearman(&popularity, &transplants)?;
        Ok(Self {
            users_per_organ,
            spearman,
        })
    }

    /// Plain-text rendering with log-scale bars.
    pub fn render(&self) -> String {
        let mut out = String::from("FIG 2(a). USERS PER ORGAN (log scale)\n");
        for &(organ, count) in &self.users_per_organ {
            let bar = "#".repeat((log_scale_height(count) * 8.0).round() as usize);
            let _ = writeln!(out, "{:<10} {:>8}  {}", organ.name(), count, bar);
        }
        let _ = writeln!(
            out,
            "Spearman vs OPTN 2012 transplants: r = {:.2}, p = {:.4} ({})",
            self.spearman.r,
            self.spearman.p_value,
            if self.spearman.significant_at(0.05) {
                "significant at .05"
            } else {
                "not significant"
            }
        );
        out
    }
}

/// Fig. 2(b): users and tweets by number of distinct organs mentioned.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2b {
    /// Users mentioning exactly k organs (index 0 ↔ k = 1).
    pub users: [u64; Organ::COUNT],
    /// Tweets mentioning exactly k organs.
    pub tweets: [u64; Organ::COUNT],
}

impl Fig2b {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Self {
        Self {
            users: run.attention.users_by_breadth(),
            tweets: crate::attention::AttentionMatrix::tweets_by_breadth(&run.usa),
        }
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("FIG 2(b). MULTI-ORGAN MENTIONS (users vs tweets)\n");
        let _ = writeln!(out, "{:>8} {:>10} {:>10}", "organs", "users", "tweets");
        for k in 0..Organ::COUNT {
            let _ = writeln!(
                out,
                "{:>8} {:>10} {:>10}",
                k + 1,
                self.users[k],
                self.tweets[k]
            );
        }
        out
    }
}

/// Fig. 3 / Fig. 4 panel: one group's ranked attention distribution.
#[derive(Debug, Clone, Serialize)]
pub struct RankedPanel {
    /// Panel label ("heart", "Kansas", "cluster 3 (12.5%)", …).
    pub label: String,
    /// Users aggregated into the panel.
    pub size: usize,
    /// Organs ranked by attention, descending.
    pub ranked: Vec<(Organ, f64)>,
}

impl RankedPanel {
    fn render_into(&self, out: &mut String) {
        let _ = writeln!(out, "[{} | {} users]", self.label, self.size);
        for &(organ, v) in &self.ranked {
            let bar = "#".repeat((v * 40.0).round() as usize);
            let _ = writeln!(out, "  {:<10} {:>7.4}  {}", organ.name(), v, bar);
        }
    }
}

/// Fig. 3: organ characterization.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// One panel per organ group.
    pub panels: Vec<RankedPanel>,
}

impl Fig3 {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Self {
        let panels = run
            .organ_k
            .groups
            .iter()
            .enumerate()
            .map(|(i, organ)| RankedPanel {
                label: organ.name().to_string(),
                size: run.organ_k.sizes[i],
                ranked: run.organ_k.ranked_row(i),
            })
            .collect();
        Self { panels }
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = String::from("FIG 3. ORGAN CHARACTERIZATION (rows of K, Eq. 1 + Eq. 3)\n");
        for p in &self.panels {
            p.render_into(&mut out);
        }
        out
    }
}

/// Fig. 4: state characterization.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// One panel per state.
    pub panels: Vec<RankedPanel>,
}

impl Fig4 {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Self {
        let panels = run
            .regions
            .signatures
            .iter()
            .map(|s| RankedPanel {
                label: s.state.name().to_string(),
                size: s.users,
                ranked: s.ranked.clone(),
            })
            .collect();
        Self { panels }
    }

    /// Plain-text rendering (compact: top-3 organs per state).
    pub fn render(&self) -> String {
        let mut out =
            String::from("FIG 4. STATE CHARACTERIZATION (rows of K, Eq. 2 + Eq. 3; top 3 shown)\n");
        for p in &self.panels {
            let top: Vec<String> = p
                .ranked
                .iter()
                .take(3)
                .map(|(o, v)| format!("{} {:.3}", o.name(), v))
                .collect();
            let _ = writeln!(
                out,
                "{:<22} ({:>6} users)  {}",
                p.label,
                p.size,
                top.join(" | ")
            );
        }
        out
    }
}

/// Fig. 5: highlighted organs per state.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// Significance level.
    pub alpha: f64,
    /// `(state, highlighted organs)` for states with ≥1 highlight.
    pub highlighted: Vec<(UsState, Vec<Organ>)>,
    /// States analyzed but with no significant excess.
    pub unhighlighted: Vec<UsState>,
}

impl Fig5 {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Self {
        let map = run.risk.highlighted();
        let mut highlighted: Vec<(UsState, Vec<Organ>)> = map.into_iter().collect();
        highlighted.sort_by_key(|&(s, _)| s);
        let mut unhighlighted: Vec<UsState> = run
            .region_k
            .groups
            .iter()
            .copied()
            .filter(|s| !highlighted.iter().any(|(h, _)| h == s))
            .collect();
        unhighlighted.sort();
        Self {
            alpha: run.risk.alpha,
            highlighted,
            unhighlighted,
        }
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "FIG 5. HIGHLIGHTED ORGANS PER STATE (RR, alpha = {})\n",
            self.alpha
        );
        for (state, organs) in &self.highlighted {
            let names: Vec<&str> = organs.iter().map(|o| o.name()).collect();
            let _ = writeln!(out, "{:<22} {}", state.name(), names.join(", "));
        }
        let _ = writeln!(
            out,
            "({} states with no significant excess)",
            self.unhighlighted.len()
        );
        out
    }
}

/// Fig. 6: state clustering summary.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// States in dendrogram leaf order (the heatmap axis).
    pub leaf_order: Vec<UsState>,
    /// Flat clusters at k = 4 (the paper reads four zones: liver, lung,
    /// kidney, heart).
    pub zones: Vec<Vec<UsState>>,
    /// Metric and linkage used.
    pub metric: String,
    /// Linkage name.
    pub linkage: String,
}

impl Fig6 {
    /// Builds the figure data from a run.
    pub fn from_run(run: &PipelineRun) -> Result<Self> {
        let k = 4.min(run.state_clusters.states.len());
        Ok(Self {
            leaf_order: run.state_clusters.leaf_order.clone(),
            zones: run.state_clusters.clusters(k)?,
            metric: run.state_clusters.metric.name().to_string(),
            linkage: run.state_clusters.linkage.name().to_string(),
        })
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "FIG 6. STATE CLUSTERING ({} affinity, {} linkage)\n",
            self.metric, self.linkage
        );
        let order: Vec<&str> = self.leaf_order.iter().map(|s| s.abbr()).collect();
        let _ = writeln!(out, "leaf order: {}", order.join(" "));
        for (i, zone) in self.zones.iter().enumerate() {
            let names: Vec<&str> = zone.iter().map(|s| s.abbr()).collect();
            let _ = writeln!(out, "zone {}: {}", i + 1, names.join(" "));
        }
        out
    }
}

/// Fig. 7: user clustering summary.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// Chosen k.
    pub chosen_k: usize,
    /// Selection sweep.
    pub sweep: Vec<crate::user_clusters::KCandidate>,
    /// Cluster panels.
    pub panels: Vec<RankedPanel>,
}

impl Fig7 {
    /// Builds the figure data from a run (`None` if clustering was
    /// disabled).
    pub fn from_run(run: &PipelineRun) -> Option<Self> {
        let uc = run.user_clusters.as_ref()?;
        let panels = uc
            .profiles()
            .iter()
            .map(|p| RankedPanel {
                label: format!("cluster {} ({:.1}%)", p.cluster, p.relative_size * 100.0),
                size: p.size,
                ranked: p.ranked.clone(),
            })
            .collect();
        Some(Self {
            chosen_k: uc.chosen_k,
            sweep: uc.sweep.clone(),
            panels,
        })
    }

    /// Plain-text rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "FIG 7. USER CLUSTERS (K-Means, chosen k = {})\n",
            self.chosen_k
        );
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>14} {:>12}",
            "k", "silhouette", "avg size", "inertia"
        );
        for c in &self.sweep {
            let marker = if c.k == self.chosen_k {
                " <- chosen"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:>4} {:>12.3} {:>14.2} {:>12.2}{}",
                c.k, c.silhouette, c.avg_cluster_size, c.inertia, marker
            );
        }
        for p in &self.panels {
            let top: Vec<String> = p
                .ranked
                .iter()
                .take(2)
                .map(|(o, v)| format!("{} {:.2}", o.name(), v))
                .collect();
            let _ = writeln!(
                out,
                "{:<24} {:>7} users  {}",
                p.label,
                p.size,
                top.join(" | ")
            );
        }
        out
    }
}

/// Every artifact of the paper, bundled.
#[derive(Debug, Clone, Serialize)]
pub struct PaperReport {
    /// Table I.
    pub table1: Table1,
    /// Fig. 2(a).
    pub fig2a: Fig2a,
    /// Fig. 2(b).
    pub fig2b: Fig2b,
    /// Fig. 3.
    pub fig3: Fig3,
    /// Fig. 4.
    pub fig4: Fig4,
    /// Fig. 5.
    pub fig5: Fig5,
    /// Fig. 6.
    pub fig6: Fig6,
    /// Fig. 7 (absent when user clustering was disabled).
    pub fig7: Option<Fig7>,
}

impl PaperReport {
    /// Builds every artifact from a run.
    pub fn from_run(run: &PipelineRun) -> Result<Self> {
        Ok(Self {
            table1: Table1::from_run(run),
            fig2a: Fig2a::from_run(run)?,
            fig2b: Fig2b::from_run(run),
            fig3: Fig3::from_run(run),
            fig4: Fig4::from_run(run),
            fig5: Fig5::from_run(run),
            fig6: Fig6::from_run(run)?,
            fig7: Fig7::from_run(run),
        })
    }

    /// Renders everything, in paper order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.table1.render());
        out.push('\n');
        out.push_str(&self.fig2a.render());
        out.push('\n');
        out.push_str(&self.fig2b.render());
        out.push('\n');
        out.push_str(&self.fig3.render());
        out.push('\n');
        out.push_str(&self.fig4.render());
        out.push('\n');
        out.push_str(&self.fig5.render());
        out.push('\n');
        out.push_str(&self.fig6.render());
        if let Some(fig7) = &self.fig7 {
            out.push('\n');
            out.push_str(&fig7.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::shared_run;

    fn run() -> &'static PipelineRun {
        shared_run()
    }

    #[test]
    fn full_report_builds_and_renders() {
        let r = run();
        let report = PaperReport::from_run(r).unwrap();
        let text = report.render();
        assert!(text.contains("TABLE I"));
        assert!(text.contains("FIG 2(a)"));
        assert!(text.contains("FIG 3"));
        assert!(text.contains("FIG 5"));
        assert!(text.contains("FIG 7"));
        assert!(text.contains("Spearman"));
    }

    #[test]
    fn table1_dates_match_window() {
        let r = run();
        let t1 = Table1::from_run(r);
        // Statistical certainty at thousands of tweets: first/last tweet
        // land on the window's first/last days.
        assert_eq!(t1.stats.start.as_deref(), Some("Apr 22 2015"));
        assert_eq!(t1.stats.finish.as_deref(), Some("May 10 2016"));
        assert_eq!(t1.stats.days, 385);
        assert!(t1.render().contains("385"));
    }

    #[test]
    fn fig2a_orders_and_correlates() {
        let r = run();
        let f = Fig2a::from_run(r).unwrap();
        // Popularity ordering heart > kidney > ... > intestine (planted).
        let counts: Vec<u64> = f.users_per_organ.iter().map(|&(_, c)| c).collect();
        for w in counts.windows(2) {
            assert!(w[0] >= w[1], "popularity order violated: {counts:?}");
        }
        // Spearman near the paper's .84 (exactly .8286 for the planted
        // rank pattern with heart 1st on Twitter, 3rd in transplants).
        assert!(
            (f.spearman.r - 0.8286).abs() < 0.06,
            "spearman r = {}",
            f.spearman.r
        );
    }

    #[test]
    fn fig2b_tweets_exceed_users_only_at_one() {
        let r = run();
        let f = Fig2b::from_run(r);
        assert!(
            f.tweets[0] > f.users[0],
            "k=1: tweets {} !> users {}",
            f.tweets[0],
            f.users[0]
        );
        for k in 1..Organ::COUNT {
            assert!(
                f.users[k] >= f.tweets[k],
                "k={}: users {} < tweets {}",
                k + 1,
                f.users[k],
                f.tweets[k]
            );
        }
    }

    #[test]
    fn fig5_finds_planted_kansas_kidney() {
        let r = run();
        let f = Fig5::from_run(r);
        let kansas = f
            .highlighted
            .iter()
            .find(|(s, _)| *s == donorpulse_geo::UsState::Kansas);
        assert!(
            kansas.is_some_and(|(_, organs)| organs.contains(&Organ::Kidney)),
            "Kansas kidney not highlighted: {:?}",
            f.highlighted
        );
    }

    #[test]
    fn report_serializes_to_json() {
        let r = run();
        let report = PaperReport::from_run(r).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("table1"));
        assert!(json.contains("fig7"));
    }
}
