//! Elastic re-sharding: repartition a consistent checkpoint cut onto a
//! new shard count.
//!
//! Resume refuses a shard-count mismatch because re-routing with a
//! different modulus would split user histories across sensors
//! ([`SensorCheckpoint::shard_count`]). This module is the sanctioned
//! way around that refusal: [`reshard_checkpoints`] loads the newest
//! epoch that is complete across the stored layout, re-keys every
//! campaign's per-user tracks (and the park residue) by
//! [`route_shard`] under the new modulus, and rewrites the store as a
//! valid cut at the target count — which `--resume --shards M` then
//! accepts.
//!
//! The correctness argument is the same structural one as the merge
//! identity (`docs/SCALING.md`): sensor state is entirely per-user, a
//! user's track is identical no matter which shard owns it, and every
//! snapshot function sorts before emitting. Moving whole tracks
//! between shards therefore reproduces exactly the per-shard state an
//! uninterrupted run at the new count would have had at the same cut:
//!
//! * **tracks** — shard `j` of an uninterrupted run at `M` owns
//!   precisely the users with `route_shard(u, M) == j`; the split
//!   moves each track to that owner, and [`SensorExport::absorb`]'s
//!   overlap check still holds because the destination is a function
//!   of the user id alone;
//! * **high-water marks** — the per-export informational high water is
//!   recomputed as the maximum tweet id over the owned tracks, which
//!   is what the new owner would have recorded itself (dedup does not
//!   read it: the sensor rebuilds its seen-set from the tracks);
//! * **park residue** — the per-shard queues are re-interleaved into
//!   global stream order (the resequenced source emits ascending
//!   tweet ids) and dealt to the new owners, giving each new queue
//!   the arrival order an uninterrupted run at `M` would have parked
//!   in;
//! * **the idempotence counter** — `duplicates_ignored` is not
//!   per-user state; it is parked on new shard 0. It is excluded from
//!   fingerprints and only its merged sum is observable, which the
//!   convention preserves.
//!
//! The rewrite holds the whole cut in memory, prunes **everything**
//! in the store (stale partial epochs above the cut would otherwise
//! shadow it at resume time), then writes the `M` new checkpoints at
//! the cut's epoch — v2 or v3 bytes as the campaign roster dictates,
//! exactly like a live worker ([`SensorCheckpoint::encode`]).
//!
//! The online swaps reuse the same primitives: `run_sharded_stream
//! --reshard-at K:M` drains its workers and feeds their exports
//! through the same split in memory, and the process-group drill lets
//! its children persist the cut and then calls [`reshard_checkpoints`]
//! on the store they wrote.

use crate::checkpoint::{
    latest_complete_epoch, CampaignSection, CheckpointStore, SensorCheckpoint,
};
use crate::incremental::SensorExport;
use crate::shard::{route_shard, MAX_SHARDS};
use crate::{CoreError, Result};
use donorpulse_obs::MetricsRegistry;
use donorpulse_twitter::{Tweet, TweetId};

fn io_err(e: std::io::Error) -> CoreError {
    CoreError::Checkpoint(format!("checkpoint store: {e}"))
}

/// Rejects impossible target shard counts with operator-readable
/// errors. Shared by the offline verb and the online `--reshard-at`
/// validation.
pub(crate) fn validate_target(to: usize) -> Result<()> {
    if to == 0 {
        return Err(CoreError::Checkpoint(
            "re-shard target must be at least 1 shard (got 0)".into(),
        ));
    }
    if to > MAX_SHARDS {
        return Err(CoreError::Checkpoint(format!(
            "re-shard target {to} exceeds the {MAX_SHARDS}-shard ceiling"
        )));
    }
    Ok(())
}

/// A consistent cut re-keyed to a new modulus, still in memory.
pub(crate) struct SplitCut {
    /// Per-new-shard, per-campaign exports (primary first).
    pub(crate) exports: Vec<Vec<SensorExport>>,
    /// Per-new-shard park residue, ascending tweet id.
    pub(crate) parked: Vec<Vec<Tweet>>,
    /// User tracks in the cut, total and changed-owner counts.
    pub(crate) tracks_total: u64,
    /// Tracks whose owning shard changed under the new modulus.
    pub(crate) tracks_moved: u64,
    /// Parked tweets in the cut.
    pub(crate) parked_total: u64,
    /// Parked tweets whose owning shard changed.
    pub(crate) parked_moved: u64,
}

/// Re-keys a cut's per-shard state (outer index = old shard, inner =
/// campaign in roster order) to `to` shards. Pure: the result is a
/// function of the cut and the modulus alone.
pub(crate) fn split_cut(
    exports: Vec<Vec<SensorExport>>,
    parked: Vec<Vec<Tweet>>,
    to: usize,
) -> SplitCut {
    let n_campaigns = exports.first().map_or(1, Vec::len);
    let mut out = vec![vec![SensorExport::default(); n_campaigns]; to];
    let mut tracks_total = 0u64;
    let mut tracks_moved = 0u64;
    for (old_shard, shard_exports) in exports.into_iter().enumerate() {
        for (c, export) in shard_exports.into_iter().enumerate() {
            // Not per-user state: park the counter on new shard 0
            // (fingerprints exclude it; only the merged sum is
            // observable, and that is preserved).
            out[0][c].duplicates_ignored += export.duplicates_ignored;
            for (user, track) in export.tracks {
                let dest = route_shard(user, to);
                tracks_total += 1;
                if dest != old_shard {
                    tracks_moved += 1;
                }
                let slot = &mut out[dest][c];
                for t in &track.tweets {
                    slot.high_water = slot.high_water.max(Some(t.id));
                }
                slot.tracks.insert(user, track);
            }
        }
    }
    let mut tagged: Vec<(usize, Tweet)> = parked
        .into_iter()
        .enumerate()
        .flat_map(|(s, q)| q.into_iter().map(move |t| (s, t)))
        .collect();
    // Global stream order: tweet ids are the resequenced stream's
    // arrival order, so the new owner's queue comes out in the order
    // it would itself have parked in.
    tagged.sort_by_key(|(_, t)| t.id);
    let parked_total = tagged.len() as u64;
    let mut parked_moved = 0u64;
    let mut out_park = vec![Vec::new(); to];
    for (old_shard, tweet) in tagged {
        let dest = route_shard(tweet.user, to);
        if dest != old_shard {
            parked_moved += 1;
        }
        out_park[dest].push(tweet);
    }
    SplitCut {
        exports: out,
        parked: out_park,
        tracks_total,
        tracks_moved,
        parked_total,
        parked_moved,
    }
}

/// Removes every checkpoint file in the store, across all possible
/// shard ids. Stale partial epochs above the re-shard cut would
/// otherwise out-sort it in `latest_complete_epoch` at the new count.
fn prune_all(store: &dyn CheckpointStore) -> Result<u64> {
    let mut removed = 0u64;
    for shard in 0..MAX_SHARDS as u32 {
        for epoch in store.epochs(shard).map_err(io_err)? {
            store.remove(shard, epoch).map_err(io_err)?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Writes a split cut as the store's checkpoint layout at `epoch`,
/// one [`SensorCheckpoint`] per new shard with the given campaign
/// roster (primary first). Returns the bytes written.
fn write_layout(
    store: &dyn CheckpointStore,
    epoch: u64,
    high_water: Option<TweetId>,
    names: &[String],
    cut: &SplitCut,
) -> Result<u64> {
    let to = cut.exports.len();
    let mut bytes_written = 0u64;
    for (shard, (exports, parked)) in cut.exports.iter().zip(&cut.parked).enumerate() {
        let mut per_campaign = exports.iter().cloned();
        let primary = per_campaign.next().unwrap_or_default();
        let ckpt = SensorCheckpoint {
            shard_id: shard as u32,
            shard_count: to as u32,
            epoch,
            router_high_water: high_water,
            export: primary,
            parked: parked.clone(),
            campaign: names.first().cloned().unwrap_or_default(),
            extra_campaigns: names
                .iter()
                .skip(1)
                .zip(per_campaign)
                .map(|(name, export)| CampaignSection {
                    name: name.clone(),
                    export,
                })
                .collect(),
        };
        let bytes = ckpt.encode();
        store
            .save(shard as u32, epoch, &bytes)
            .map_err(|e| CoreError::Checkpoint(format!("saving shard {shard} epoch {epoch}: {e}")))?;
        bytes_written += bytes.len() as u64;
    }
    Ok(bytes_written)
}

/// Prunes the store and writes the split as its sole cut at `epoch`.
/// Returns `(files_removed, bytes_written)`. The cut lives in memory
/// for the duration, so the store is never left without the state it
/// holds.
pub(crate) fn rewrite_store(
    store: &dyn CheckpointStore,
    epoch: u64,
    high_water: Option<TweetId>,
    names: &[String],
    cut: &SplitCut,
) -> Result<(u64, u64)> {
    let removed = prune_all(store)?;
    let written = write_layout(store, epoch, high_water, names, cut)?;
    Ok((removed, written))
}

/// What [`reshard_checkpoints`] did, for operator output.
#[derive(Debug, Clone)]
pub struct ReshardReport {
    /// Shard count the cut was taken with.
    pub from_shards: usize,
    /// Shard count the store now holds.
    pub to_shards: usize,
    /// The cut's epoch (preserved across the rewrite).
    pub epoch: u64,
    /// The cut's router high-water mark (preserved).
    pub high_water: Option<TweetId>,
    /// Campaign roster, primary first (preserved).
    pub campaigns: Vec<String>,
    /// User tracks in the cut.
    pub tracks_total: u64,
    /// Tracks whose owning shard changed under the new modulus.
    pub tracks_moved: u64,
    /// Parked tweets in the cut.
    pub parked_total: u64,
    /// Parked tweets whose owning shard changed.
    pub parked_moved: u64,
    /// Old checkpoint files removed (the whole store is compacted to
    /// the re-sharded cut).
    pub files_removed: u64,
    /// Bytes in the new layout.
    pub bytes_written: u64,
}

/// Re-partitions a checkpoint store's newest complete cut onto
/// `to_shards` shards. See the module docs for the identity argument.
///
/// The stored shard count is discovered from the checkpoints
/// themselves; the cut is validated exactly as resume validates it
/// (identity, uniform shard count, uniform high water, uniform
/// campaign roster) before anything is touched. `to_shards` may equal
/// the stored count — the rewrite is then a compaction to the newest
/// complete cut.
pub fn reshard_checkpoints(
    store: &dyn CheckpointStore,
    to_shards: usize,
    metrics: &MetricsRegistry,
) -> Result<ReshardReport> {
    validate_target(to_shards)?;
    // Discover the stored layout from shard 0's newest checkpoint
    // (every layout has a shard 0).
    let newest0 = store
        .epochs(0)
        .map_err(io_err)?
        .into_iter()
        .next_back()
        .ok_or_else(|| {
            CoreError::Checkpoint(
                "checkpoint store holds nothing for shard 0 — no cut to re-shard".into(),
            )
        })?;
    let probe_bytes = store.load(0, newest0).map_err(io_err)?.ok_or_else(|| {
        CoreError::Checkpoint(format!("shard 0 epoch {newest0} vanished from the store"))
    })?;
    let probe = SensorCheckpoint::decode(&probe_bytes)?;
    let from = probe.shard_count as usize;
    if !(1..=MAX_SHARDS).contains(&from) {
        return Err(CoreError::Checkpoint(format!(
            "stored checkpoint claims an impossible shard count {from}"
        )));
    }
    let epoch = latest_complete_epoch(store, from as u32)
        .map_err(io_err)?
        .ok_or_else(|| {
            CoreError::Checkpoint(format!(
                "no checkpoint epoch is complete across all {from} shards — \
                 re-sharding needs a consistent cut"
            ))
        })?;
    let mut names: Vec<String> = Vec::new();
    let mut high_water: Option<Option<TweetId>> = None;
    let mut exports = Vec::with_capacity(from);
    let mut parked = Vec::with_capacity(from);
    for shard in 0..from as u32 {
        let bytes = store.load(shard, epoch).map_err(io_err)?.ok_or_else(|| {
            CoreError::Checkpoint(format!(
                "shard {shard} epoch {epoch} vanished from the store"
            ))
        })?;
        let ckpt = SensorCheckpoint::decode(&bytes)?;
        if ckpt.shard_id != shard || ckpt.epoch != epoch {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint identity mismatch: file for shard {shard} epoch {epoch} \
                 claims shard {} epoch {}",
                ckpt.shard_id, ckpt.epoch
            )));
        }
        if ckpt.shard_count != from as u32 {
            return Err(CoreError::Checkpoint(format!(
                "mixed shard counts in the cut: shard 0 was taken at {from} shards \
                 but shard {shard} claims {}",
                ckpt.shard_count
            )));
        }
        let shard_names: Vec<String> = ckpt
            .campaign_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        if shard == 0 {
            names = shard_names;
        } else if names != shard_names {
            return Err(CoreError::Checkpoint(format!(
                "campaign rosters differ across the cut: shard 0 sensed {names:?} but \
                 shard {shard} sensed {shard_names:?} — a consistent cut never mixes rosters"
            )));
        }
        match high_water {
            None => high_water = Some(ckpt.router_high_water),
            Some(hw) if hw != ckpt.router_high_water => {
                return Err(CoreError::Checkpoint(format!(
                    "inconsistent cut: shard {shard} recorded high-water {:?}, \
                     group recorded {:?}",
                    ckpt.router_high_water, hw
                )));
            }
            Some(_) => {}
        }
        let mut shard_exports = Vec::with_capacity(1 + ckpt.extra_campaigns.len());
        shard_exports.push(ckpt.export);
        shard_exports.extend(ckpt.extra_campaigns.into_iter().map(|c| c.export));
        exports.push(shard_exports);
        parked.push(ckpt.parked);
    }
    let high_water = high_water.flatten();
    let cut = split_cut(exports, parked, to_shards);
    let (files_removed, bytes_written) = rewrite_store(store, epoch, high_water, &names, &cut)?;
    metrics.counter("reshard_runs_total").incr();
    metrics.counter("reshard_tracks_moved_total").add(cut.tracks_moved);
    metrics.counter("reshard_parked_moved_total").add(cut.parked_moved);
    metrics.counter("reshard_files_removed_total").add(files_removed);
    metrics.gauge("reshard_from_shards").set(from as u64);
    metrics.gauge("reshard_to_shards").set(to_shards as u64);
    metrics.gauge("reshard_epoch").set(epoch);
    Ok(ReshardReport {
        from_shards: from,
        to_shards,
        epoch,
        high_water,
        campaigns: names,
        tracks_total: cut.tracks_total,
        tracks_moved: cut.tracks_moved,
        parked_total: cut.parked_total,
        parked_moved: cut.parked_moved,
        files_removed,
        bytes_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemCheckpointStore;
    use crate::incremental::TrackExport;
    use donorpulse_text::extract::MentionCounts;
    use donorpulse_twitter::{SimInstant, UserId};
    use std::collections::BTreeMap;

    fn tweet(id: u64, user: u64) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(user),
            created_at: SimInstant(id),
            text: format!("kidney tweet {id}"),
            geo: None,
        }
    }

    fn export_for(users: &[u64], shard: usize, shards: usize) -> SensorExport {
        let mut tracks = BTreeMap::new();
        let mut high_water = None;
        for &u in users {
            if route_shard(UserId(u), shards) != shard {
                continue;
            }
            let t = tweet(u * 10, u);
            high_water = std::cmp::max(high_water, Some(t.id));
            tracks.insert(
                UserId(u),
                TrackExport {
                    state: None,
                    geo_locked: false,
                    tweets: vec![t],
                    mentions: MentionCounts::new(),
                },
            );
        }
        SensorExport {
            tracks,
            duplicates_ignored: shard as u64,
            high_water,
        }
    }

    fn seed_store(store: &MemCheckpointStore, shards: usize, epoch: u64, users: &[u64]) {
        for shard in 0..shards {
            let ckpt = SensorCheckpoint {
                shard_id: shard as u32,
                shard_count: shards as u32,
                epoch,
                router_high_water: Some(TweetId(users.iter().max().copied().unwrap_or(0) * 10)),
                export: export_for(users, shard, shards),
                parked: Vec::new(),
                campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
                extra_campaigns: Vec::new(),
            };
            store.save(shard as u32, epoch, &ckpt.encode()).unwrap();
        }
    }

    #[test]
    fn target_validation_rejects_zero_and_over_max() {
        let store = MemCheckpointStore::new();
        let metrics = MetricsRegistry::disabled();
        let err = reshard_checkpoints(&store, 0, &metrics).unwrap_err();
        assert!(err.to_string().contains("at least 1"), "{err}");
        let err = reshard_checkpoints(&store, MAX_SHARDS + 1, &metrics).unwrap_err();
        assert!(err.to_string().contains("ceiling"), "{err}");
    }

    #[test]
    fn empty_and_incomplete_stores_are_refused() {
        let store = MemCheckpointStore::new();
        let metrics = MetricsRegistry::disabled();
        let err = reshard_checkpoints(&store, 2, &metrics).unwrap_err();
        assert!(err.to_string().contains("no cut"), "{err}");
        // Shard 0 alone of a 2-shard layout: no complete epoch.
        let ckpt = SensorCheckpoint {
            shard_id: 0,
            shard_count: 2,
            epoch: 1,
            router_high_water: None,
            export: SensorExport::default(),
            parked: Vec::new(),
            campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: Vec::new(),
        };
        store.save(0, 1, &ckpt.encode()).unwrap();
        let err = reshard_checkpoints(&store, 3, &metrics).unwrap_err();
        assert!(err.to_string().contains("complete"), "{err}");
    }

    #[test]
    fn roster_mismatch_across_the_cut_is_refused() {
        let store = MemCheckpointStore::new();
        let metrics = MetricsRegistry::disabled();
        let base = SensorCheckpoint {
            shard_id: 0,
            shard_count: 2,
            epoch: 1,
            router_high_water: None,
            export: SensorExport::default(),
            parked: Vec::new(),
            campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: Vec::new(),
        };
        store.save(0, 1, &base.encode()).unwrap();
        let mut other = base.clone();
        other.shard_id = 1;
        other.extra_campaigns = vec![CampaignSection {
            name: "blood-drive".into(),
            export: SensorExport::default(),
        }];
        store.save(1, 1, &other.encode()).unwrap();
        let err = reshard_checkpoints(&store, 3, &metrics).unwrap_err();
        assert!(err.to_string().contains("rosters"), "{err}");
    }

    #[test]
    fn split_moves_every_track_to_its_new_owner() {
        let users: Vec<u64> = (0..200).collect();
        let store = MemCheckpointStore::new();
        seed_store(&store, 2, 7, &users);
        let metrics = MetricsRegistry::enabled();
        let report = reshard_checkpoints(&store, 3, &metrics).unwrap();
        assert_eq!(report.from_shards, 2);
        assert_eq!(report.to_shards, 3);
        assert_eq!(report.epoch, 7);
        assert_eq!(report.tracks_total, 200);
        assert_eq!(report.files_removed, 2);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("reshard_runs_total"), Some(1));
        assert_eq!(snap.gauge("reshard_to_shards"), Some(3));
        // The rewritten layout: 3 shards, each owning exactly its
        // users under the new modulus, duplicates summed onto shard 0.
        let mut seen = 0u64;
        let mut dup_sum = 0u64;
        for shard in 0..3u32 {
            let bytes = store.load(shard, 7).unwrap().expect("new layout file");
            let ckpt = SensorCheckpoint::decode(&bytes).unwrap();
            assert_eq!(ckpt.shard_count, 3);
            assert_eq!(ckpt.epoch, 7);
            dup_sum += ckpt.export.duplicates_ignored;
            for (&user, track) in &ckpt.export.tracks {
                assert_eq!(route_shard(user, 3), shard as usize, "misrouted {user:?}");
                assert!(
                    ckpt.export.high_water >= track.tweets.iter().map(|t| t.id).max(),
                    "high water below an owned tweet"
                );
                seen += 1;
            }
            // Pruned everything else.
            assert_eq!(store.epochs(shard).unwrap(), vec![7]);
        }
        assert_eq!(seen, 200, "tracks lost or duplicated by the split");
        assert_eq!(dup_sum, 0 + 1, "merged duplicates sum must be preserved");
    }

    #[test]
    fn reshard_to_same_count_is_a_compaction() {
        let users: Vec<u64> = (0..50).collect();
        let store = MemCheckpointStore::new();
        seed_store(&store, 2, 3, &users);
        seed_store(&store, 2, 9, &users);
        let report =
            reshard_checkpoints(&store, 2, &MetricsRegistry::disabled()).unwrap();
        assert_eq!(report.epoch, 9);
        assert_eq!(report.tracks_moved, 0, "same modulus moves nothing");
        for shard in 0..2u32 {
            assert_eq!(store.epochs(shard).unwrap(), vec![9]);
        }
    }

    #[test]
    fn parked_residue_is_dealt_in_stream_order() {
        let parked = vec![
            vec![tweet(5, 1), tweet(9, 3)],
            vec![tweet(2, 2), tweet(7, 4)],
        ];
        let cut = split_cut(vec![vec![SensorExport::default()]; 2], parked, 1);
        let ids: Vec<u64> = cut.parked[0].iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![2, 5, 7, 9], "park must re-interleave by tweet id");
        assert_eq!(cut.parked_total, 4);
    }
}
