//! Within-tweet organ co-occurrence — the paper's Sec. IV-A discussion.
//!
//! The paper argues that dual-organ transplantation (heart–kidney,
//! liver–kidney, kidney–pancreas) and cascading organ failures make
//! people "talk about them together in the same tweet". This module
//! measures that directly: a symmetric pair-count matrix over tweets
//! that mention two or more distinct organs, with *lift*
//! (`P(a,b) / (P(a)·P(b))`) as the association strength.
//!
//! Interpretation note: with 1.03 distinct organs per tweet (Table I),
//! ~97% of tweets mention exactly one organ, so per-tweet organ
//! indicators are strongly *negatively* dependent overall and absolute
//! lifts sit below 1 for every pair. The informative signal is the
//! *relative* ordering of lifts/counts across pairs — which recovers the
//! dual-transplant structure (kidney–pancreas, heart–kidney,
//! liver–kidney) the paper discusses.

use crate::{CoreError, Result};
use donorpulse_text::extract::OrganExtractor;
use donorpulse_text::Organ;
use donorpulse_twitter::Corpus;
use serde::Serialize;

/// Co-occurrence statistics over a corpus.
#[derive(Debug, Clone, Serialize)]
pub struct CoOccurrence {
    /// Tweets mentioning at least one organ.
    pub tweets_with_organs: u64,
    /// Tweets mentioning ≥ 2 distinct organs.
    pub multi_organ_tweets: u64,
    /// Per-organ tweet counts (tweet mentions organ at least once).
    pub organ_tweets: [u64; Organ::COUNT],
    /// Symmetric pair counts, indexed `[i][j]` with `i < j` populated.
    pair_counts: [[u64; Organ::COUNT]; Organ::COUNT],
}

/// One organ pair with its association measures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PairAssociation {
    /// First organ (lower canonical index).
    pub a: Organ,
    /// Second organ.
    pub b: Organ,
    /// Tweets mentioning both.
    pub count: u64,
    /// Lift `P(a,b) / (P(a)·P(b))`.
    pub lift: f64,
    /// Jaccard overlap `|a∩b| / |a∪b|`.
    pub jaccard: f64,
}

impl CoOccurrence {
    /// Scans the corpus once.
    pub fn compute(corpus: &Corpus) -> Result<Self> {
        if corpus.is_empty() {
            return Err(CoreError::EmptyCorpus {
                what: "co-occurrence",
            });
        }
        let extractor = OrganExtractor::new();
        let mut organ_tweets = [0u64; Organ::COUNT];
        let mut pair_counts = [[0u64; Organ::COUNT]; Organ::COUNT];
        let mut tweets_with_organs = 0;
        let mut multi_organ_tweets = 0;
        for t in corpus.tweets() {
            let mc = extractor.extract(&t.text);
            let present: Vec<Organ> = Organ::ALL
                .into_iter()
                .filter(|&o| mc.count(o) > 0)
                .collect();
            if present.is_empty() {
                continue;
            }
            tweets_with_organs += 1;
            if present.len() >= 2 {
                multi_organ_tweets += 1;
            }
            for &o in &present {
                organ_tweets[o.index()] += 1;
            }
            for (k, &a) in present.iter().enumerate() {
                for &b in &present[k + 1..] {
                    pair_counts[a.index()][b.index()] += 1;
                }
            }
        }
        if tweets_with_organs == 0 {
            return Err(CoreError::EmptyCorpus {
                what: "co-occurrence (no organ mentions)",
            });
        }
        Ok(Self {
            tweets_with_organs,
            multi_organ_tweets,
            organ_tweets,
            pair_counts,
        })
    }

    /// Tweets mentioning both organs (order-insensitive).
    pub fn pair_count(&self, a: Organ, b: Organ) -> u64 {
        let (i, j) = if a.index() <= b.index() {
            (a.index(), b.index())
        } else {
            (b.index(), a.index())
        };
        if i == j {
            return self.organ_tweets[i];
        }
        self.pair_counts[i][j]
    }

    /// Association measures for every pair with at least one co-mention,
    /// sorted by descending lift.
    pub fn associations(&self) -> Vec<PairAssociation> {
        let n = self.tweets_with_organs as f64;
        let mut out = Vec::new();
        for i in 0..Organ::COUNT {
            for j in (i + 1)..Organ::COUNT {
                let count = self.pair_counts[i][j];
                if count == 0 {
                    continue;
                }
                let pa = self.organ_tweets[i] as f64 / n;
                let pb = self.organ_tweets[j] as f64 / n;
                let pab = count as f64 / n;
                let union = self.organ_tweets[i] + self.organ_tweets[j] - count;
                out.push(PairAssociation {
                    a: Organ::from_index(i).expect("organ index"),
                    b: Organ::from_index(j).expect("organ index"),
                    count,
                    lift: pab / (pa * pb),
                    jaccard: count as f64 / union as f64,
                });
            }
        }
        out.sort_by(|x, y| y.lift.partial_cmp(&x.lift).expect("finite lift"));
        out
    }

    /// Plain-text summary of the strongest pairs.
    pub fn render(&self, top: usize) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "ORGAN CO-OCCURRENCE ({} multi-organ tweets of {})\n",
            self.multi_organ_tweets, self.tweets_with_organs
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>9}",
            "pair", "tweets", "lift", "jaccard"
        );
        for p in self.associations().into_iter().take(top) {
            let _ = writeln!(
                out,
                "{:<22} {:>8} {:>8.2} {:>9.4}",
                format!("{}+{}", p.a.name(), p.b.name()),
                p.count,
                p.lift,
                p.jaccard
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::shared_run;
    use donorpulse_twitter::{SimInstant, Tweet, TweetId, UserId};

    fn tweet(id: u64, text: &str) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(id),
            created_at: SimInstant(id),
            text: text.to_string(),
            geo: None,
        }
    }

    #[test]
    fn counts_pairs_in_synthetic_corpus() {
        let corpus = Corpus::from_tweets([
            tweet(0, "heart and kidney transplant"),
            tweet(1, "heart donor"),
            tweet(2, "kidney and pancreas donation"),
            tweet(3, "heart kidney liver triple feature"),
            tweet(4, "no organs here"),
        ]);
        let co = CoOccurrence::compute(&corpus).unwrap();
        assert_eq!(co.tweets_with_organs, 4);
        assert_eq!(co.multi_organ_tweets, 3);
        assert_eq!(co.pair_count(Organ::Heart, Organ::Kidney), 2);
        assert_eq!(co.pair_count(Organ::Kidney, Organ::Heart), 2);
        assert_eq!(co.pair_count(Organ::Kidney, Organ::Pancreas), 1);
        assert_eq!(co.pair_count(Organ::Heart, Organ::Pancreas), 0);
        // Self "pair" returns the organ's tweet count.
        assert_eq!(co.pair_count(Organ::Heart, Organ::Heart), 3);
    }

    #[test]
    fn planted_pair_structure_recovered() {
        // Dual-mention tweets draw the second organ from the user's
        // co-attention, so pair counts must mirror that structure even
        // though absolute lifts are < 1 (see the module docs).
        let run = shared_run();
        let co = CoOccurrence::compute(&run.usa).unwrap();
        let assoc = co.associations();
        assert!(!assoc.is_empty());
        // Heart+kidney is the most common pair outright (two most
        // popular organs, strong mutual co-attention).
        let max_count = assoc.iter().map(|p| p.count).max().unwrap();
        assert_eq!(
            co.pair_count(Organ::Heart, Organ::Kidney),
            max_count,
            "{assoc:?}"
        );
        // Pancreas pairs with kidney far more than with heart
        // (kidney-pancreas dual transplants; coatt[pancreas][kidney]=.5).
        assert!(
            co.pair_count(Organ::Kidney, Organ::Pancreas)
                > co.pair_count(Organ::Heart, Organ::Pancreas),
            "{assoc:?}"
        );
        // Associations are sorted by lift descending, all positive.
        for pair in assoc.windows(2) {
            assert!(pair[0].lift >= pair[1].lift);
        }
        assert!(assoc.iter().all(|p| p.lift > 0.0 && p.lift.is_finite()));
        // And multi-organ tweets are the small minority (organs/tweet
        // 1.03): under 10% of organ-bearing tweets.
        assert!(co.multi_organ_tweets * 10 < co.tweets_with_organs);
    }

    #[test]
    fn jaccard_bounded_and_consistent() {
        let corpus = Corpus::from_tweets([
            tweet(0, "heart kidney"),
            tweet(1, "heart kidney"),
            tweet(2, "heart"),
        ]);
        let co = CoOccurrence::compute(&corpus).unwrap();
        let assoc = co.associations();
        let hk = assoc
            .iter()
            .find(|p| p.a == Organ::Heart && p.b == Organ::Kidney)
            .unwrap();
        // |a∩b| = 2, |a∪b| = 3.
        assert!((hk.jaccard - 2.0 / 3.0).abs() < 1e-12);
        assert!(hk.lift > 0.0);
    }

    #[test]
    fn empty_corpus_rejected() {
        assert!(CoOccurrence::compute(&Corpus::new()).is_err());
        let no_organs = Corpus::from_tweets([tweet(0, "hello world")]);
        assert!(CoOccurrence::compute(&no_organs).is_err());
    }

    #[test]
    fn render_lists_pairs() {
        let corpus = Corpus::from_tweets([tweet(0, "heart kidney donor")]);
        let co = CoOccurrence::compute(&corpus).unwrap();
        let text = co.render(5);
        assert!(text.contains("heart+kidney"));
    }
}
