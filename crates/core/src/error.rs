use std::fmt;

/// Errors produced by the characterization pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// The corpus contains no usable users for the requested operation.
    EmptyCorpus {
        /// What was being computed.
        what: &'static str,
    },
    /// A membership grouping produced no groups (e.g. no located users).
    NoGroups {
        /// What was being grouped.
        what: &'static str,
    },
    /// Linear algebra failed (singular LᵀL and similar).
    Linalg(donorpulse_linalg::LinalgError),
    /// A statistics routine failed.
    Stats(donorpulse_stats::StatsError),
    /// Clustering failed.
    Cluster(donorpulse_cluster::ClusterError),
    /// Simulation/generation failed.
    Simulation(String),
    /// Invalid caller-supplied parameter.
    InvalidParameter(String),
    /// Checkpoint serialization, storage, or resume consistency failed.
    Checkpoint(String),
    /// Campaign manifest parsing or registry validation failed.
    Campaign(String),
    /// Serving-layer failure: socket bind/IO, daemon wiring, or a
    /// snapshot render that could not complete.
    Serve(String),
    /// Process-group failure: worker spawn/handshake/supervision, the
    /// inter-process wire, or an unhealable worker death.
    Proc(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyCorpus { what } => write!(f, "{what}: empty corpus"),
            CoreError::NoGroups { what } => write!(f, "{what}: no nonempty groups"),
            CoreError::Linalg(e) => write!(f, "linear algebra: {e}"),
            CoreError::Stats(e) => write!(f, "statistics: {e}"),
            CoreError::Cluster(e) => write!(f, "clustering: {e}"),
            CoreError::Simulation(msg) => write!(f, "simulation: {msg}"),
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::Checkpoint(msg) => write!(f, "checkpoint: {msg}"),
            CoreError::Campaign(msg) => write!(f, "campaign: {msg}"),
            CoreError::Serve(msg) => write!(f, "serve: {msg}"),
            CoreError::Proc(msg) => write!(f, "procgroup: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Linalg(e) => Some(e),
            CoreError::Stats(e) => Some(e),
            CoreError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<donorpulse_linalg::LinalgError> for CoreError {
    fn from(e: donorpulse_linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<donorpulse_stats::StatsError> for CoreError {
    fn from(e: donorpulse_stats::StatsError) -> Self {
        CoreError::Stats(e)
    }
}

impl From<donorpulse_cluster::ClusterError> for CoreError {
    fn from(e: donorpulse_cluster::ClusterError) -> Self {
        CoreError::Cluster(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::EmptyCorpus { what: "attention" };
        assert!(e.to_string().contains("attention"));
        assert!(e.source().is_none());
        let l: CoreError = donorpulse_linalg::LinalgError::Singular.into();
        assert!(l.to_string().contains("singular"));
        assert!(l.source().is_some());
    }
}
