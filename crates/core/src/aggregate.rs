//! Eq. 3: `K = (LᵀL)⁻¹ Lᵀ Û` — aggregation of users into group
//! characterizations.
//!
//! For a disjoint 0/1 membership this is exactly the per-group mean of
//! `Û` rows, but we evaluate the published formula through the linear
//! algebra substrate so weighted/overlapping memberships work unchanged.

use crate::membership::Membership;
use crate::Result;
use donorpulse_linalg::Matrix;
use donorpulse_text::Organ;
use serde::Serialize;

/// The aggregation `K` with labeled rows.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Aggregation<G> {
    /// Row labels (groups, in membership column order).
    pub groups: Vec<G>,
    /// Group sizes.
    pub sizes: Vec<usize>,
    /// The `g × n` matrix `K`; each row is that group's mean attention
    /// distribution over the six organs.
    pub matrix: Matrix,
}

impl<G: Copy> Aggregation<G> {
    /// Evaluates Eq. 3 against the (already row-subset) attention matrix
    /// `u_hat`. `membership.matrix` must have the same number of rows.
    pub fn compute(membership: &Membership<G>, u_hat: &Matrix) -> Result<Self> {
        let l = &membership.matrix;
        let lt = l.transpose();
        let ltl = lt.matmul(l)?;
        let k = ltl.inverse()?.matmul(&lt)?.matmul(u_hat)?;
        Ok(Self {
            groups: membership.groups.clone(),
            sizes: membership.sizes.clone(),
            matrix: k,
        })
    }

    /// Evaluates the same least-squares problem through a Householder QR
    /// factorization of `L` instead of the normal equations — numerically
    /// preferable for weighted/overlapping memberships, identical (up to
    /// floating point) for the paper's 0/1 disjoint case.
    pub fn compute_via_qr(membership: &Membership<G>, u_hat: &Matrix) -> Result<Self> {
        let k = membership.matrix.least_squares(u_hat)?;
        Ok(Self {
            groups: membership.groups.clone(),
            sizes: membership.sizes.clone(),
            matrix: k,
        })
    }

    /// The characterization row of one group, by label.
    pub fn row_for(&self, group: G) -> Option<&[f64]>
    where
        G: PartialEq,
    {
        self.groups
            .iter()
            .position(|&g| g == group)
            .map(|i| self.matrix.row(i))
    }

    /// Organ attention values for a row, ranked descending — the
    /// "ranked bins" presentation of Figs. 3–4.
    pub fn ranked_row(&self, i: usize) -> Vec<(Organ, f64)> {
        let row = self.matrix.row(i);
        let mut pairs: Vec<(Organ, f64)> = Organ::ALL
            .into_iter()
            .map(|o| (o, row[o.index()]))
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite attention"));
        pairs
    }

    /// All rows as plain vectors (for clustering).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        self.matrix.iter_rows().map(<[f64]>::to_vec).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::AttentionMatrix;
    use crate::membership::by_dominant_organ;
    use donorpulse_text::extract::MentionCounts;
    use donorpulse_twitter::UserId;
    use std::collections::HashMap;

    fn am() -> AttentionMatrix {
        let mut map = HashMap::new();
        // Two heart-dominant users with different minor attention, one
        // kidney-dominant user.
        let mut a = MentionCounts::new();
        a.add(Organ::Heart, 8);
        a.add(Organ::Kidney, 2);
        map.insert(UserId(1), a);
        let mut b = MentionCounts::new();
        b.add(Organ::Heart, 6);
        b.add(Organ::Liver, 4);
        map.insert(UserId(2), b);
        let mut c = MentionCounts::new();
        c.add(Organ::Kidney, 5);
        map.insert(UserId(3), c);
        AttentionMatrix::from_mentions(&map).unwrap()
    }

    #[test]
    fn aggregation_is_group_mean() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let k = Aggregation::compute(&membership, attention.matrix()).unwrap();
        // Heart group = users 1 and 2: mean of (.8,.2,0,...) and (.6,0,.4,...)
        let heart = k.row_for(Organ::Heart).unwrap();
        assert!((heart[Organ::Heart.index()] - 0.7).abs() < 1e-12);
        assert!((heart[Organ::Kidney.index()] - 0.1).abs() < 1e-12);
        assert!((heart[Organ::Liver.index()] - 0.2).abs() < 1e-12);
        // Kidney group = user 3 alone.
        let kidney = k.row_for(Organ::Kidney).unwrap();
        assert_eq!(kidney[Organ::Kidney.index()], 1.0);
    }

    #[test]
    fn qr_path_matches_normal_equations() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let ne = Aggregation::compute(&membership, attention.matrix()).unwrap();
        let qr = Aggregation::compute_via_qr(&membership, attention.matrix()).unwrap();
        assert!(qr.matrix.approx_eq(&ne.matrix, 1e-9));
        assert_eq!(qr.groups, ne.groups);
    }

    #[test]
    fn rows_of_k_are_stochastic() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let k = Aggregation::compute(&membership, attention.matrix()).unwrap();
        for i in 0..k.matrix.rows() {
            let s: f64 = k.matrix.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn ranked_row_descending() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let k = Aggregation::compute(&membership, attention.matrix()).unwrap();
        let ranked = k.ranked_row(0);
        assert_eq!(ranked[0].0, Organ::Heart);
        for pair in ranked.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn row_for_unknown_group_is_none() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let k = Aggregation::compute(&membership, attention.matrix()).unwrap();
        assert!(k.row_for(Organ::Intestine).is_none());
    }

    #[test]
    fn rows_export() {
        let attention = am();
        let membership = by_dominant_organ(&attention).unwrap();
        let k = Aggregation::compute(&membership, attention.matrix()).unwrap();
        let rows = k.rows();
        assert_eq!(rows.len(), k.groups.len());
        assert_eq!(rows[0].len(), Organ::COUNT);
    }
}
