//! The end-to-end pipeline of Sec. III-A:
//!
//! ```text
//! firehose --(Q filter via Stream API)--> collected tweets
//!          --(augment: geo-tag > profile via geocoder)--> located users
//!          --(keep USA)--> usa corpus
//!          --(Û, L, K, RR, clusterings)--> characterizations
//! ```
//!
//! [`Pipeline::run`] executes everything and returns a [`PipelineRun`]
//! holding every artifact the paper's tables and figures are derived
//! from.

use crate::aggregate::Aggregation;
use crate::attention::AttentionMatrix;
use crate::membership::{by_dominant_organ, by_region};
use crate::region_view::RegionCharacterization;
use crate::relative_risk::RiskMap;
use crate::state_clusters::StateClustering;
use crate::user_clusters::{UserClustering, UserClusteringConfig};
use crate::{CoreError, Result};
use donorpulse_geo::{Geocoder, UsState};
use donorpulse_linalg::Matrix;
use donorpulse_text::{KeywordQuery, Organ};
use donorpulse_twitter::{Corpus, GeneratorConfig, TwitterSimulation, UserId};
use std::collections::HashMap;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The generative model for the simulated platform.
    pub generator: GeneratorConfig,
    /// Significance level for relative-risk highlighting (paper: 0.05).
    pub alpha: f64,
    /// User-clustering sweep configuration.
    pub user_clustering: UserClusteringConfig,
    /// Whether to run the (comparatively expensive) K-Means stage.
    pub run_user_clustering: bool,
    /// Worker threads for stream collection (0 = use all available
    /// cores). Collection output is identical regardless of the count.
    pub collection_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            generator: GeneratorConfig::default(),
            alpha: 0.05,
            user_clustering: UserClusteringConfig::default(),
            run_user_clustering: true,
            collection_threads: 0,
        }
    }
}

impl PipelineConfig {
    /// Paper configuration scaled by `scale` (see
    /// [`GeneratorConfig::paper_scaled`]).
    pub fn paper_scaled(scale: f64) -> Self {
        Self {
            generator: GeneratorConfig::paper_scaled(scale),
            ..Self::default()
        }
    }
}

/// The pipeline: a geocoder plus configuration.
#[derive(Debug, Default)]
pub struct Pipeline {
    geocoder: Geocoder,
}

/// Everything a pipeline execution produces.
#[derive(Debug)]
pub struct PipelineRun {
    /// Configuration used.
    pub config: PipelineConfig,
    /// Size of the simulated firehose (on-topic + chatter).
    pub firehose_tweets: u64,
    /// Tweets collected by the `Q` filter (any location) — the paper's
    /// 975,021.
    pub collected_tweets: u64,
    /// The USA-user corpus — the paper's 134,986 tweets.
    pub usa: Corpus,
    /// Resolved state per located user.
    pub user_states: HashMap<UserId, UsState>,
    /// Users confidently outside the USA (for the accounting note under
    /// Table I).
    pub non_us_users: u64,
    /// Users that could not be located at all.
    pub unlocated_users: u64,
    /// `Û` over USA users.
    pub attention: AttentionMatrix,
    /// Eq. 1 + Eq. 3: organ characterization (Fig. 3).
    pub organ_k: Aggregation<Organ>,
    /// Eq. 2 + Eq. 3: state characterization (Fig. 4).
    pub region_k: Aggregation<UsState>,
    /// Fig. 4 signature view.
    pub regions: RegionCharacterization,
    /// Eq. 4: relative risks (Fig. 5).
    pub risk: RiskMap,
    /// Fig. 6: state clustering.
    pub state_clusters: StateClustering,
    /// Fig. 7: user clustering (present unless disabled).
    pub user_clusters: Option<UserClustering>,
}

impl Pipeline {
    /// Builds a pipeline (compiles the offline geocoder).
    pub fn new() -> Self {
        Self {
            geocoder: Geocoder::new(),
        }
    }

    /// The geocoder in use.
    pub fn geocoder(&self) -> &Geocoder {
        &self.geocoder
    }

    /// Generates the platform and runs the full pipeline.
    pub fn run(&self, config: PipelineConfig) -> Result<PipelineRun> {
        let sim = TwitterSimulation::generate(config.generator.clone())
            .map_err(CoreError::Simulation)?;
        self.run_on(&sim, config)
    }

    /// Runs the pipeline on an existing simulation.
    pub fn run_on(&self, sim: &TwitterSimulation, config: PipelineConfig) -> Result<PipelineRun> {
        // --- Collection: Stream API + Q filter. -----------------------
        // Realization is pure in (seed, index), so collection is
        // parallelized across cores; the result is byte-identical to a
        // serial stream read.
        let query = KeywordQuery::paper();
        let threads = if config.collection_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.collection_threads
        };
        let collected: Corpus = sim.collect_parallel(&query, threads);
        let collected_tweets = collected.len() as u64;

        // --- Augmentation: locate every collecting user. --------------
        // Geo-tag (from any of the user's collected tweets) outranks the
        // profile string, exactly as in Sec. III-A.
        let mut first_geo: HashMap<UserId, (f64, f64)> = HashMap::new();
        for t in collected.tweets() {
            if let Some(geo) = t.geo {
                first_geo.entry(t.user).or_insert(geo);
            }
        }
        let mut user_states: HashMap<UserId, UsState> = HashMap::new();
        let mut non_us_users = 0u64;
        let mut unlocated_users = 0u64;
        let mut seen: std::collections::HashSet<UserId> = std::collections::HashSet::new();
        for t in collected.tweets() {
            if !seen.insert(t.user) {
                continue;
            }
            let profile = &sim.users()[t.user.0 as usize].profile_location;
            let located = self
                .geocoder
                .locate(Some(profile), first_geo.get(&t.user).copied());
            match located.state {
                Some(state) => {
                    user_states.insert(t.user, state);
                }
                None if located.non_us => non_us_users += 1,
                None => unlocated_users += 1,
            }
        }

        // --- USA filter. -----------------------------------------------
        let mut usa = collected;
        usa.retain(|t| user_states.contains_key(&t.user));
        if usa.is_empty() {
            return Err(CoreError::EmptyCorpus {
                what: "usa corpus",
            });
        }

        // --- Characterizations. ----------------------------------------
        let attention = AttentionMatrix::from_corpus(&usa)?;

        let organ_membership = by_dominant_organ(&attention)?;
        let organ_k = Aggregation::compute(&organ_membership, attention.matrix())?;

        let (region_membership, region_rows) = by_region(&attention, &user_states)?;
        let region_u = subset_rows(attention.matrix(), &region_rows)?;
        let region_k = Aggregation::compute(&region_membership, &region_u)?;
        let regions = RegionCharacterization::new(&region_k);

        let risk = RiskMap::compute(&attention, &user_states, config.alpha)?;
        let state_clusters = StateClustering::compute(&region_k)?;

        let user_clusters = if config.run_user_clustering {
            Some(UserClustering::fit(&attention, config.user_clustering)?)
        } else {
            None
        };

        Ok(PipelineRun {
            firehose_tweets: sim.firehose_len() as u64,
            collected_tweets,
            usa,
            user_states,
            non_us_users,
            unlocated_users,
            attention,
            organ_k,
            region_k,
            regions,
            risk,
            state_clusters,
            user_clusters,
            config,
        })
    }
}

/// Extracts the given rows of a matrix into a new matrix.
fn subset_rows(m: &Matrix, rows: &[usize]) -> Result<Matrix> {
    let data: Vec<Vec<f64>> = rows.iter().map(|&i| m.row(i).to_vec()).collect();
    Ok(Matrix::from_rows(&data)?)
}

impl PipelineRun {
    /// Fraction of collected tweets attributable to USA users — the
    /// paper's "134,986 out of 975,021" footnote (≈ 13.8%).
    pub fn usa_fraction(&self) -> f64 {
        if self.collected_tweets == 0 {
            return 0.0;
        }
        self.usa.len() as f64 / self.collected_tweets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::shared_run;

    fn run() -> &'static PipelineRun {
        shared_run()
    }

    #[test]
    fn end_to_end_accounting_holds() {
        let r = run();
        // Collected is a strict subset of the firehose.
        assert!(r.collected_tweets > 0);
        assert!(r.collected_tweets < r.firehose_tweets);
        // USA corpus is a strict subset of collected.
        assert!(!r.usa.is_empty());
        assert!((r.usa.len() as u64) < r.collected_tweets);
        // USA fraction lands near the paper's 13.8%.
        let frac = r.usa_fraction();
        assert!(
            (0.10..=0.18).contains(&frac),
            "usa fraction {frac} out of range"
        );
        // Every located user has a state; no overlap with rejected sets.
        assert!(!r.user_states.is_empty());
    }

    #[test]
    fn attention_covers_usa_users() {
        let r = run();
        assert_eq!(r.attention.user_count(), r.usa.user_count());
    }

    #[test]
    fn organ_characterization_rows_stochastic() {
        let r = run();
        for i in 0..r.organ_k.matrix.rows() {
            let s: f64 = r.organ_k.matrix.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // All six organs present as groups at this scale.
        assert_eq!(r.organ_k.groups.len(), 6);
    }

    #[test]
    fn organ_self_attention_dominates() {
        // Users grouped by dominant organ should, on average, attend to
        // that organ the most — the diagonal of K dominates its row.
        let r = run();
        for (i, &organ) in r.organ_k.groups.iter().enumerate() {
            let row = r.organ_k.matrix.row(i);
            let self_att = row[organ.index()];
            for (j, &v) in row.iter().enumerate() {
                if j != organ.index() {
                    assert!(
                        self_att > v,
                        "{organ}: self {self_att} <= other {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn region_characterization_covers_located_states() {
        let r = run();
        assert!(r.region_k.groups.len() >= 40, "too few states: {}", r.region_k.groups.len());
        assert_eq!(r.regions.signatures.len(), r.region_k.groups.len());
        // Heart tops nearly every state (the motivation for RR). The
        // least-populous states have few users even at this scale, so
        // require 75% rather than unanimity.
        let heart_top = r
            .region_k
            .groups
            .iter()
            .filter(|&&s| r.regions.top_organ(s) == Some(Organ::Heart))
            .count();
        assert!(
            heart_top * 4 >= r.region_k.groups.len() * 3,
            "heart tops only {heart_top}/{}",
            r.region_k.groups.len()
        );
    }

    #[test]
    fn user_clustering_present_and_sized() {
        let r = run();
        let uc = r.user_clusters.as_ref().expect("clustering enabled");
        assert!(uc.chosen_k >= 6);
        assert_eq!(
            uc.profiles().iter().map(|p| p.size).sum::<usize>(),
            r.attention.user_count()
        );
    }

    #[test]
    fn disabling_user_clustering_skips_it() {
        let mut config = PipelineConfig::paper_scaled(0.005);
        config.run_user_clustering = false;
        let r = Pipeline::new().run(config).unwrap();
        assert!(r.user_clusters.is_none());
    }
}
