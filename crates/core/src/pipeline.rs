//! The end-to-end pipeline of Sec. III-A:
//!
//! ```text
//! firehose --(Q filter via Stream API)--------> collected tweets
//!          --(augment: geo-tag > profile)-----> located users
//!          --(keep USA)------------------------> usa corpus
//!          --(Û per-user attention, Sec. III-B)> attention matrix
//!          --(L, K = (LᵀL)⁻¹LᵀÛ, Eqs. 1–3)----> organ + state characterizations
//!          --(relative risk, Eq. 4)------------> highlighted state anomalies
//!          --(Bhattacharyya agglomerative)-----> state clustering   (Fig. 6)
//!          --(K-Means sweep + silhouette)------> user clustering    (Fig. 7)
//! ```
//!
//! [`Pipeline::run`] executes everything and returns a [`PipelineRun`]
//! holding every artifact the paper's tables and figures are derived
//! from.
//!
//! Every stage is instrumented through the [`donorpulse_obs`] layer:
//! [`PipelineConfig::metrics`] carries a [`MetricsRegistry`], each stage
//! runs under a named span with an item count, and domain counters
//! (firehose tweets seen, tweets matched by `Q`, geocoder hits by
//! source, K-Means iterations, …) accumulate along the way. The
//! resulting [`RunMetrics`] snapshot is attached to the run. With the
//! default disabled registry all of this is a no-op; the metric catalog
//! lives in `docs/OBSERVABILITY.md`.

use crate::aggregate::Aggregation;
use crate::attention::AttentionMatrix;
use crate::membership::{by_dominant_organ, by_region};
use crate::region_view::RegionCharacterization;
use crate::relative_risk::RiskMap;
use crate::state_clusters::StateClustering;
use crate::user_clusters::{UserClustering, UserClusteringConfig};
use crate::{CoreError, Result};
use donorpulse_cluster::par;
use donorpulse_geo::{Geocoder, LocationSource, UsState};
use donorpulse_linalg::Matrix;
use donorpulse_obs::{MetricsRegistry, MetricsSnapshot};
use donorpulse_text::{KeywordQuery, MentionCounts, Organ};
use donorpulse_twitter::{Corpus, GeneratorConfig, TwitterSimulation, UserId};
use std::collections::HashMap;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The generative model for the simulated platform.
    pub generator: GeneratorConfig,
    /// Significance level for relative-risk highlighting (paper: 0.05).
    pub alpha: f64,
    /// User-clustering sweep configuration.
    pub user_clustering: UserClusteringConfig,
    /// Whether to run the (comparatively expensive) K-Means stage.
    pub run_user_clustering: bool,
    /// Worker threads for stream collection (0 = use all available
    /// cores). Collection output is identical regardless of the count.
    pub collection_threads: usize,
    /// Worker threads for the analytics back-half — the K-Means sweep,
    /// silhouette scoring, and the state distance matrix (0 = use all
    /// available cores). Every kernel reduces through a fixed-order
    /// chunked merge, so all clustering artifacts are bit-identical
    /// regardless of the count.
    pub compute_threads: usize,
    /// Observability registry threaded through every stage. The default
    /// is the no-op [`MetricsRegistry::disabled`], which records
    /// nothing and costs nothing; pass [`MetricsRegistry::enabled`] to
    /// collect the [`RunMetrics`] snapshot (identical artifacts either
    /// way — see the equivalence test in this module).
    pub metrics: MetricsRegistry,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            generator: GeneratorConfig::default(),
            alpha: 0.05,
            user_clustering: UserClusteringConfig::default(),
            run_user_clustering: true,
            collection_threads: 0,
            compute_threads: 0,
            metrics: MetricsRegistry::disabled(),
        }
    }
}

impl PipelineConfig {
    /// Paper configuration scaled by `scale` (see
    /// [`GeneratorConfig::paper_scaled`]).
    pub fn paper_scaled(scale: f64) -> Self {
        Self {
            generator: GeneratorConfig::paper_scaled(scale),
            ..Self::default()
        }
    }
}

/// The pipeline: a geocoder plus configuration.
#[derive(Debug, Default)]
pub struct Pipeline {
    geocoder: Geocoder,
}

/// The per-run observability snapshot attached to every
/// [`PipelineRun`]: one [`donorpulse_obs::StageSnapshot`] per executed
/// stage (wall time + items processed, hence tweets/sec) plus the
/// domain counters and gauges. Empty when the run was configured with
/// the default disabled registry. Counter, gauge, and item values are
/// deterministic for a fixed seed; only wall times vary.
pub type RunMetrics = MetricsSnapshot;

/// Everything a pipeline execution produces.
#[derive(Debug)]
pub struct PipelineRun {
    /// Configuration used.
    pub config: PipelineConfig,
    /// Size of the simulated firehose (on-topic + chatter).
    pub firehose_tweets: u64,
    /// Tweets collected by the `Q` filter (any location) — the paper's
    /// 975,021.
    pub collected_tweets: u64,
    /// The USA-user corpus — the paper's 134,986 tweets.
    pub usa: Corpus,
    /// Resolved state per located user.
    pub user_states: HashMap<UserId, UsState>,
    /// Users confidently outside the USA (for the accounting note under
    /// Table I).
    pub non_us_users: u64,
    /// Users that could not be located at all.
    pub unlocated_users: u64,
    /// `Û` over USA users.
    pub attention: AttentionMatrix,
    /// Eq. 1 + Eq. 3: organ characterization (Fig. 3).
    pub organ_k: Aggregation<Organ>,
    /// Eq. 2 + Eq. 3: state characterization (Fig. 4).
    pub region_k: Aggregation<UsState>,
    /// Fig. 4 signature view.
    pub regions: RegionCharacterization,
    /// Eq. 4: relative risks (Fig. 5).
    pub risk: RiskMap,
    /// Fig. 6: state clustering.
    pub state_clusters: StateClustering,
    /// Fig. 7: user clustering (present unless disabled).
    pub user_clusters: Option<UserClustering>,
    /// Per-stage timings and domain counters (empty unless the run was
    /// configured with an enabled [`MetricsRegistry`]).
    pub metrics: RunMetrics,
}

impl Pipeline {
    /// Builds a pipeline (compiles the offline geocoder).
    pub fn new() -> Self {
        Self {
            geocoder: Geocoder::new(),
        }
    }

    /// The geocoder in use.
    pub fn geocoder(&self) -> &Geocoder {
        &self.geocoder
    }

    /// Generates the platform and runs the full pipeline.
    pub fn run(&self, config: PipelineConfig) -> Result<PipelineRun> {
        let mut span = config.metrics.stage("generate");
        let sim =
            TwitterSimulation::generate(config.generator.clone()).map_err(CoreError::Simulation)?;
        span.set_items(sim.firehose_len() as u64);
        span.finish();
        self.run_on(&sim, config)
    }

    /// Runs the pipeline on an existing simulation.
    ///
    /// Each stage runs under a span named after itself (`collect`,
    /// `locate_users`, `usa_filter`, `attention`, `characterize_organ`,
    /// `characterize_region`, `relative_risk`, `state_clusters`,
    /// `user_clusters`) in `config.metrics`; the final snapshot rides
    /// on [`PipelineRun::metrics`].
    pub fn run_on(&self, sim: &TwitterSimulation, config: PipelineConfig) -> Result<PipelineRun> {
        let metrics = config.metrics.clone();
        let firehose_tweets = sim.firehose_len() as u64;
        metrics
            .counter("firehose_tweets_total")
            .add(firehose_tweets);

        // --- Collection: Stream API + Q filter. -----------------------
        // Realization is pure in (seed, index), so collection is
        // parallelized across cores; the result is byte-identical to a
        // serial stream read. Each worker reports its matched batch to
        // the collection counter concurrently.
        let query = KeywordQuery::paper();
        let threads = par::resolve_threads(config.collection_threads);
        let compute_threads = par::resolve_threads(config.compute_threads);
        metrics.gauge("collect_threads").set(threads as u64);
        metrics.gauge("compute_threads").set(compute_threads as u64);
        let mut span = metrics.stage("collect");
        let matched = metrics.counter("collected_tweets_total");
        let collected: Corpus =
            sim.collect_parallel_observed(&query, threads, &|batch| matched.add(batch));
        span.set_items(firehose_tweets);
        span.finish();
        let collected_tweets = collected.len() as u64;

        // --- Augmentation: locate every collecting user. --------------
        // Geo-tag (from any of the user's collected tweets) outranks the
        // profile string, exactly as in Sec. III-A.
        let mut span = metrics.stage("locate_users");
        let by_geotag = metrics.counter("geo_source_geotag_total");
        let by_profile = metrics.counter("geo_source_profile_total");
        let cache_hits_before = self.geocoder.cache_hits();
        let mut first_geo: HashMap<UserId, (f64, f64)> = HashMap::new();
        for t in collected.tweets() {
            if let Some(geo) = t.geo {
                first_geo.entry(t.user).or_insert(geo);
            }
        }
        let mut user_states: HashMap<UserId, UsState> = HashMap::new();
        let mut non_us_users = 0u64;
        let mut unlocated_users = 0u64;
        let mut seen: std::collections::HashSet<UserId> = std::collections::HashSet::new();
        for t in collected.tweets() {
            if !seen.insert(t.user) {
                continue;
            }
            let profile = &sim.users()[t.user.0 as usize].profile_location;
            let located = self
                .geocoder
                .locate(Some(profile), first_geo.get(&t.user).copied());
            match located.state {
                Some(state) => {
                    match located.source {
                        LocationSource::GeoTag => by_geotag.incr(),
                        LocationSource::Profile => by_profile.incr(),
                        LocationSource::Unlocated => {}
                    }
                    user_states.insert(t.user, state);
                }
                None if located.non_us => non_us_users += 1,
                None => unlocated_users += 1,
            }
        }
        metrics
            .counter("geo_users_located_total")
            .add(user_states.len() as u64);
        metrics.counter("geo_users_non_us_total").add(non_us_users);
        metrics
            .counter("geo_users_unlocated_total")
            .add(unlocated_users);
        // Hits the memoized profile parser served during this stage
        // (delta, so reusing one Pipeline across runs stays per-run).
        metrics
            .counter("geo_cache_hits_total")
            .add(self.geocoder.cache_hits() - cache_hits_before);
        span.set_items(seen.len() as u64);
        span.finish();

        // --- USA filter. -----------------------------------------------
        let mut span = metrics.stage("usa_filter");
        let mut usa = collected;
        usa.retain(|t| user_states.contains_key(&t.user));
        if usa.is_empty() {
            return Err(CoreError::EmptyCorpus { what: "usa corpus" });
        }
        metrics.counter("usa_tweets_total").add(usa.len() as u64);
        metrics
            .counter("usa_users_total")
            .add(user_states.len() as u64);
        span.set_items(collected_tweets);
        span.finish();

        analyze_located_corpus(
            LocatedCorpus {
                firehose_tweets,
                collected_tweets,
                usa,
                user_states,
                non_us_users,
                unlocated_users,
                mentions: None,
            },
            config,
        )
    }
}

/// The located corpus plus the accounting counters the analytics
/// back-half consumes: exactly what the batch front-half produces after
/// the USA filter, and exactly what an [`crate::incremental`] sensor
/// snapshot can reconstruct at any stream epoch (the serving layer in
/// [`crate::serve`] does precisely that to answer `/report` with the
/// batch pipeline's bytes).
#[derive(Debug, Clone)]
pub struct LocatedCorpus {
    /// Size of the simulated firehose the corpus was collected from.
    pub firehose_tweets: u64,
    /// Tweets matched by `Q` before the USA filter.
    pub collected_tweets: u64,
    /// The USA-user corpus.
    pub usa: Corpus,
    /// Resolved state per located user.
    pub user_states: HashMap<UserId, UsState>,
    /// Users confidently outside the USA.
    pub non_us_users: u64,
    /// Users that could not be located at all.
    pub unlocated_users: u64,
    /// Pre-accumulated per-user mention counts, for a corpus collected
    /// under a non-default campaign lexicon (the subject terms are not
    /// the paper's organ words, so they cannot be re-extracted from the
    /// text here). `None` means re-extract with the paper's organ
    /// extractor — the batch path, proven byte-identical for the
    /// built-in campaign.
    pub mentions: Option<HashMap<UserId, MentionCounts>>,
}

/// Runs the analytics back-half — attention, both characterizations,
/// relative risk, and the clusterings — over an already-located corpus,
/// producing the same [`PipelineRun`] that [`Pipeline::run_on`] returns
/// (which delegates here after its collection/location/USA-filter
/// stages). The artifacts depend only on the input corpus and the
/// analytic knobs in `config`, never on how the corpus was assembled —
/// the property the streaming/serving equivalence gates lean on.
pub fn analyze_located_corpus(input: LocatedCorpus, config: PipelineConfig) -> Result<PipelineRun> {
    let LocatedCorpus {
        firehose_tweets,
        collected_tweets,
        usa,
        user_states,
        non_us_users,
        unlocated_users,
        mentions,
    } = input;
    if usa.is_empty() {
        return Err(CoreError::EmptyCorpus { what: "usa corpus" });
    }
    let metrics = config.metrics.clone();
    let compute_threads = par::resolve_threads(config.compute_threads);
    metrics.gauge("compute_threads").set(compute_threads as u64);

    {
        // --- Characterizations. ----------------------------------------
        let mut span = metrics.stage("attention");
        let attention = match &mentions {
            Some(m) => AttentionMatrix::from_mentions(m)?,
            None => AttentionMatrix::from_corpus(&usa)?,
        };
        metrics
            .gauge("attention_users")
            .set(attention.user_count() as u64);
        metrics
            .gauge("attention_organs")
            .set(attention.matrix().cols() as u64);
        span.set_items(usa.len() as u64);
        span.finish();

        let mut span = metrics.stage("characterize_organ");
        let organ_membership = by_dominant_organ(&attention)?;
        let organ_k = Aggregation::compute(&organ_membership, attention.matrix())?;
        metrics
            .gauge("organ_groups")
            .set(organ_k.groups.len() as u64);
        span.set_items(attention.user_count() as u64);
        span.finish();

        let mut span = metrics.stage("characterize_region");
        let (region_membership, region_rows) = by_region(&attention, &user_states)?;
        let region_u = subset_rows(attention.matrix(), &region_rows)?;
        let region_k = Aggregation::compute(&region_membership, &region_u)?;
        let regions = RegionCharacterization::new(&region_k);
        metrics
            .gauge("region_groups")
            .set(region_k.groups.len() as u64);
        span.set_items(region_rows.len() as u64);
        span.finish();

        let mut span = metrics.stage("relative_risk");
        let risk = RiskMap::compute(&attention, &user_states, config.alpha)?;
        metrics
            .counter("risk_cells_evaluated_total")
            .add(risk.entries.len() as u64);
        metrics
            .counter("risk_highlighted_total")
            .add(risk.highlighted().values().map(Vec::len).sum::<usize>() as u64);
        span.set_items(attention.user_count() as u64);
        span.finish();

        let mut span = metrics.stage("state_clusters");
        let n_states = region_k.groups.len();
        metrics
            .gauge("state_cluster_pair_chunks")
            .set(
                par::chunk_count(n_states * n_states.saturating_sub(1) / 2, par::PAIR_CHUNK) as u64,
            );
        let state_clusters = StateClustering::compute_threaded(&region_k, compute_threads)?;
        span.set_items(n_states as u64);
        span.finish();

        let user_clusters = if config.run_user_clustering {
            let mut span = metrics.stage("user_clusters");
            let users = attention.user_count();
            metrics
                .gauge("user_cluster_row_chunks")
                .set(par::chunk_count(users, par::ROW_CHUNK) as u64);
            metrics.gauge("silhouette_chunks").set(par::chunk_count(
                users.min(config.user_clustering.silhouette_sample),
                par::SIL_CHUNK,
            ) as u64);
            let fitted =
                UserClustering::fit_threaded(&attention, config.user_clustering, compute_threads)?;
            metrics
                .counter("kmeans_iterations_total")
                .add(fitted.sweep.iter().map(|c| c.iterations as u64).sum());
            metrics
                .counter("silhouette_evaluations_total")
                .add(fitted.sweep.len() as u64);
            metrics.gauge("kmeans_chosen_k").set(fitted.chosen_k as u64);
            span.set_items(users as u64);
            span.finish();
            Some(fitted)
        } else {
            None
        };

        let metrics_snapshot = metrics.snapshot();
        Ok(PipelineRun {
            firehose_tweets,
            collected_tweets,
            usa,
            user_states,
            non_us_users,
            unlocated_users,
            attention,
            organ_k,
            region_k,
            regions,
            risk,
            state_clusters,
            user_clusters,
            metrics: metrics_snapshot,
            config,
        })
    }
}

/// Extracts the given rows of a matrix into a new matrix.
fn subset_rows(m: &Matrix, rows: &[usize]) -> Result<Matrix> {
    let data: Vec<Vec<f64>> = rows.iter().map(|&i| m.row(i).to_vec()).collect();
    Ok(Matrix::from_rows(&data)?)
}

impl PipelineRun {
    /// Fraction of collected tweets attributable to USA users — the
    /// paper's "134,986 out of 975,021" footnote (≈ 13.8%).
    pub fn usa_fraction(&self) -> f64 {
        if self.collected_tweets == 0 {
            return 0.0;
        }
        self.usa.len() as f64 / self.collected_tweets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::shared_run;

    fn run() -> &'static PipelineRun {
        shared_run()
    }

    #[test]
    fn end_to_end_accounting_holds() {
        let r = run();
        // Collected is a strict subset of the firehose.
        assert!(r.collected_tweets > 0);
        assert!(r.collected_tweets < r.firehose_tweets);
        // USA corpus is a strict subset of collected.
        assert!(!r.usa.is_empty());
        assert!((r.usa.len() as u64) < r.collected_tweets);
        // USA fraction lands near the paper's 13.8%.
        let frac = r.usa_fraction();
        assert!(
            (0.10..=0.18).contains(&frac),
            "usa fraction {frac} out of range"
        );
        // Every located user has a state; no overlap with rejected sets.
        assert!(!r.user_states.is_empty());
    }

    #[test]
    fn attention_covers_usa_users() {
        let r = run();
        assert_eq!(r.attention.user_count(), r.usa.user_count());
    }

    #[test]
    fn organ_characterization_rows_stochastic() {
        let r = run();
        for i in 0..r.organ_k.matrix.rows() {
            let s: f64 = r.organ_k.matrix.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // All six organs present as groups at this scale.
        assert_eq!(r.organ_k.groups.len(), 6);
    }

    #[test]
    fn organ_self_attention_dominates() {
        // Users grouped by dominant organ should, on average, attend to
        // that organ the most — the diagonal of K dominates its row.
        let r = run();
        for (i, &organ) in r.organ_k.groups.iter().enumerate() {
            let row = r.organ_k.matrix.row(i);
            let self_att = row[organ.index()];
            for (j, &v) in row.iter().enumerate() {
                if j != organ.index() {
                    assert!(self_att > v, "{organ}: self {self_att} <= other {v}");
                }
            }
        }
    }

    #[test]
    fn region_characterization_covers_located_states() {
        let r = run();
        assert!(
            r.region_k.groups.len() >= 40,
            "too few states: {}",
            r.region_k.groups.len()
        );
        assert_eq!(r.regions.signatures.len(), r.region_k.groups.len());
        // Heart tops nearly every state (the motivation for RR). The
        // least-populous states have few users even at this scale, so
        // require 75% rather than unanimity.
        let heart_top = r
            .region_k
            .groups
            .iter()
            .filter(|&&s| r.regions.top_organ(s) == Some(Organ::Heart))
            .count();
        assert!(
            heart_top * 4 >= r.region_k.groups.len() * 3,
            "heart tops only {heart_top}/{}",
            r.region_k.groups.len()
        );
    }

    #[test]
    fn user_clustering_present_and_sized() {
        let r = run();
        let uc = r.user_clusters.as_ref().expect("clustering enabled");
        assert!(uc.chosen_k >= 6);
        assert_eq!(
            uc.profiles().iter().map(|p| p.size).sum::<usize>(),
            r.attention.user_count()
        );
    }

    #[test]
    fn disabling_user_clustering_skips_it() {
        let mut config = PipelineConfig::paper_scaled(0.005);
        config.run_user_clustering = false;
        let r = Pipeline::new().run(config).unwrap();
        assert!(r.user_clusters.is_none());
        // The default registry is disabled: no metrics recorded.
        assert!(r.metrics.is_empty());
    }

    /// A small instrumented configuration with the K-Means stage kept
    /// cheap enough for a unit test.
    fn instrumented_config() -> PipelineConfig {
        let mut config = PipelineConfig::paper_scaled(0.01);
        config.generator.seed = 77;
        config.user_clustering.k_min = 2;
        config.user_clustering.k_max = 4;
        config.user_clustering.silhouette_sample = 200;
        config.collection_threads = 4;
        config.metrics = MetricsRegistry::enabled();
        config
    }

    #[test]
    fn metrics_cover_every_stage_and_account_consistently() {
        let r = Pipeline::new().run(instrumented_config()).unwrap();
        let m = &r.metrics;
        for stage in [
            "generate",
            "collect",
            "locate_users",
            "usa_filter",
            "attention",
            "characterize_organ",
            "characterize_region",
            "relative_risk",
            "state_clusters",
            "user_clusters",
        ] {
            assert!(m.stage(stage).is_some(), "stage {stage} missing");
        }
        // Counters agree with the run's own accounting, including the
        // concurrent batch adds from the parallel collection path.
        assert_eq!(m.counter("firehose_tweets_total"), Some(r.firehose_tweets));
        assert_eq!(
            m.counter("collected_tweets_total"),
            Some(r.collected_tweets)
        );
        assert_eq!(m.counter("usa_tweets_total"), Some(r.usa.len() as u64));
        assert_eq!(
            m.counter("geo_users_located_total"),
            Some(r.user_states.len() as u64)
        );
        assert_eq!(m.counter("geo_users_non_us_total"), Some(r.non_us_users));
        assert_eq!(
            m.counter("geo_users_unlocated_total"),
            Some(r.unlocated_users)
        );
        // Located users split exactly into geo-tag vs profile sources.
        assert_eq!(
            m.counter("geo_source_geotag_total").unwrap()
                + m.counter("geo_source_profile_total").unwrap(),
            r.user_states.len() as u64
        );
        assert_eq!(
            m.gauge("attention_users"),
            Some(r.attention.user_count() as u64)
        );
        assert_eq!(m.gauge("attention_organs"), Some(6));
        let uc = r.user_clusters.as_ref().unwrap();
        assert_eq!(m.gauge("kmeans_chosen_k"), Some(uc.chosen_k as u64));
        assert_eq!(
            m.counter("silhouette_evaluations_total"),
            Some(uc.sweep.len() as u64)
        );
        assert_eq!(
            m.counter("kmeans_iterations_total"),
            Some(uc.sweep.iter().map(|c| c.iterations as u64).sum())
        );
        // Threading gauges: the knobs and the (input-size-only) chunk
        // counts of the parallel kernels.
        assert_eq!(m.gauge("collect_threads"), Some(4));
        assert!(m.gauge("compute_threads").unwrap() >= 1);
        let users = r.attention.user_count();
        assert_eq!(
            m.gauge("user_cluster_row_chunks"),
            Some(par::chunk_count(users, par::ROW_CHUNK) as u64)
        );
        assert_eq!(
            m.gauge("silhouette_chunks"),
            Some(par::chunk_count(users.min(200), par::SIL_CHUNK) as u64)
        );
        let n_states = r.region_k.groups.len();
        assert_eq!(
            m.gauge("state_cluster_pair_chunks"),
            Some(par::chunk_count(n_states * (n_states - 1) / 2, par::PAIR_CHUNK) as u64)
        );
        // The heavy-tailed profile-location distribution makes repeats
        // certain even at this scale, so the memo cache must have hits,
        // and there cannot be more hits than profile lookups.
        let hits = m.counter("geo_cache_hits_total").unwrap();
        assert!(hits > 0, "no geocoder cache hits");
        assert!(hits < m.stage("locate_users").unwrap().items);
    }

    #[test]
    fn compute_threads_leave_artifacts_byte_identical() {
        use crate::report::PaperReport;

        let run_with = |threads: usize| {
            let mut config = instrumented_config();
            config.compute_threads = threads;
            Pipeline::new().run(config).unwrap()
        };
        let base = run_with(1);
        let base_report = serde_json::to_string(&PaperReport::from_run(&base).unwrap()).unwrap();
        let base_users = serde_json::to_string(&base.user_clusters).unwrap();
        let base_states = serde_json::to_string(&base.state_clusters).unwrap();
        for threads in [2, 4, 0] {
            let r = run_with(threads);
            assert_eq!(
                base_users,
                serde_json::to_string(&r.user_clusters).unwrap(),
                "user clustering diverged at compute_threads = {threads}"
            );
            assert_eq!(
                base_states,
                serde_json::to_string(&r.state_clusters).unwrap(),
                "state clustering diverged at compute_threads = {threads}"
            );
            assert_eq!(
                base_report,
                serde_json::to_string(&PaperReport::from_run(&r).unwrap()).unwrap(),
                "paper report diverged at compute_threads = {threads}"
            );
        }
    }

    #[test]
    fn metrics_invariant_under_compute_threads() {
        // Mirror of disabled_metrics_leave_artifacts_byte_identical for
        // the parallel stages: every deterministic metric must ignore
        // the compute-thread count; only the knob gauge itself moves.
        let run_with = |threads: usize| {
            let mut config = instrumented_config();
            config.compute_threads = threads;
            Pipeline::new().run(config).unwrap()
        };
        let a = run_with(1);
        let b = run_with(4);
        assert_eq!(a.metrics.counters, b.metrics.counters);
        assert_eq!(a.metrics.stage_items(), b.metrics.stage_items());
        let strip = |m: &RunMetrics| -> Vec<(String, u64)> {
            m.gauges
                .iter()
                .filter(|(name, _)| name != "compute_threads")
                .cloned()
                .collect()
        };
        assert_eq!(strip(&a.metrics), strip(&b.metrics));
        assert_eq!(a.metrics.gauge("compute_threads"), Some(1));
        assert_eq!(b.metrics.gauge("compute_threads"), Some(4));
    }

    #[test]
    fn seeded_runs_produce_identical_counter_values() {
        let a = Pipeline::new().run(instrumented_config()).unwrap();
        let b = Pipeline::new().run(instrumented_config()).unwrap();
        // Everything but wall time is deterministic in the seed.
        assert_eq!(a.metrics.counters, b.metrics.counters);
        assert_eq!(a.metrics.gauges, b.metrics.gauges);
        assert_eq!(a.metrics.stage_items(), b.metrics.stage_items());
        assert!(!a.metrics.counters.is_empty());
    }

    #[test]
    fn disabled_metrics_leave_artifacts_byte_identical() {
        use crate::report::PaperReport;

        let enabled = Pipeline::new().run(instrumented_config()).unwrap();
        let mut config = instrumented_config();
        config.metrics = MetricsRegistry::disabled();
        let disabled = Pipeline::new().run(config).unwrap();

        assert!(!enabled.metrics.is_empty());
        assert!(disabled.metrics.is_empty());
        // The full rendered + serialized paper artifacts must not care
        // whether observability was on.
        let ra = PaperReport::from_run(&enabled).unwrap();
        let rb = PaperReport::from_run(&disabled).unwrap();
        assert_eq!(ra.render(), rb.render());
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap()
        );
    }
}
