//! The user-attention matrix `Û` (Sec. III-B).
//!
//! Each row is one user's normalized distribution of organ mentions
//! across *all* their collected tweets — the paper argues a user-level
//! unit of analysis resists the bias of a few heavy posters, and Fig.
//! 2(b) shows multi-organ attention mostly appears after per-user
//! aggregation.

use crate::{CoreError, Result};
use donorpulse_linalg::Matrix;
use donorpulse_stats::histogram::CategoricalHistogram;
use donorpulse_text::extract::{MentionCounts, OrganExtractor};
use donorpulse_text::Organ;
use donorpulse_twitter::{Corpus, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The normalized contingency matrix `Û = [û_ij]_{m×n}`: rows are users,
/// columns the six organs, each row summing to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionMatrix {
    users: Vec<UserId>,
    matrix: Matrix,
    raw_counts: Vec<MentionCounts>,
}

impl AttentionMatrix {
    /// Builds `Û` from per-user mention counts. Users with zero mentions
    /// are dropped (they carry no attention signal); the row order is
    /// ascending user id for determinism.
    pub fn from_mentions(mentions: &HashMap<UserId, MentionCounts>) -> Result<Self> {
        let mut entries: Vec<(&UserId, &MentionCounts)> =
            mentions.iter().filter(|(_, mc)| !mc.is_empty()).collect();
        if entries.is_empty() {
            return Err(CoreError::EmptyCorpus {
                what: "attention matrix",
            });
        }
        entries.sort_by_key(|(id, _)| **id);

        let mut rows = Vec::with_capacity(entries.len());
        let mut users = Vec::with_capacity(entries.len());
        let mut raw_counts = Vec::with_capacity(entries.len());
        for (id, mc) in entries {
            let dist = mc.to_distribution().expect("nonempty counts");
            rows.push(dist.to_vec());
            users.push(*id);
            raw_counts.push(*mc);
        }
        let matrix = Matrix::from_rows(&rows)?;
        Ok(Self {
            users,
            matrix,
            raw_counts,
        })
    }

    /// Builds `Û` directly from a corpus (extracts mentions first).
    pub fn from_corpus(corpus: &Corpus) -> Result<Self> {
        Self::from_mentions(&corpus.mentions_by_user())
    }

    /// Number of users (rows `m`).
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Row order of users.
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// The matrix `Û` itself.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Row index of a user, if present.
    pub fn row_of(&self, user: UserId) -> Option<usize> {
        self.users.binary_search(&user).ok()
    }

    /// One user's attention distribution.
    pub fn attention_of(&self, user: UserId) -> Option<&[f64]> {
        self.row_of(user).map(|i| self.matrix.row(i))
    }

    /// The raw (un-normalized) mention counts backing row `i`.
    pub fn raw_counts(&self, i: usize) -> &MentionCounts {
        &self.raw_counts[i]
    }

    /// Each user's most-cited organ (Eq. 1's argmax), in row order.
    pub fn dominant_organs(&self) -> Vec<Organ> {
        (0..self.user_count())
            .map(|i| Organ::from_index(self.matrix.row_argmax(i)).expect("column is an organ"))
            .collect()
    }

    /// Fig. 2(a): number of users mentioning each organ at least once.
    pub fn users_per_organ(&self) -> CategoricalHistogram {
        let mut h = CategoricalHistogram::new();
        for organ in Organ::ALL {
            h.add(organ.name(), 0);
        }
        for mc in &self.raw_counts {
            for organ in Organ::ALL {
                if mc.count(organ) > 0 {
                    h.increment(organ.name());
                }
            }
        }
        h
    }

    /// Fig. 2(b), user side: how many users mention exactly `k` distinct
    /// organs, for `k = 1..=6` (index 0 ↔ k = 1).
    pub fn users_by_breadth(&self) -> [u64; Organ::COUNT] {
        let mut out = [0u64; Organ::COUNT];
        for mc in &self.raw_counts {
            let k = mc.distinct();
            if (1..=Organ::COUNT).contains(&k) {
                out[k - 1] += 1;
            }
        }
        out
    }

    /// Fig. 2(b), tweet side: how many *tweets* in `corpus` mention
    /// exactly `k` distinct organs (index 0 ↔ k = 1). Tweets mentioning
    /// none are excluded, mirroring the paper's plot.
    pub fn tweets_by_breadth(corpus: &Corpus) -> [u64; Organ::COUNT] {
        let extractor = OrganExtractor::new();
        let mut out = [0u64; Organ::COUNT];
        for t in corpus.tweets() {
            let k = extractor.extract(&t.text).distinct();
            if (1..=Organ::COUNT).contains(&k) {
                out[k - 1] += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_twitter::{SimInstant, Tweet, TweetId};

    fn mentions(pairs: &[(u64, &[(Organ, u32)])]) -> HashMap<UserId, MentionCounts> {
        let mut map = HashMap::new();
        for (id, organs) in pairs {
            let mut mc = MentionCounts::new();
            for &(o, c) in *organs {
                mc.add(o, c);
            }
            map.insert(UserId(*id), mc);
        }
        map
    }

    #[test]
    fn rows_are_normalized_and_sorted() {
        let m = mentions(&[
            (3, &[(Organ::Heart, 3), (Organ::Kidney, 1)]),
            (1, &[(Organ::Liver, 2)]),
        ]);
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        assert_eq!(am.user_count(), 2);
        assert_eq!(am.users(), &[UserId(1), UserId(3)]);
        // Row 0 = user 1: all liver.
        assert_eq!(am.matrix().row(0)[Organ::Liver.index()], 1.0);
        // Row 1 = user 3: 0.75 heart / 0.25 kidney.
        assert!((am.matrix().row(1)[Organ::Heart.index()] - 0.75).abs() < 1e-12);
        for i in 0..2 {
            let s: f64 = am.matrix().row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_users_dropped_and_all_empty_errors() {
        let mut m = mentions(&[(1, &[(Organ::Heart, 1)])]);
        m.insert(UserId(2), MentionCounts::new());
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        assert_eq!(am.user_count(), 1);

        let empty = mentions(&[]);
        assert!(matches!(
            AttentionMatrix::from_mentions(&empty),
            Err(CoreError::EmptyCorpus { .. })
        ));
    }

    #[test]
    fn accessors() {
        let m = mentions(&[(5, &[(Organ::Lung, 4)])]);
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        assert_eq!(am.row_of(UserId(5)), Some(0));
        assert_eq!(am.row_of(UserId(6)), None);
        assert_eq!(
            am.attention_of(UserId(5)).unwrap()[Organ::Lung.index()],
            1.0
        );
        assert_eq!(am.attention_of(UserId(9)), None);
        assert_eq!(am.raw_counts(0).count(Organ::Lung), 4);
    }

    #[test]
    fn dominant_organs_argmax() {
        let m = mentions(&[
            (1, &[(Organ::Heart, 1), (Organ::Kidney, 5)]),
            (2, &[(Organ::Pancreas, 2)]),
        ]);
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        assert_eq!(am.dominant_organs(), vec![Organ::Kidney, Organ::Pancreas]);
    }

    #[test]
    fn users_per_organ_histogram() {
        let m = mentions(&[
            (1, &[(Organ::Heart, 10), (Organ::Kidney, 1)]),
            (2, &[(Organ::Heart, 1)]),
        ]);
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        let h = am.users_per_organ();
        assert_eq!(h.count("heart"), 2);
        assert_eq!(h.count("kidney"), 1);
        assert_eq!(h.count("liver"), 0);
        // All six organs present as categories even with zero counts.
        assert_eq!(h.len(), 6);
    }

    #[test]
    fn breadth_histograms() {
        let m = mentions(&[
            (1, &[(Organ::Heart, 2)]),
            (2, &[(Organ::Heart, 1), (Organ::Kidney, 1)]),
            (3, &[(Organ::Liver, 9)]),
        ]);
        let am = AttentionMatrix::from_mentions(&m).unwrap();
        assert_eq!(am.users_by_breadth(), [2, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn tweets_by_breadth_counts() {
        let corpus = Corpus::from_tweets([
            Tweet {
                id: TweetId(0),
                user: UserId(1),
                created_at: SimInstant(0),
                text: "kidney donor".into(),
                geo: None,
            },
            Tweet {
                id: TweetId(1),
                user: UserId(1),
                created_at: SimInstant(1),
                text: "donate heart and lung".into(),
                geo: None,
            },
            Tweet {
                id: TweetId(2),
                user: UserId(2),
                created_at: SimInstant(2),
                text: "no organs here".into(),
                geo: None,
            },
        ]);
        assert_eq!(
            AttentionMatrix::tweets_by_breadth(&corpus),
            [1, 1, 0, 0, 0, 0]
        );
    }

    #[test]
    fn from_corpus_matches_from_mentions() {
        let corpus = Corpus::from_tweets([Tweet {
            id: TweetId(0),
            user: UserId(1),
            created_at: SimInstant(0),
            text: "kidney kidney heart donor".into(),
            geo: None,
        }]);
        let am = AttentionMatrix::from_corpus(&corpus).unwrap();
        let row = am.attention_of(UserId(1)).unwrap();
        assert!((row[Organ::Kidney.index()] - 2.0 / 3.0).abs() < 1e-12);
        assert!((row[Organ::Heart.index()] - 1.0 / 3.0).abs() < 1e-12);
    }
}
