//! Fig. 6: hierarchical clustering of states by organ-conversation
//! similarity.
//!
//! States (rows of the region `K`) are clustered agglomeratively with
//! the Bhattacharyya distance as affinity — the paper's choice for
//! discrete probability distributions — and rendered as a similarity
//! matrix ordered by the dendrogram's leaf order, which makes the
//! "zones" of organ-related conversation visible along the diagonal.

use crate::aggregate::Aggregation;
use crate::Result;
use donorpulse_cluster::agglomerative::agglomerative_from_distances;
use donorpulse_cluster::{Dendrogram, DistanceMatrix, Linkage, Metric};
use donorpulse_geo::UsState;
use donorpulse_linalg::Rows;
use serde::Serialize;

/// The Fig. 6 artifact: distances, dendrogram, leaf order, and flat
/// clusters at a chosen granularity.
#[derive(Debug, Clone, Serialize)]
pub struct StateClustering {
    /// States in aggregation row order.
    pub states: Vec<UsState>,
    /// Pairwise distance matrix (same order as `states`).
    pub distances: DistanceMatrix,
    /// The merge tree.
    pub dendrogram: Dendrogram,
    /// States in dendrogram leaf order (heatmap axis order).
    pub leaf_order: Vec<UsState>,
    /// Metric used.
    pub metric: Metric,
    /// Linkage used.
    pub linkage: Linkage,
}

impl StateClustering {
    /// Clusters the region aggregation with the paper's configuration
    /// (Bhattacharyya affinity, average linkage). Single-threaded; see
    /// [`StateClustering::compute_threaded`].
    pub fn compute(aggregation: &Aggregation<UsState>) -> Result<Self> {
        Self::compute_with_threaded(aggregation, Metric::Bhattacharyya, Linkage::Average, 1)
    }

    /// Like [`StateClustering::compute`] with the distance-matrix build
    /// spread over up to `threads` workers (`0` = all cores). The
    /// artifact is identical for any thread count.
    pub fn compute_threaded(aggregation: &Aggregation<UsState>, threads: usize) -> Result<Self> {
        Self::compute_with_threaded(
            aggregation,
            Metric::Bhattacharyya,
            Linkage::Average,
            threads,
        )
    }

    /// Clusters with an explicit metric/linkage (used by the ablation
    /// bench comparing Bhattacharyya against Euclidean).
    pub fn compute_with(
        aggregation: &Aggregation<UsState>,
        metric: Metric,
        linkage: Linkage,
    ) -> Result<Self> {
        Self::compute_with_threaded(aggregation, metric, linkage, 1)
    }

    /// Full-control variant: explicit metric, linkage, and thread
    /// count. The pairwise distance matrix is computed once (in
    /// parallel) and shared between the artifact and the linkage loop.
    pub fn compute_with_threaded(
        aggregation: &Aggregation<UsState>,
        metric: Metric,
        linkage: Linkage,
        threads: usize,
    ) -> Result<Self> {
        let rows = Rows::from_matrix(&aggregation.matrix);
        let distances = DistanceMatrix::compute_rows(&rows, metric, threads)?;
        let dendrogram = agglomerative_from_distances(&distances, linkage)?;
        let leaf_order = dendrogram
            .leaf_order()
            .into_iter()
            .map(|i| aggregation.groups[i])
            .collect();
        Ok(Self {
            states: aggregation.groups.clone(),
            distances,
            dendrogram,
            leaf_order,
            metric,
            linkage,
        })
    }

    /// Flat clusters at `k`, as lists of states.
    pub fn clusters(&self, k: usize) -> Result<Vec<Vec<UsState>>> {
        let labels = self.dendrogram.cut(k)?;
        let mut groups = vec![Vec::new(); k];
        for (i, &label) in labels.iter().enumerate() {
            groups[label].push(self.states[i]);
        }
        Ok(groups)
    }

    /// The cluster containing `state` when cut into `k` clusters.
    pub fn cluster_of(&self, state: UsState, k: usize) -> Result<Option<Vec<UsState>>> {
        Ok(self.clusters(k)?.into_iter().find(|c| c.contains(&state)))
    }

    /// Distance between two states (by label).
    pub fn distance_between(&self, a: UsState, b: UsState) -> Option<f64> {
        let ia = self.states.iter().position(|&s| s == a)?;
        let ib = self.states.iter().position(|&s| s == b)?;
        Some(self.distances.get(ia, ib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_linalg::Matrix;

    /// Two obvious blocks: kidney-leaning states and liver-leaning ones.
    fn aggregation() -> Aggregation<UsState> {
        Aggregation {
            groups: vec![
                UsState::Kansas,
                UsState::Louisiana,
                UsState::Delaware,
                UsState::RhodeIsland,
            ],
            sizes: vec![10, 10, 10, 10],
            matrix: Matrix::from_rows(&[
                vec![0.35, 0.45, 0.08, 0.06, 0.04, 0.02], // KS kidney
                vec![0.36, 0.44, 0.08, 0.06, 0.04, 0.02], // LA kidney
                vec![0.35, 0.08, 0.45, 0.06, 0.04, 0.02], // DE liver
                vec![0.36, 0.08, 0.44, 0.06, 0.04, 0.02], // RI liver
            ])
            .unwrap(),
        }
    }

    #[test]
    fn similar_states_cluster_together() {
        let sc = StateClustering::compute(&aggregation()).unwrap();
        let clusters = sc.clusters(2).unwrap();
        let kidney_cluster = clusters
            .iter()
            .find(|c| c.contains(&UsState::Kansas))
            .unwrap();
        assert!(kidney_cluster.contains(&UsState::Louisiana));
        assert!(!kidney_cluster.contains(&UsState::Delaware));
    }

    #[test]
    fn leaf_order_keeps_blocks_adjacent() {
        let sc = StateClustering::compute(&aggregation()).unwrap();
        let pos = |s: UsState| sc.leaf_order.iter().position(|&x| x == s).unwrap();
        assert_eq!(
            (pos(UsState::Kansas) as i64 - pos(UsState::Louisiana) as i64).abs(),
            1
        );
        assert_eq!(
            (pos(UsState::Delaware) as i64 - pos(UsState::RhodeIsland) as i64).abs(),
            1
        );
    }

    #[test]
    fn distances_reflect_similarity() {
        let sc = StateClustering::compute(&aggregation()).unwrap();
        let close = sc
            .distance_between(UsState::Kansas, UsState::Louisiana)
            .unwrap();
        let far = sc
            .distance_between(UsState::Kansas, UsState::Delaware)
            .unwrap();
        assert!(close < far);
        assert!(sc
            .distance_between(UsState::Kansas, UsState::Ohio)
            .is_none());
    }

    #[test]
    fn cluster_of_finds_membership() {
        let sc = StateClustering::compute(&aggregation()).unwrap();
        let c = sc.cluster_of(UsState::Kansas, 2).unwrap().unwrap();
        assert!(c.contains(&UsState::Kansas));
        assert!(sc.cluster_of(UsState::Ohio, 2).unwrap().is_none());
    }

    #[test]
    fn compute_threaded_identical_across_thread_counts() {
        let base = StateClustering::compute(&aggregation()).unwrap();
        for threads in [1, 2, 4, 0] {
            let sc = StateClustering::compute_threaded(&aggregation(), threads).unwrap();
            assert_eq!(base.distances, sc.distances, "threads = {threads}");
            assert_eq!(
                base.dendrogram.merges(),
                sc.dendrogram.merges(),
                "threads = {threads}"
            );
            assert_eq!(base.leaf_order, sc.leaf_order, "threads = {threads}");
        }
    }

    #[test]
    fn euclidean_ablation_runs() {
        let sc = StateClustering::compute_with(&aggregation(), Metric::Euclidean, Linkage::Average)
            .unwrap();
        assert_eq!(sc.metric, Metric::Euclidean);
        // Structure is strong enough that Euclidean agrees here.
        let clusters = sc.clusters(2).unwrap();
        let kidney = clusters
            .iter()
            .find(|c| c.contains(&UsState::Kansas))
            .unwrap();
        assert!(kidney.contains(&UsState::Louisiana));
    }
}
