//! User-role differentiation — the paper's conclusion suggests the
//! characterization "might be used to differentiate classes of users
//! such as health care practitioners, donors, waiting-list candidates,
//! organ donation advocacy agencies". This module implements that
//! as a transparent, threshold-based classifier over the observable
//! per-user behaviour in the collected corpus: activity volume, organ
//! breadth, and attention concentration.
//!
//! The taxonomy is deliberately behavioural (what the data can support)
//! rather than biographical:
//!
//! * **Casual** — a single on-topic tweet; the long tail of Table I's
//!   1.88 tweets/user distribution.
//! * **Focused** — repeat posting concentrated on one organ: the
//!   signature of patients, waiting-list candidates and their families.
//! * **Engaged** — repeat posting over a couple of organs.
//! * **Advocate** — high volume across three or more organs: the
//!   advocacy-agency / practitioner pattern.

use crate::attention::AttentionMatrix;
use crate::{CoreError, Result};
use donorpulse_twitter::{Corpus, UserId};
use serde::Serialize;
use std::collections::HashMap;

/// Behavioural role classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum UserRole {
    /// One on-topic tweet.
    Casual,
    /// Repeat posting, single organ.
    Focused,
    /// Repeat posting, two organs.
    Engaged,
    /// High volume across three or more organs.
    Advocate,
}

impl UserRole {
    /// All roles in presentation order.
    pub const ALL: [UserRole; 4] = [
        UserRole::Casual,
        UserRole::Focused,
        UserRole::Engaged,
        UserRole::Advocate,
    ];

    /// Lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            UserRole::Casual => "casual",
            UserRole::Focused => "focused",
            UserRole::Engaged => "engaged",
            UserRole::Advocate => "advocate",
        }
    }
}

/// Observable per-user features the classifier consumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct UserFeatures {
    /// On-topic tweets in the corpus.
    pub tweets: u32,
    /// Distinct organs mentioned.
    pub organ_breadth: usize,
    /// Total organ mentions.
    pub mentions: u32,
}

/// Classification thresholds (defaults documented on each field).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RoleThresholds {
    /// Minimum tweets to leave `Casual` (default 2).
    pub min_repeat_tweets: u32,
    /// Minimum tweets for `Advocate` (default 5).
    pub min_advocate_tweets: u32,
    /// Minimum organ breadth for `Advocate` (default 3).
    pub min_advocate_breadth: usize,
}

impl Default for RoleThresholds {
    fn default() -> Self {
        Self {
            min_repeat_tweets: 2,
            min_advocate_tweets: 5,
            min_advocate_breadth: 3,
        }
    }
}

impl RoleThresholds {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.min_repeat_tweets < 2 {
            return Err(CoreError::InvalidParameter(
                "min_repeat_tweets must be at least 2".to_string(),
            ));
        }
        if self.min_advocate_tweets < self.min_repeat_tweets {
            return Err(CoreError::InvalidParameter(
                "min_advocate_tweets must be >= min_repeat_tweets".to_string(),
            ));
        }
        if self.min_advocate_breadth < 2 {
            return Err(CoreError::InvalidParameter(
                "min_advocate_breadth must be at least 2".to_string(),
            ));
        }
        Ok(())
    }

    /// Classifies one user's features.
    pub fn classify(&self, f: UserFeatures) -> UserRole {
        if f.tweets < self.min_repeat_tweets {
            UserRole::Casual
        } else if f.tweets >= self.min_advocate_tweets
            && f.organ_breadth >= self.min_advocate_breadth
        {
            UserRole::Advocate
        } else if f.organ_breadth <= 1 {
            UserRole::Focused
        } else {
            UserRole::Engaged
        }
    }
}

/// Role assignment over a whole corpus.
#[derive(Debug, Clone, Serialize)]
pub struct RoleBreakdown {
    /// Role per user.
    pub roles: HashMap<UserId, UserRole>,
    /// Features per user (for inspection).
    pub features: HashMap<UserId, UserFeatures>,
    /// Users per role.
    pub counts: HashMap<UserRole, usize>,
    /// Thresholds used.
    pub thresholds: RoleThresholds,
}

impl RoleBreakdown {
    /// Classifies every user in the corpus.
    pub fn compute(
        corpus: &Corpus,
        attention: &AttentionMatrix,
        thresholds: RoleThresholds,
    ) -> Result<Self> {
        thresholds.validate()?;
        if corpus.is_empty() {
            return Err(CoreError::EmptyCorpus { what: "roles" });
        }
        let mut tweet_counts: HashMap<UserId, u32> = HashMap::new();
        for t in corpus.tweets() {
            *tweet_counts.entry(t.user).or_insert(0) += 1;
        }

        let mut roles = HashMap::new();
        let mut features = HashMap::new();
        let mut counts: HashMap<UserRole, usize> = HashMap::new();
        for (i, &id) in attention.users().iter().enumerate() {
            let mc = attention.raw_counts(i);
            let f = UserFeatures {
                tweets: tweet_counts.get(&id).copied().unwrap_or(0),
                organ_breadth: mc.distinct(),
                mentions: mc.total(),
            };
            let role = thresholds.classify(f);
            *counts.entry(role).or_insert(0) += 1;
            roles.insert(id, role);
            features.insert(id, f);
        }
        Ok(Self {
            roles,
            features,
            counts,
            thresholds,
        })
    }

    /// Fraction of users in a role.
    pub fn fraction(&self, role: UserRole) -> f64 {
        if self.roles.is_empty() {
            return 0.0;
        }
        self.counts.get(&role).copied().unwrap_or(0) as f64 / self.roles.len() as f64
    }

    /// Plain-text summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("USER ROLES (behavioural classification)\n");
        for role in UserRole::ALL {
            let _ = writeln!(
                out,
                "{:<10} {:>8} users ({:>5.1}%)",
                role.name(),
                self.counts.get(&role).copied().unwrap_or(0),
                self.fraction(role) * 100.0
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testsupport::shared_run;
    use donorpulse_twitter::{SimInstant, Tweet, TweetId};

    fn tweet(id: u64, user: u64, text: &str) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(user),
            created_at: SimInstant(id),
            text: text.to_string(),
            geo: None,
        }
    }

    fn classify_corpus(tweets: Vec<Tweet>) -> RoleBreakdown {
        let corpus = Corpus::from_tweets(tweets);
        let attention = AttentionMatrix::from_corpus(&corpus).unwrap();
        RoleBreakdown::compute(&corpus, &attention, RoleThresholds::default()).unwrap()
    }

    #[test]
    fn archetypal_users_classified() {
        let rb = classify_corpus(vec![
            // User 1: one tweet -> casual.
            tweet(0, 1, "kidney donor signup"),
            // User 2: three kidney tweets -> focused.
            tweet(1, 2, "kidney donor"),
            tweet(2, 2, "kidney transplant"),
            tweet(3, 2, "kidney donation drive"),
            // User 3: two tweets, two organs -> engaged.
            tweet(4, 3, "kidney donor"),
            tweet(5, 3, "heart transplant"),
            // User 4: six tweets, four organs -> advocate.
            tweet(6, 4, "kidney donor"),
            tweet(7, 4, "heart donor"),
            tweet(8, 4, "liver donor"),
            tweet(9, 4, "lung donor"),
            tweet(10, 4, "donate a kidney"),
            tweet(11, 4, "heart donation awareness"),
        ]);
        assert_eq!(rb.roles[&UserId(1)], UserRole::Casual);
        assert_eq!(rb.roles[&UserId(2)], UserRole::Focused);
        assert_eq!(rb.roles[&UserId(3)], UserRole::Engaged);
        assert_eq!(rb.roles[&UserId(4)], UserRole::Advocate);
        assert_eq!(rb.roles.len(), 4);
        let total: usize = rb.counts.values().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn high_volume_single_organ_is_focused_not_advocate() {
        let tweets: Vec<Tweet> = (0..10).map(|i| tweet(i, 1, "kidney donor again")).collect();
        let rb = classify_corpus(tweets);
        assert_eq!(rb.roles[&UserId(1)], UserRole::Focused);
    }

    #[test]
    fn fractions_sum_to_one() {
        let rb = classify_corpus(vec![
            tweet(0, 1, "kidney donor"),
            tweet(1, 2, "heart donor"),
            tweet(2, 2, "heart donor again"),
        ]);
        let total: f64 = UserRole::ALL.iter().map(|&r| rb.fraction(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(rb.render().contains("casual"));
    }

    #[test]
    fn thresholds_validated() {
        let corpus = Corpus::from_tweets(vec![tweet(0, 1, "kidney donor")]);
        let attention = AttentionMatrix::from_corpus(&corpus).unwrap();
        let bad = RoleThresholds {
            min_repeat_tweets: 1,
            ..Default::default()
        };
        assert!(RoleBreakdown::compute(&corpus, &attention, bad).is_err());
        let bad = RoleThresholds {
            min_advocate_tweets: 1,
            ..Default::default()
        };
        assert!(RoleBreakdown::compute(&corpus, &attention, bad).is_err());
        let bad = RoleThresholds {
            min_advocate_breadth: 1,
            ..Default::default()
        };
        assert!(RoleBreakdown::compute(&corpus, &attention, bad).is_err());
        assert!(
            RoleBreakdown::compute(&Corpus::new(), &attention, RoleThresholds::default()).is_err()
        );
    }

    #[test]
    fn corpus_scale_distribution_is_plausible() {
        // On the shared simulated corpus: the activity power law makes
        // casual users the majority, advocates a small minority.
        let run = shared_run();
        let rb =
            RoleBreakdown::compute(&run.usa, &run.attention, RoleThresholds::default()).unwrap();
        assert!(rb.fraction(UserRole::Casual) > 0.5, "{:?}", rb.counts);
        assert!(rb.fraction(UserRole::Advocate) < 0.05, "{:?}", rb.counts);
        // Everyone got a role.
        assert_eq!(rb.roles.len(), run.attention.user_count());
        // Advocates exist at this scale.
        assert!(rb.counts.get(&UserRole::Advocate).copied().unwrap_or(0) > 0);
        // Focused outnumber engaged (most users are single-organ).
        assert!(
            rb.counts[&UserRole::Focused] > rb.counts[&UserRole::Engaged],
            "{:?}",
            rb.counts
        );
    }
}
