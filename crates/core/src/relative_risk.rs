//! Eq. 4 / Fig. 5: relative-risk highlighting of organs per state.
//!
//! A simple winner-takes-all over mention counts would paint every state
//! "heart" (Fig. 4 shows heart prevailing everywhere), so the paper
//! instead computes, per organ `i` and state `r`, the relative risk
//! `RR_ir = ρ_ir / ρ_in` of a user mentioning the organ inside vs
//! outside the state, and highlights organs whose log-RR confidence
//! interval clears zero at `α = 0.05`.

use crate::attention::AttentionMatrix;
use crate::{CoreError, Result};
use donorpulse_geo::UsState;
use donorpulse_stats::contingency::{chi_square_independence, ChiSquareTest};
use donorpulse_stats::risk::{RelativeRisk, RiskTable};
use donorpulse_text::Organ;
use donorpulse_twitter::UserId;
use serde::Serialize;
use std::collections::HashMap;

/// RR of one organ in one state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct StateOrganRisk {
    /// The state.
    pub state: UsState,
    /// The organ.
    pub organ: Organ,
    /// Users in the state mentioning the organ.
    pub cases_in: u64,
    /// Users in the state.
    pub total_in: u64,
    /// The relative risk with its CI (`None` when undefined, e.g. zero
    /// cases on either side).
    pub risk: Option<RelativeRisk>,
}

impl StateOrganRisk {
    /// The paper's highlighting rule.
    pub fn is_highlighted(&self) -> bool {
        self.risk.as_ref().is_some_and(RelativeRisk::is_excess)
    }
}

/// The full Fig. 5 analysis: RR for every (state, organ) pair present in
/// the located population.
#[derive(Debug, Clone, Serialize)]
pub struct RiskMap {
    /// Significance level used (paper: 0.05 → z = 1.96).
    pub alpha: f64,
    /// One entry per (state, organ), state-major order.
    pub entries: Vec<StateOrganRisk>,
}

impl RiskMap {
    /// Computes relative risks from the attention matrix and user→state
    /// assignment. Counting is user-based: a user "mentions" an organ if
    /// their aggregated mention count is ≥ 1.
    pub fn compute(
        attention: &AttentionMatrix,
        states: &HashMap<UserId, UsState>,
        alpha: f64,
    ) -> Result<Self> {
        if !(0.0..1.0).contains(&alpha) || alpha == 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "alpha must be in (0,1), got {alpha}"
            )));
        }
        // Per-state user totals and per-(state, organ) mention counts.
        let mut total_by_state: HashMap<UsState, u64> = HashMap::new();
        let mut cases: HashMap<(UsState, Organ), u64> = HashMap::new();
        let mut grand_total = 0u64;
        let mut grand_cases = [0u64; Organ::COUNT];

        for (i, id) in attention.users().iter().enumerate() {
            let Some(&state) = states.get(id) else {
                continue;
            };
            grand_total += 1;
            *total_by_state.entry(state).or_insert(0) += 1;
            let mc = attention.raw_counts(i);
            for organ in Organ::ALL {
                if mc.count(organ) > 0 {
                    *cases.entry((state, organ)).or_insert(0) += 1;
                    grand_cases[organ.index()] += 1;
                }
            }
        }
        if grand_total == 0 {
            return Err(CoreError::EmptyCorpus {
                what: "relative risk",
            });
        }

        let mut entries = Vec::new();
        let mut present: Vec<UsState> = total_by_state.keys().copied().collect();
        present.sort();
        for state in present {
            let total_in = total_by_state[&state];
            let total_out = grand_total - total_in;
            for organ in Organ::ALL {
                let cases_in = cases.get(&(state, organ)).copied().unwrap_or(0);
                let cases_out = grand_cases[organ.index()] - cases_in;
                let risk = if total_out == 0 || cases_in == 0 || cases_out == 0 {
                    None
                } else {
                    RelativeRisk::from_table(
                        RiskTable {
                            cases_in,
                            total_in,
                            cases_out,
                            total_out,
                        },
                        alpha,
                    )
                    .ok()
                };
                entries.push(StateOrganRisk {
                    state,
                    organ,
                    cases_in,
                    total_in,
                    risk,
                });
            }
        }
        Ok(Self { alpha, entries })
    }

    /// Highlighted organs per state (states with none are omitted).
    pub fn highlighted(&self) -> HashMap<UsState, Vec<Organ>> {
        let mut map: HashMap<UsState, Vec<Organ>> = HashMap::new();
        for e in &self.entries {
            if e.is_highlighted() {
                map.entry(e.state).or_default().push(e.organ);
            }
        }
        map
    }

    /// The RR entry for a specific (state, organ).
    pub fn entry(&self, state: UsState, organ: Organ) -> Option<&StateOrganRisk> {
        self.entries
            .iter()
            .find(|e| e.state == state && e.organ == organ)
    }

    /// Global chi-square test of state × organ independence over the
    /// user-mention table — a sanity gate before reading the per-cell
    /// highlights (312 RR tests at α = .05 would otherwise yield ~15
    /// "findings" on pure noise). States with zero mention of some organ
    /// contribute to the table normally; all-zero rows/columns are
    /// dropped.
    pub fn global_independence_test(&self) -> Result<ChiSquareTest> {
        let mut states: Vec<UsState> = self.entries.iter().map(|e| e.state).collect();
        states.sort();
        states.dedup();
        let mut table: Vec<Vec<u64>> = states
            .iter()
            .map(|&s| {
                Organ::ALL
                    .iter()
                    .map(|&o| self.entry(s, o).map_or(0, |e| e.cases_in))
                    .collect()
            })
            .collect();
        table.retain(|row| row.iter().sum::<u64>() > 0);
        // Drop all-zero organ columns (e.g. intestine absent at tiny scale).
        let keep: Vec<usize> = (0..Organ::COUNT)
            .filter(|&j| table.iter().map(|r| r[j]).sum::<u64>() > 0)
            .collect();
        let table: Vec<Vec<u64>> = table
            .into_iter()
            .map(|row| keep.iter().map(|&j| row[j]).collect())
            .collect();
        Ok(chi_square_independence(&table)?)
    }
}

/// Family-wise error control for the Fig. 5 highlights via a label
/// permutation test.
///
/// The paper highlights any (state, organ) whose log-RR confidence
/// interval clears zero at α = .05 — 312 simultaneous tests, so ~15
/// highlights are expected on pure noise. This routine builds the null
/// distribution of the *maximum* |log RR|/σ z-score across all cells by
/// repeatedly permuting the user → state assignment (organ mentions stay
/// with their user, so organ popularity and user heterogeneity are
/// preserved; only the geography is broken), then reports which observed
/// highlights exceed the null's (1 − α) quantile — i.e. survive
/// family-wise correction.
pub mod permutation {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Result of the permutation correction.
    #[derive(Debug, Clone, Serialize)]
    pub struct PermutationAdjusted {
        /// Number of permutations drawn.
        pub permutations: usize,
        /// The (1 − alpha) quantile of the null max-z distribution.
        pub critical_z: f64,
        /// Highlights surviving the family-wise correction.
        pub surviving: Vec<(UsState, Organ, f64)>,
        /// Highlights from the uncorrected per-cell rule that did NOT
        /// survive.
        pub dropped: Vec<(UsState, Organ, f64)>,
    }

    /// Z-score of one entry (`log RR / SE`), when defined.
    fn entry_z(e: &StateOrganRisk) -> Option<f64> {
        e.risk.map(|r| r.log_rr / r.se_log_rr)
    }

    /// Maximum z-score over a risk map.
    fn max_z(map: &RiskMap) -> f64 {
        map.entries
            .iter()
            .filter_map(entry_z)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Runs the permutation test.
    pub fn adjust(
        attention: &AttentionMatrix,
        states: &HashMap<UserId, UsState>,
        alpha: f64,
        permutations: usize,
        seed: u64,
    ) -> Result<PermutationAdjusted> {
        if permutations < 10 {
            return Err(CoreError::InvalidParameter(format!(
                "need at least 10 permutations, got {permutations}"
            )));
        }
        let observed = RiskMap::compute(attention, states, alpha)?;

        // Null distribution: shuffle the state labels over the located
        // users (preserving per-state population sizes exactly).
        let mut located: Vec<UserId> = attention
            .users()
            .iter()
            .copied()
            .filter(|id| states.contains_key(id))
            .collect();
        let labels: Vec<UsState> = located.iter().map(|id| states[id]).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut null_max = Vec::with_capacity(permutations);
        for _ in 0..permutations {
            // Fisher–Yates over the user list = permuting assignments.
            for i in (1..located.len()).rev() {
                located.swap(i, rng.gen_range(0..=i));
            }
            let permuted: HashMap<UserId, UsState> = located
                .iter()
                .zip(&labels)
                .map(|(&id, &s)| (id, s))
                .collect();
            let null_map = RiskMap::compute(attention, &permuted, alpha)?;
            null_max.push(max_z(&null_map));
        }
        null_max.sort_by(|a, b| a.partial_cmp(b).expect("finite z"));
        let idx = (((1.0 - alpha) * permutations as f64).ceil() as usize).min(permutations - 1);
        let critical_z = null_max[idx];

        let mut surviving = Vec::new();
        let mut dropped = Vec::new();
        for e in &observed.entries {
            if !e.is_highlighted() {
                continue;
            }
            let z = entry_z(e).expect("highlighted implies defined risk");
            if z > critical_z {
                surviving.push((e.state, e.organ, z));
            } else {
                dropped.push((e.state, e.organ, z));
            }
        }
        Ok(PermutationAdjusted {
            permutations,
            critical_z,
            surviving,
            dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::extract::MentionCounts;

    /// Builds a synthetic located population: `spec` gives, per state,
    /// the number of users dominated by each organ index.
    fn population(spec: &[(UsState, [u32; 6])]) -> (AttentionMatrix, HashMap<UserId, UsState>) {
        let mut mentions = HashMap::new();
        let mut states = HashMap::new();
        let mut next = 0u64;
        for &(state, counts) in spec {
            for (oi, &n) in counts.iter().enumerate() {
                for _ in 0..n {
                    let mut mc = MentionCounts::new();
                    mc.add(Organ::from_index(oi).unwrap(), 2);
                    mentions.insert(UserId(next), mc);
                    states.insert(UserId(next), state);
                    next += 1;
                }
            }
        }
        (AttentionMatrix::from_mentions(&mentions).unwrap(), states)
    }

    #[test]
    fn planted_excess_is_highlighted() {
        // Kansas: 60% kidney vs 20% elsewhere, with decent samples.
        let (am, st) = population(&[
            (UsState::Kansas, [40, 150, 30, 20, 5, 5]),
            (UsState::Texas, [500, 200, 150, 100, 30, 20]),
            (UsState::Ohio, [500, 200, 150, 100, 30, 20]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let hl = rm.highlighted();
        assert!(
            hl.get(&UsState::Kansas)
                .is_some_and(|v| v.contains(&Organ::Kidney)),
            "highlighted: {hl:?}"
        );
        // Texas and Ohio are identical to each other — no excess.
        assert!(!hl
            .get(&UsState::Texas)
            .is_some_and(|v| v.contains(&Organ::Kidney)));
    }

    #[test]
    fn balanced_population_has_no_highlights() {
        let (am, st) = population(&[
            (UsState::Kansas, [50, 30, 20, 10, 5, 5]),
            (UsState::Texas, [50, 30, 20, 10, 5, 5]),
            (UsState::Ohio, [50, 30, 20, 10, 5, 5]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        assert!(rm.highlighted().is_empty(), "{:?}", rm.highlighted());
    }

    #[test]
    fn rr_point_estimate_correct() {
        let (am, st) = population(&[
            (UsState::Kansas, [0, 20, 0, 0, 0, 80]),
            (UsState::Texas, [0, 10, 0, 0, 0, 90]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let e = rm.entry(UsState::Kansas, Organ::Kidney).unwrap();
        // 20% inside vs 10% outside -> RR = 2.
        let rr = e.risk.unwrap();
        assert!((rr.rr - 2.0).abs() < 1e-12);
        assert_eq!(e.cases_in, 20);
        assert_eq!(e.total_in, 100);
    }

    #[test]
    fn undefined_rr_handled() {
        // Intestine never mentioned anywhere: risk is None, not a panic.
        let (am, st) = population(&[
            (UsState::Kansas, [10, 0, 0, 0, 0, 0]),
            (UsState::Texas, [10, 0, 0, 0, 0, 0]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let e = rm.entry(UsState::Kansas, Organ::Intestine).unwrap();
        assert!(e.risk.is_none());
        assert!(!e.is_highlighted());
    }

    #[test]
    fn single_state_population_has_no_outside() {
        let (am, st) = population(&[(UsState::Kansas, [10, 10, 0, 0, 0, 0])]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        // total_out = 0 -> every risk is None.
        assert!(rm.entries.iter().all(|e| e.risk.is_none()));
    }

    #[test]
    fn invalid_alpha_rejected() {
        let (am, st) = population(&[(UsState::Kansas, [10, 0, 0, 0, 0, 0])]);
        assert!(RiskMap::compute(&am, &st, 0.0).is_err());
        assert!(RiskMap::compute(&am, &st, 1.5).is_err());
    }

    #[test]
    fn global_test_detects_planted_dependence() {
        let (am, st) = population(&[
            (UsState::Kansas, [40, 150, 30, 20, 5, 5]),
            (UsState::Texas, [500, 200, 150, 100, 30, 20]),
            (UsState::Ohio, [500, 200, 150, 100, 30, 20]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let chi = rm.global_independence_test().unwrap();
        assert!(chi.significant_at(0.001), "p = {}", chi.p_value);
        assert!(chi.cramers_v > 0.1, "V = {}", chi.cramers_v);
    }

    #[test]
    fn global_test_quiet_on_identical_states() {
        let (am, st) = population(&[
            (UsState::Kansas, [50, 30, 20, 10, 5, 5]),
            (UsState::Texas, [50, 30, 20, 10, 5, 5]),
        ]);
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let chi = rm.global_independence_test().unwrap();
        assert!(!chi.significant_at(0.05), "p = {}", chi.p_value);
    }

    #[test]
    fn permutation_correction_keeps_strong_plants_drops_noise() {
        // One strong planted anomaly; everything else exchangeable.
        let mut spec = vec![(UsState::Kansas, [60u32, 260, 40, 30, 8, 4])];
        for &s in &[
            UsState::Texas,
            UsState::Ohio,
            UsState::Florida,
            UsState::Georgia,
            UsState::Iowa,
            UsState::Maine,
        ] {
            spec.push((s, [180, 95, 60, 40, 15, 8]));
        }
        let (am, st) = population(&spec);
        let adjusted = permutation::adjust(&am, &st, 0.05, 60, 7).expect("permutation test");
        assert!(
            adjusted
                .surviving
                .iter()
                .any(|&(s, o, _)| s == UsState::Kansas && o == Organ::Kidney),
            "Kansas kidney did not survive: {adjusted:?}"
        );
        // Under exchangeable nulls, few if any other cells survive.
        assert!(
            adjusted.surviving.len() <= 2,
            "too many survivors: {:?}",
            adjusted.surviving
        );
        assert!(
            adjusted.critical_z > 1.96,
            "critical z {}",
            adjusted.critical_z
        );
    }

    #[test]
    fn permutation_rejects_too_few_rounds() {
        let (am, st) = population(&[
            (UsState::Kansas, [10, 10, 2, 2, 1, 1]),
            (UsState::Texas, [10, 10, 2, 2, 1, 1]),
        ]);
        assert!(permutation::adjust(&am, &st, 0.05, 5, 1).is_err());
    }

    #[test]
    fn unlocated_users_ignored() {
        let (am, mut st) = population(&[
            (UsState::Kansas, [20, 20, 0, 0, 0, 0]),
            (UsState::Texas, [20, 20, 0, 0, 0, 0]),
        ]);
        // Drop half the Texas users from the location map.
        let texans: Vec<UserId> = st
            .iter()
            .filter(|(_, &s)| s == UsState::Texas)
            .map(|(&id, _)| id)
            .collect();
        for id in texans.iter().take(20) {
            st.remove(id);
        }
        let rm = RiskMap::compute(&am, &st, 0.05).unwrap();
        let e = rm.entry(UsState::Kansas, Organ::Heart).unwrap();
        assert_eq!(e.total_in, 40);
    }
}
