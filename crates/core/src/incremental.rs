//! Incremental sensing: batch results, one tweet at a time.
//!
//! The batch [`crate::pipeline::Pipeline`] re-reads the whole corpus;
//! a deployed social sensor (the paper's stated goal) instead consumes
//! the stream *as it arrives* and must be able to answer "what does the
//! characterization look like right now?" at any moment. The
//! [`IncrementalSensor`] tracks each user's location resolution and
//! accumulated mentions as tweets stream in, and can snapshot an
//! [`AttentionMatrix`], a [`RiskMap`], or a [`DailySeries`] at any time.
//!
//! Location follows the batch pipeline's semantics exactly: the profile
//! string resolves a user provisionally, and the user's **first**
//! (finite) geotag overrides it permanently — including a foreign geotag
//! voiding a US profile resolution. Because the override is retroactive
//! in the batch pipeline, the sensor keeps per-user tweet buffers and
//! derives snapshots from the *current* resolution, so a snapshot after
//! the full stream is byte-identical to the batch artifacts (tested).

use crate::attention::AttentionMatrix;
use crate::relative_risk::RiskMap;
use crate::temporal::DailySeries;
use crate::{CoreError, Result};
use donorpulse_geo::{Geocoder, UsState};
use donorpulse_text::extract::{MentionCounts, OrganExtractor};
use donorpulse_twitter::{Corpus, Tweet, TweetId, TweetView, UserId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// FNV-1a offset basis (64-bit), shared with the wire-format trailer.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Per-user streaming state.
#[derive(Debug, Clone)]
struct UserTrack {
    /// Current resolution (`None` = unlocated or voided).
    state: Option<UsState>,
    /// True once a finite geotag has fixed the resolution.
    geo_locked: bool,
    /// The user's collected tweets, in arrival order.
    tweets: Vec<Tweet>,
    /// Accumulated organ mentions.
    mentions: MentionCounts,
}

/// One user's streaming state in portable form — the unit of
/// [`SensorExport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrackExport {
    /// Current resolution (`None` = unlocated or voided).
    pub state: Option<UsState>,
    /// True once a finite geotag has fixed the resolution.
    pub geo_locked: bool,
    /// The user's collected tweets, in arrival order.
    pub tweets: Vec<Tweet>,
    /// Accumulated organ mentions.
    pub mentions: MentionCounts,
}

/// The complete streaming state of a sensor, detached from its
/// geocoder and profile lookup — what a shard checkpoints to disk and
/// what [`crate::shard::run_sharded_stream`] merges across shards.
///
/// The `seen` id set and `tweets_seen` counter are *derived*, not
/// stored: every ingested tweet lives in exactly one user track, so
/// [`IncrementalSensor::restore`] rebuilds both from the tracks. Tracks
/// are keyed in a `BTreeMap` so folds over an export are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorExport {
    /// Per-user tracks, keyed by user id.
    pub tracks: BTreeMap<UserId, TrackExport>,
    /// Redeliveries the idempotence guard dropped.
    pub duplicates_ignored: u64,
    /// Highest tweet id ingested.
    pub high_water: Option<TweetId>,
}

impl SensorExport {
    /// Tweets held across all tracks (equals the source sensor's
    /// [`IncrementalSensor::tweets_seen`]).
    pub fn tweet_count(&self) -> u64 {
        self.tracks.values().map(|t| t.tweets.len() as u64).sum()
    }

    /// Deterministic FNV-1a fingerprint of the export's track content.
    ///
    /// Two exports fingerprint equal iff they hold the same users with
    /// the same resolutions and the same tweets in the same arrival
    /// order — i.e. iff every snapshot artifact derived from them
    /// (corpus, attention, risk, report) is identical. Tracks are
    /// folded in `BTreeMap` key order, so the value is independent of
    /// how the export was assembled (single sensor, shard merge,
    /// checkpoint restore). The serving layer uses this as the
    /// strong `ETag` for every HTTP response rendered from a snapshot;
    /// the stream CLI prints it as the closing "sensor fingerprint".
    /// Delivery counters (`duplicates_ignored`, `high_water`) are
    /// *excluded*: they describe how the stream arrived, not what the
    /// sensor knows.
    pub fn fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let mut put = |word: u64| {
            for byte in word.to_le_bytes() {
                h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        };
        put(self.tracks.len() as u64);
        for (user, t) in &self.tracks {
            put(user.0);
            put(match t.state {
                Some(s) => s.index() as u64,
                None => u64::MAX,
            });
            put(u64::from(t.geo_locked));
            put(t.tweets.len() as u64);
            for tw in &t.tweets {
                put(tw.id.0);
                put(tw.user.0);
                put(tw.created_at.0);
                put(tw.text.len() as u64);
                for chunk in tw.text.as_bytes().chunks(8) {
                    let mut word = [0u8; 8];
                    word[..chunk.len()].copy_from_slice(chunk);
                    put(u64::from_le_bytes(word));
                }
                match tw.geo {
                    Some((lat, lon)) => {
                        put(1);
                        put(lat.to_bits());
                        put(lon.to_bits());
                    }
                    None => put(0),
                }
            }
        }
        h
    }

    /// Merges another shard's export into this one.
    ///
    /// Shards partition the stream by user id, so two exports being
    /// merged must own **disjoint** user sets — overlap means the
    /// routing invariant was violated and the merged attention would
    /// split one user's history across two rows, so it is an error,
    /// not a best-effort union. Counters add, high-water marks take
    /// the max.
    pub fn absorb(&mut self, other: SensorExport) -> Result<()> {
        for (user, track) in other.tracks {
            if self.tracks.insert(user, track).is_some() {
                return Err(CoreError::Checkpoint(format!(
                    "shard exports overlap on {user}: user-hash routing violated"
                )));
            }
        }
        self.duplicates_ignored += other.duplicates_ignored;
        self.high_water = self.high_water.max(other.high_water);
        Ok(())
    }
}

/// Streaming state of the sensor.
pub struct IncrementalSensor<'a> {
    geocoder: &'a Geocoder,
    extractor: OrganExtractor,
    /// Profile-location lookup, provided by the platform adapter
    /// (in production a user-profile cache; here, the simulation).
    profile_of: Box<dyn Fn(UserId) -> Option<String> + 'a>,
    tracks: HashMap<UserId, UserTrack>,
    tweets_seen: u64,
    /// Every tweet id ever ingested — makes redelivery idempotent.
    seen: HashSet<TweetId>,
    duplicates_ignored: u64,
    /// Highest tweet id ingested (the resume point a reconnecting
    /// consumer would backfill from).
    high_water: Option<TweetId>,
}

impl<'a> IncrementalSensor<'a> {
    /// Creates a sensor around a geocoder and a profile lookup, using
    /// the paper's organ extractor.
    pub fn new(geocoder: &'a Geocoder, profile_of: impl Fn(UserId) -> Option<String> + 'a) -> Self {
        Self::with_extractor(geocoder, profile_of, OrganExtractor::new())
    }

    /// Creates a sensor with a custom mention extractor — how a
    /// non-default [`crate::campaign::Campaign`] maps its category
    /// lexicons onto the six-slot subject axis. Everything else
    /// (location semantics, idempotence, export format) is identical.
    pub fn with_extractor(
        geocoder: &'a Geocoder,
        profile_of: impl Fn(UserId) -> Option<String> + 'a,
        extractor: OrganExtractor,
    ) -> Self {
        Self {
            geocoder,
            extractor,
            profile_of: Box::new(profile_of),
            tracks: HashMap::new(),
            tweets_seen: 0,
            seen: HashSet::new(),
            duplicates_ignored: 0,
            high_water: None,
        }
    }

    /// Ingests one collected (filter-passing) tweet.
    ///
    /// Ingestion is **idempotent**: a tweet id already ingested — a
    /// stream-level duplicate, or the replayed overlap window after a
    /// reconnect — is counted in [`IncrementalSensor::duplicates_ignored`]
    /// and otherwise ignored. Returns `true` when the tweet was new.
    pub fn ingest(&mut self, tweet: &Tweet) -> bool {
        self.ingest_parts(
            tweet.id,
            tweet.user,
            tweet.created_at,
            &tweet.text,
            tweet.geo,
        )
    }

    /// Ingests a borrowed [`TweetView`] straight off the wire decoder.
    ///
    /// Identical semantics to [`IncrementalSensor::ingest`] — same
    /// idempotence guard, same location rules — but the text is only
    /// materialized into an owned `String` when the tweet is actually
    /// *kept* (stored in its user track). Duplicates are rejected
    /// without allocating anything, which is what lets the v2
    /// zero-copy stream path avoid per-tweet allocation entirely on
    /// the redelivery-heavy segments of a faulty stream.
    pub fn ingest_view(&mut self, view: &TweetView<'_>) -> bool {
        self.ingest_parts(view.id, view.user, view.created_at, view.text, view.geo)
    }

    /// Shared ingestion body: the only place streaming state mutates.
    fn ingest_parts(
        &mut self,
        id: TweetId,
        user: UserId,
        created_at: donorpulse_twitter::SimInstant,
        text: &str,
        geo: Option<(f64, f64)>,
    ) -> bool {
        if !self.seen.insert(id) {
            self.duplicates_ignored += 1;
            return false;
        }
        self.high_water = Some(match self.high_water {
            Some(hw) if hw >= id => hw,
            _ => id,
        });
        self.tweets_seen += 1;
        let track = self.tracks.entry(user).or_insert_with(|| {
            let profile = (self.profile_of)(user);
            UserTrack {
                state: self.geocoder.locate(profile.as_deref(), None).state,
                geo_locked: false,
                tweets: Vec::new(),
                mentions: MentionCounts::new(),
            }
        });
        // First finite geotag fixes the resolution permanently — to a
        // state, or to "outside the USA" (None) for foreign coordinates.
        if !track.geo_locked {
            if let Some((lat, lon)) = geo {
                if lat.is_finite() && lon.is_finite() {
                    track.state = self.geocoder.resolve_point(lat, lon);
                    track.geo_locked = true;
                }
            }
        }
        track.mentions.merge(&self.extractor.extract(text));
        track.tweets.push(Tweet {
            id,
            user,
            created_at,
            text: text.to_owned(),
            geo,
        });
        true
    }

    /// Ingests a whole batch, touching each user's track entry once per
    /// **run** of consecutive same-user tweets instead of once per
    /// tweet. Returns how many tweets were newly ingested.
    ///
    /// Semantically identical to calling [`IncrementalSensor::ingest`]
    /// on each tweet in order (tested): the idempotence guard, the
    /// high-water mark, and every location rule observe the same
    /// per-tweet sequence. What's amortized is purely the track-map
    /// hash lookup, which the v2 batched wire path otherwise pays per
    /// tweet even though batch frames arrive heavily run-grouped
    /// (users tweet in bursts and the router batches per shard).
    /// `repro bench-stream` carries the microbenchmark.
    pub fn ingest_batch(&mut self, tweets: &[Tweet]) -> u64 {
        let mut newly = 0u64;
        let mut fresh: Vec<usize> = Vec::new();
        let mut i = 0usize;
        while i < tweets.len() {
            let user = tweets[i].user;
            let mut j = i + 1;
            while j < tweets.len() && tweets[j].user == user {
                j += 1;
            }
            // Pass 1 — delivery accounting, per tweet and in order.
            fresh.clear();
            for (k, t) in tweets[i..j].iter().enumerate() {
                if !self.seen.insert(t.id) {
                    self.duplicates_ignored += 1;
                    continue;
                }
                self.high_water = Some(match self.high_water {
                    Some(hw) if hw >= t.id => hw,
                    _ => t.id,
                });
                self.tweets_seen += 1;
                fresh.push(i + k);
            }
            // Pass 2 — one track lookup for the whole run. A run of
            // pure duplicates never creates an empty track (a seen id
            // implies the user's track already exists, but an absent
            // track must stay absent for export/fingerprint parity).
            if !fresh.is_empty() {
                let track = self.tracks.entry(user).or_insert_with(|| {
                    let profile = (self.profile_of)(user);
                    UserTrack {
                        state: self.geocoder.locate(profile.as_deref(), None).state,
                        geo_locked: false,
                        tweets: Vec::new(),
                        mentions: MentionCounts::new(),
                    }
                });
                for &k in &fresh {
                    let t = &tweets[k];
                    if !track.geo_locked {
                        if let Some((lat, lon)) = t.geo {
                            if lat.is_finite() && lon.is_finite() {
                                track.state = self.geocoder.resolve_point(lat, lon);
                                track.geo_locked = true;
                            }
                        }
                    }
                    track.mentions.merge(&self.extractor.extract(&t.text));
                    track.tweets.push(t.clone());
                }
                newly += fresh.len() as u64;
            }
            i = j;
        }
        newly
    }

    /// Exports the sensor's complete streaming state in portable form
    /// (checkpointing, shard merging). The geocoder and profile lookup
    /// are *not* part of the export; [`IncrementalSensor::restore`]
    /// reattaches them.
    pub fn export(&self) -> SensorExport {
        SensorExport {
            tracks: self
                .tracks
                .iter()
                .map(|(&user, t)| {
                    (
                        user,
                        TrackExport {
                            state: t.state,
                            geo_locked: t.geo_locked,
                            tweets: t.tweets.clone(),
                            mentions: t.mentions,
                        },
                    )
                })
                .collect(),
            duplicates_ignored: self.duplicates_ignored,
            high_water: self.high_water,
        }
    }

    /// Rebuilds a sensor from an export, reattaching a geocoder and
    /// profile lookup.
    ///
    /// The id-idempotence set and `tweets_seen` counter are rebuilt
    /// from the exported tracks, so a restored sensor keeps rejecting
    /// redeliveries of everything it ingested before the export — the
    /// property checkpoint resume leans on when the source replays an
    /// overlap window across the restore point.
    pub fn restore(
        geocoder: &'a Geocoder,
        profile_of: impl Fn(UserId) -> Option<String> + 'a,
        export: SensorExport,
    ) -> Self {
        Self::restore_with_extractor(geocoder, profile_of, export, OrganExtractor::new())
    }

    /// [`IncrementalSensor::restore`] with a campaign-specific mention
    /// extractor (the accumulated mentions in the export were produced
    /// by the same extractor, so restore never re-extracts; the
    /// extractor only matters for tweets ingested *after* the restore).
    pub fn restore_with_extractor(
        geocoder: &'a Geocoder,
        profile_of: impl Fn(UserId) -> Option<String> + 'a,
        export: SensorExport,
        extractor: OrganExtractor,
    ) -> Self {
        let mut seen = HashSet::new();
        let mut tweets_seen = 0u64;
        let mut tracks = HashMap::with_capacity(export.tracks.len());
        for (user, t) in export.tracks {
            for tweet in &t.tweets {
                seen.insert(tweet.id);
                tweets_seen += 1;
            }
            tracks.insert(
                user,
                UserTrack {
                    state: t.state,
                    geo_locked: t.geo_locked,
                    tweets: t.tweets,
                    mentions: t.mentions,
                },
            );
        }
        Self {
            geocoder,
            extractor,
            profile_of: Box::new(profile_of),
            tracks,
            tweets_seen,
            seen,
            duplicates_ignored: export.duplicates_ignored,
            high_water: export.high_water,
        }
    }

    /// Collected tweets ingested so far (any location).
    pub fn tweets_seen(&self) -> u64 {
        self.tweets_seen
    }

    /// Redeliveries dropped by the idempotence guard.
    pub fn duplicates_ignored(&self) -> u64 {
        self.duplicates_ignored
    }

    /// Highest tweet id ingested so far — the resume point a
    /// reconnecting consumer would request backfill from.
    pub fn high_water(&self) -> Option<TweetId> {
        self.high_water
    }

    /// Users located to a US state under the current resolution.
    pub fn located_users(&self) -> usize {
        self.tracks.values().filter(|t| t.state.is_some()).count()
    }

    /// USA tweets under the current resolution.
    pub fn usa_tweet_count(&self) -> usize {
        self.tracks
            .values()
            .filter(|t| t.state.is_some())
            .map(|t| t.tweets.len())
            .sum()
    }

    /// Snapshot: the USA corpus under the current resolution, in tweet-id
    /// order (the stream's chronological order).
    pub fn corpus(&self) -> Corpus {
        let mut tweets: Vec<Tweet> = self
            .tracks
            .values()
            .filter(|t| t.state.is_some())
            .flat_map(|t| t.tweets.iter().cloned())
            .collect();
        tweets.sort_by_key(|t| t.id);
        Corpus::from_tweets(tweets)
    }

    /// Snapshot: the attention matrix `Û` over located users.
    pub fn attention(&self) -> Result<AttentionMatrix> {
        let mentions: HashMap<UserId, MentionCounts> = self
            .tracks
            .iter()
            .filter(|(_, t)| t.state.is_some())
            .map(|(&id, t)| (id, t.mentions))
            .collect();
        AttentionMatrix::from_mentions(&mentions)
    }

    /// Snapshot: the user → state map (located users only).
    pub fn user_states(&self) -> HashMap<UserId, UsState> {
        self.tracks
            .iter()
            .filter_map(|(&id, t)| t.state.map(|s| (id, s)))
            .collect()
    }

    /// Snapshot: the current relative-risk map.
    pub fn risk_map(&self, alpha: f64) -> Result<RiskMap> {
        let attention = self.attention()?;
        RiskMap::compute(&attention, &self.user_states(), alpha)
    }

    /// Snapshot: the daily mention series over the USA corpus.
    pub fn daily_series(&self) -> DailySeries {
        DailySeries::from_corpus(&self.corpus())
    }

    /// Guards against snapshotting before any located data arrived.
    pub fn ensure_nonempty(&self) -> Result<()> {
        if self.located_users() == 0 {
            return Err(CoreError::EmptyCorpus {
                what: "incremental sensor",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::KeywordQuery;
    use donorpulse_twitter::{GeneratorConfig, TwitterSimulation};

    fn sim() -> TwitterSimulation {
        let mut cfg = GeneratorConfig::paper_scaled(0.01);
        cfg.seed = 808;
        TwitterSimulation::generate(cfg).expect("sim")
    }

    fn sensor_for<'a>(sim: &'a TwitterSimulation, geocoder: &'a Geocoder) -> IncrementalSensor<'a> {
        IncrementalSensor::new(geocoder, |id| {
            sim.users()
                .get(id.0 as usize)
                .map(|u| u.profile_location.clone())
        })
    }

    #[test]
    fn incremental_matches_batch_pipeline() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut sensor = sensor_for(&sim, &geocoder);
        for t in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
            sensor.ingest(&t);
        }
        sensor.ensure_nonempty().unwrap();

        // Batch equivalent over the same simulation.
        let pipeline = crate::pipeline::Pipeline::new();
        let config = crate::pipeline::PipelineConfig {
            generator: sim.config().clone(),
            run_user_clustering: false,
            ..Default::default()
        };
        let batch = pipeline.run_on(&sim, config).unwrap();

        assert_eq!(sensor.tweets_seen(), batch.collected_tweets);
        assert_eq!(sensor.usa_tweet_count(), batch.usa.len());
        assert_eq!(sensor.user_states(), batch.user_states);
        assert_eq!(sensor.corpus().tweets(), batch.usa.tweets());
        let inc_attention = sensor.attention().unwrap();
        assert_eq!(inc_attention, batch.attention);
        // Risk maps agree entry-by-entry.
        let inc_risk = sensor.risk_map(0.05).unwrap();
        assert_eq!(inc_risk.entries.len(), batch.risk.entries.len());
        for (a, b) in inc_risk.entries.iter().zip(&batch.risk.entries) {
            assert_eq!(
                (a.state, a.organ, a.cases_in),
                (b.state, b.organ, b.cases_in)
            );
            assert_eq!(a.risk.map(|r| r.rr), b.risk.map(|r| r.rr));
        }
    }

    #[test]
    fn daily_series_matches_batch() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut sensor = sensor_for(&sim, &geocoder);
        for t in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
            sensor.ingest(&t);
        }
        let incremental = sensor.daily_series();
        let batch = DailySeries::from_corpus(&sensor.corpus());
        for day in 0..incremental.days() {
            assert_eq!(incremental.total(day), batch.total(day), "day {day}");
        }
    }

    #[test]
    fn snapshots_available_mid_stream() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut sensor = sensor_for(&sim, &geocoder);
        let tweets: Vec<_> = sim
            .stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .collect();
        let half = tweets.len() / 2;
        for t in &tweets[..half] {
            sensor.ingest(t);
        }
        let mid_users = sensor.attention().unwrap().user_count();
        assert!(mid_users > 0);
        for t in &tweets[half..] {
            sensor.ingest(t);
        }
        let end_users = sensor.attention().unwrap().user_count();
        assert!(end_users >= mid_users);
        assert_eq!(sensor.tweets_seen(), tweets.len() as u64);
    }

    #[test]
    fn empty_sensor_guard() {
        let geocoder = Geocoder::new();
        let sensor = IncrementalSensor::new(&geocoder, |_| None);
        assert!(sensor.ensure_nonempty().is_err());
        assert!(sensor.attention().is_err());
        assert_eq!(sensor.located_users(), 0);
    }

    fn tweet(id: u64, user: u64, text: &str, geo: Option<(f64, f64)>) -> Tweet {
        Tweet {
            id: donorpulse_twitter::TweetId(id),
            user: UserId(user),
            created_at: donorpulse_twitter::SimInstant(id),
            text: text.to_string(),
            geo,
        }
    }

    #[test]
    fn late_geotag_upgrades_unlocated_user_retroactively() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("somewhere nice".to_string()));
        sensor.ingest(&tweet(0, 1, "kidney donor", None));
        assert_eq!(sensor.located_users(), 0);
        sensor.ingest(&tweet(
            1,
            1,
            "kidney transplant tomorrow",
            Some((37.69, -97.34)),
        ));
        assert_eq!(sensor.located_users(), 1);
        assert_eq!(sensor.user_states().get(&UserId(1)), Some(&UsState::Kansas));
        // Both tweets count retroactively, as in the batch pipeline.
        assert_eq!(sensor.usa_tweet_count(), 2);
        let att = sensor.attention().unwrap();
        assert_eq!(att.raw_counts(0).count(donorpulse_text::Organ::Kidney), 2);
    }

    #[test]
    fn foreign_geotag_voids_us_profile() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        sensor.ingest(&tweet(0, 1, "kidney donor", None));
        assert_eq!(sensor.located_users(), 1);
        // First geotag is London: the user is actually abroad.
        sensor.ingest(&tweet(1, 1, "kidney donor again", Some((51.5, -0.1))));
        assert_eq!(sensor.located_users(), 0);
        assert_eq!(sensor.usa_tweet_count(), 0);
        // A later US geotag does NOT flip it back (first geotag wins,
        // matching the batch pipeline's first-geotag semantics).
        sensor.ingest(&tweet(2, 1, "kidney once more", Some((37.69, -97.34))));
        assert_eq!(sensor.located_users(), 0);
    }

    #[test]
    fn export_restore_roundtrip_preserves_snapshots_and_idempotence() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut sensor = sensor_for(&sim, &geocoder);
        let tweets: Vec<_> = sim
            .stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .collect();
        let half = tweets.len() / 2;
        for t in &tweets[..half] {
            sensor.ingest(t);
        }
        let export = sensor.export();
        assert_eq!(export.tweet_count(), sensor.tweets_seen());
        let mut restored = IncrementalSensor::restore(
            &geocoder,
            |id| {
                sim.users()
                    .get(id.0 as usize)
                    .map(|u| u.profile_location.clone())
            },
            export,
        );
        assert_eq!(restored.tweets_seen(), sensor.tweets_seen());
        assert_eq!(restored.high_water(), sensor.high_water());
        // Redelivering the already-ingested prefix must be rejected by
        // the rebuilt idempotence set.
        for t in &tweets[..half] {
            assert!(!restored.ingest(t), "restored sensor re-ingested {}", t.id);
        }
        // Finishing the stream on both sensors converges bitwise.
        for t in &tweets[half..] {
            sensor.ingest(t);
            restored.ingest(t);
        }
        assert_eq!(restored.user_states(), sensor.user_states());
        assert_eq!(restored.corpus().tweets(), sensor.corpus().tweets());
        assert_eq!(restored.attention().unwrap(), sensor.attention().unwrap());
    }

    #[test]
    fn absorb_merges_disjoint_exports_and_rejects_overlap() {
        let geocoder = Geocoder::new();
        let mut a = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        a.ingest(&tweet(0, 1, "kidney donor", None));
        let mut b = IncrementalSensor::new(&geocoder, |_| Some("Wichita, KS".to_string()));
        b.ingest(&tweet(1, 2, "liver donor", None));

        let mut merged = a.export();
        merged.absorb(b.export()).expect("disjoint users merge");
        assert_eq!(merged.tracks.len(), 2);
        assert_eq!(merged.tweet_count(), 2);
        assert_eq!(merged.high_water, Some(donorpulse_twitter::TweetId(1)));

        // Same user on both sides: the routing invariant is broken.
        let mut c = IncrementalSensor::new(&geocoder, |_| None);
        c.ingest(&tweet(2, 1, "heart talk", None));
        assert!(merged.absorb(c.export()).is_err());
    }

    #[test]
    fn fingerprint_tracks_content_not_delivery() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        let t0 = tweet(0, 1, "kidney donor", None);
        sensor.ingest(&t0);
        let fp_one = sensor.export().fingerprint();
        // A redelivered duplicate changes the duplicate counter but not
        // the fingerprint: the sensor's knowledge is unchanged.
        assert!(!sensor.ingest(&t0));
        assert_eq!(sensor.export().fingerprint(), fp_one);
        // A genuinely new tweet advances it.
        sensor.ingest(&tweet(1, 2, "liver donor", None));
        let fp_two = sensor.export().fingerprint();
        assert_ne!(fp_two, fp_one);
        // Assembly path is irrelevant: merging two single-user exports
        // fingerprints identically to the one sensor that saw both.
        let mut a = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        a.ingest(&tweet(0, 1, "kidney donor", None));
        let mut b = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        b.ingest(&tweet(1, 2, "liver donor", None));
        let mut merged = a.export();
        merged.absorb(b.export()).unwrap();
        assert_eq!(merged.fingerprint(), fp_two);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        let t = tweet(0, 1, "kidney donor", None);
        assert!(sensor.ingest(&t));
        let att_once = sensor.attention().unwrap();
        let risk_once = sensor.risk_map(0.05).unwrap();
        // The stream redelivers the same tweet (duplicate or replay).
        assert!(!sensor.ingest(&t));
        assert!(!sensor.ingest(&t));
        assert_eq!(sensor.tweets_seen(), 1);
        assert_eq!(sensor.duplicates_ignored(), 2);
        assert_eq!(sensor.usa_tweet_count(), 1);
        assert_eq!(sensor.attention().unwrap(), att_once);
        let risk_again = sensor.risk_map(0.05).unwrap();
        assert_eq!(risk_again.entries.len(), risk_once.entries.len());
        for (a, b) in risk_again.entries.iter().zip(&risk_once.entries) {
            assert_eq!(a.risk.map(|r| r.rr), b.risk.map(|r| r.rr));
        }
    }

    #[test]
    fn ingest_view_is_equivalent_to_ingest() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut owned = sensor_for(&sim, &geocoder);
        let mut viewed = sensor_for(&sim, &geocoder);
        for t in sim.stream().with_filter(Box::new(KeywordQuery::paper())) {
            let view = TweetView {
                id: t.id,
                user: t.user,
                created_at: t.created_at,
                text: &t.text,
                geo: t.geo,
            };
            assert_eq!(owned.ingest(&t), viewed.ingest_view(&view));
            // Redelivery through the view path is rejected alloc-free.
            assert!(!viewed.ingest_view(&view));
        }
        // Fingerprints agree (delivery counters are excluded from them,
        // so the extra duplicates on the view side don't matter).
        assert_eq!(owned.export().fingerprint(), viewed.export().fingerprint());
        assert_eq!(owned.corpus().tweets(), viewed.corpus().tweets());
        assert_eq!(owned.attention().unwrap(), viewed.attention().unwrap());
    }

    #[test]
    fn ingest_batch_is_equivalent_to_per_tweet_ingest() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let mut per_tweet = sensor_for(&sim, &geocoder);
        let mut batched = sensor_for(&sim, &geocoder);
        let tweets: Vec<_> = sim
            .stream()
            .with_filter(Box::new(KeywordQuery::paper()))
            .collect();
        // Batch boundaries chosen to split user runs mid-way, plus a
        // redelivered window straddling two batches.
        let mut with_dups = tweets.clone();
        let overlap = tweets.len().min(7);
        with_dups.extend(tweets[..overlap].iter().cloned());
        for chunk in with_dups.chunks(13) {
            let expect: u64 = chunk.iter().map(|t| u64::from(per_tweet.ingest(t))).sum();
            assert_eq!(batched.ingest_batch(chunk), expect);
        }
        assert_eq!(batched.tweets_seen(), per_tweet.tweets_seen());
        assert_eq!(batched.duplicates_ignored(), per_tweet.duplicates_ignored());
        assert_eq!(batched.high_water(), per_tweet.high_water());
        assert_eq!(batched.export(), per_tweet.export());
        assert_eq!(
            batched.export().fingerprint(),
            per_tweet.export().fingerprint()
        );
    }

    #[test]
    fn ingest_batch_of_pure_duplicates_creates_no_track() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        let t = tweet(0, 1, "kidney donor", None);
        sensor.ingest(&t);
        let fp = sensor.export().fingerprint();
        // Redelivering the same tweet as a batch must not create or
        // touch any track (fingerprint parity with the scalar path).
        assert_eq!(sensor.ingest_batch(&[t.clone(), t.clone()]), 0);
        assert_eq!(sensor.duplicates_ignored(), 2);
        assert_eq!(sensor.export().fingerprint(), fp);
        assert_eq!(sensor.export().tracks.len(), 1);
    }

    #[test]
    fn custom_extractor_threads_through_restore() {
        use donorpulse_text::extract::OrganExtractor;
        let geocoder = Geocoder::new();
        let ex = || OrganExtractor::with_lexicons([vec!["blood"], vec!["plasma"]]);
        let mut sensor =
            IncrementalSensor::with_extractor(&geocoder, |_| Some("Boston, MA".into()), ex());
        sensor.ingest(&tweet(0, 1, "blood blood plasma donation", None));
        let slot0 = donorpulse_text::Organ::from_index(0).unwrap();
        let att = sensor.attention().unwrap();
        assert_eq!(att.raw_counts(0).count(slot0), 2);
        let restored = IncrementalSensor::restore_with_extractor(
            &geocoder,
            |_| Some("Boston, MA".into()),
            sensor.export(),
            ex(),
        );
        assert_eq!(restored.attention().unwrap(), att);
    }

    #[test]
    fn foreign_geotag_in_replayed_overlap_still_voids_profile() {
        let geocoder = Geocoder::new();
        let mut sensor = IncrementalSensor::new(&geocoder, |_| Some("Boston, MA".to_string()));
        // Original delivery order before a disconnect.
        sensor.ingest(&tweet(0, 1, "kidney donor", None));
        sensor.ingest(&tweet(1, 1, "liver chat", None));
        assert_eq!(sensor.located_users(), 1);
        assert_eq!(sensor.high_water(), Some(donorpulse_twitter::TweetId(1)));
        // Reconnect replays the overlap window: the duplicates are
        // ignored, but the *new* tweet inside the window carries a
        // foreign geotag — it must still void the US profile resolution.
        assert!(!sensor.ingest(&tweet(0, 1, "kidney donor", None)));
        assert!(!sensor.ingest(&tweet(1, 1, "liver chat", None)));
        assert!(sensor.ingest(&tweet(2, 1, "kidney from abroad", Some((51.5, -0.1)))));
        assert_eq!(sensor.located_users(), 0);
        assert_eq!(sensor.usa_tweet_count(), 0);
        assert_eq!(sensor.duplicates_ignored(), 2);
    }
}
