//! Fig. 7: K-Means clustering of users by their full attention vectors.
//!
//! Beyond the argmax view of Eq. 1, the paper clusters the raw rows of
//! `Û` with K-Means and selects `k` by comparing the silhouette
//! coefficient, the average cluster size and the inertia across a sweep
//! (they report silhouette 0.953, average size 31,697.42/12 users and
//! inertia 2,512.27 at `k = 12`). Since six organs exist, `k ≥ 6` is
//! required for at least one cluster per organ.

use crate::attention::AttentionMatrix;
use crate::{CoreError, Result};
use donorpulse_cluster::silhouette::sampled_silhouette_score_rows;
use donorpulse_cluster::{par, KMeans, KMeansConfig, Metric};
use donorpulse_linalg::Rows;
use donorpulse_text::Organ;
use serde::Serialize;

/// Metrics for one candidate `k` in the selection sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct KCandidate {
    /// Number of clusters.
    pub k: usize,
    /// Sampled silhouette coefficient.
    pub silhouette: f64,
    /// Within-cluster sum of squares.
    pub inertia: f64,
    /// Average cluster size.
    pub avg_cluster_size: f64,
    /// Lloyd iterations the fit took to converge (feeds the pipeline's
    /// `kmeans_iterations_total` counter).
    pub iterations: usize,
}

/// The fitted Fig. 7 artifact.
#[derive(Debug, Clone, Serialize)]
pub struct UserClustering {
    /// The fitted model at the chosen `k`.
    pub model: KMeans,
    /// The selection sweep (one entry per candidate `k`).
    pub sweep: Vec<KCandidate>,
    /// The chosen `k`.
    pub chosen_k: usize,
}

/// Configuration for the user-clustering stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct UserClusteringConfig {
    /// Candidate `k` range (inclusive); the paper sweeps from 6 upward.
    pub k_min: usize,
    /// Upper end of the sweep (inclusive).
    pub k_max: usize,
    /// Silhouette subsample cap (the paper's 72k users make full
    /// silhouette O(n²) prohibitive).
    pub silhouette_sample: usize,
    /// RNG seed for K-Means.
    pub seed: u64,
}

impl Default for UserClusteringConfig {
    fn default() -> Self {
        Self {
            k_min: 6,
            k_max: 16,
            silhouette_sample: 2_000,
            seed: 0xF167,
        }
    }
}

impl UserClustering {
    /// Sweeps `k`, scores each candidate, and keeps the best silhouette.
    /// Single-threaded; see [`UserClustering::fit_threaded`].
    pub fn fit(attention: &AttentionMatrix, config: UserClusteringConfig) -> Result<Self> {
        Self::fit_threaded(attention, config, 1)
    }

    /// Sweeps `k` on up to `threads` workers (`0` = all cores), scores
    /// each candidate, and keeps the best silhouette.
    ///
    /// The thread budget is split two ways: candidates run concurrently
    /// (at most one worker each), and whatever remains parallelizes each
    /// candidate's Lloyd iterations and silhouette scoring internally.
    /// Both levels reduce through `donorpulse_cluster::par`'s
    /// fixed-order chunked merge, so the fitted artifact is
    /// bit-identical for any `threads` value.
    pub fn fit_threaded(
        attention: &AttentionMatrix,
        config: UserClusteringConfig,
        threads: usize,
    ) -> Result<Self> {
        if config.k_min < 2 || config.k_min > config.k_max {
            return Err(CoreError::InvalidParameter(format!(
                "invalid k range [{}, {}]",
                config.k_min, config.k_max
            )));
        }
        let rows = Rows::from_matrix(attention.matrix());
        if rows.len() <= config.k_max {
            return Err(CoreError::InvalidParameter(format!(
                "need more than k_max = {} users, got {}",
                config.k_max,
                rows.len()
            )));
        }

        let candidates: Vec<usize> = (config.k_min..=config.k_max).collect();
        let total = par::resolve_threads(threads);
        let outer = total.min(candidates.len()).max(1);
        let inner = (total / outer).max(1);

        // One chunk per candidate k: the sweep itself is the outer
        // parallel loop, and results come back in candidate order.
        let fitted = par::map_chunks(candidates.len(), 1, outer, |c, _| -> Result<_> {
            let k = candidates[c];
            let model = KMeans::fit_rows(
                &rows,
                KMeansConfig {
                    k,
                    max_iter: 100,
                    tol: 1e-7,
                    seed: config.seed,
                },
                inner,
            )?;
            let silhouette = sampled_silhouette_score_rows(
                &rows,
                &model.labels,
                Metric::Euclidean,
                config.silhouette_sample,
                inner,
            )?;
            let candidate = KCandidate {
                k,
                silhouette,
                inertia: model.inertia,
                avg_cluster_size: model.average_cluster_size(),
                iterations: model.iterations,
            };
            Ok((candidate, model))
        });

        let mut sweep = Vec::with_capacity(candidates.len());
        let mut best: Option<(usize, f64, KMeans)> = None;
        for result in fitted {
            let (candidate, model) = result?;
            let better = match &best {
                None => true,
                Some((_, best_s, _)) => candidate.silhouette > *best_s,
            };
            if better {
                best = Some((candidate.k, candidate.silhouette, model));
            }
            sweep.push(candidate);
        }
        let (chosen_k, _, model) = best.expect("nonempty sweep");
        Ok(Self {
            model,
            sweep,
            chosen_k,
        })
    }

    /// Cluster profiles: each cluster's centroid as an organ
    /// distribution, with its relative size — Fig. 7's panels.
    pub fn profiles(&self) -> Vec<ClusterProfile> {
        let n = self.model.labels.len() as f64;
        let sizes = self.model.cluster_sizes();
        self.model
            .centroids
            .iter()
            .zip(sizes)
            .enumerate()
            .map(|(idx, (centroid, size))| {
                let mut distribution = [0.0; Organ::COUNT];
                distribution.copy_from_slice(centroid);
                let mut ranked: Vec<(Organ, f64)> = Organ::ALL
                    .into_iter()
                    .map(|o| (o, distribution[o.index()]))
                    .collect();
                ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
                ClusterProfile {
                    cluster: idx,
                    size,
                    relative_size: size as f64 / n,
                    distribution,
                    ranked,
                }
            })
            .collect()
    }
}

/// One Fig. 7 panel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterProfile {
    /// Cluster index (K-Means label).
    pub cluster: usize,
    /// Members.
    pub size: usize,
    /// Fraction of all users.
    pub relative_size: f64,
    /// Centroid over organs.
    pub distribution: [f64; Organ::COUNT],
    /// Centroid ranked descending.
    pub ranked: Vec<(Organ, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_text::extract::MentionCounts;
    use donorpulse_twitter::UserId;
    use std::collections::HashMap;

    /// 6 planted single-organ archetypes, 40 users each.
    fn attention() -> AttentionMatrix {
        let mut map = HashMap::new();
        let mut next = 0u64;
        for organ in Organ::ALL {
            for j in 0..40 {
                let mut mc = MentionCounts::new();
                mc.add(organ, 10);
                // Small deterministic off-organ noise.
                mc.add(Organ::ALL[(organ.index() + 1 + j % 2) % 6], 1);
                map.insert(UserId(next), mc);
                next += 1;
            }
        }
        AttentionMatrix::from_mentions(&map).unwrap()
    }

    fn config() -> UserClusteringConfig {
        UserClusteringConfig {
            k_min: 4,
            k_max: 10,
            silhouette_sample: 500,
            seed: 3,
        }
    }

    #[test]
    fn sweep_covers_range_and_selects_best() {
        let uc = UserClustering::fit(&attention(), config()).unwrap();
        assert_eq!(uc.sweep.len(), 7);
        assert_eq!(uc.sweep[0].k, 4);
        assert_eq!(uc.sweep.last().unwrap().k, 10);
        let best = uc
            .sweep
            .iter()
            .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).unwrap())
            .unwrap();
        assert_eq!(uc.chosen_k, best.k);
        assert_eq!(uc.model.k(), uc.chosen_k);
    }

    #[test]
    fn planted_archetypes_score_high_silhouette() {
        let uc = UserClustering::fit(&attention(), config()).unwrap();
        let chosen = uc.sweep.iter().find(|c| c.k == uc.chosen_k).unwrap();
        assert!(
            chosen.silhouette > 0.7,
            "silhouette {} too low",
            chosen.silhouette
        );
    }

    #[test]
    fn profiles_cover_all_users() {
        let uc = UserClustering::fit(&attention(), config()).unwrap();
        let profiles = uc.profiles();
        assert_eq!(profiles.len(), uc.chosen_k);
        let total: usize = profiles.iter().map(|p| p.size).sum();
        assert_eq!(total, 240);
        let rel: f64 = profiles.iter().map(|p| p.relative_size).sum();
        assert!((rel - 1.0).abs() < 1e-9);
        for p in &profiles {
            // Centroids of distributions are distributions.
            let s: f64 = p.distribution.iter().sum();
            assert!((s - 1.0).abs() < 1e-6, "centroid sums to {s}");
            // Ranked is descending.
            for w in p.ranked.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
        }
    }

    #[test]
    fn six_organ_archetypes_recovered_at_k6() {
        let am = attention();
        let uc = UserClustering::fit(
            &am,
            UserClusteringConfig {
                k_min: 6,
                k_max: 6,
                silhouette_sample: 500,
                seed: 5,
            },
        )
        .unwrap();
        // Each cluster's top organ should be distinct: 6 organs, 6 clusters.
        let mut tops: Vec<Organ> = uc.profiles().iter().map(|p| p.ranked[0].0).collect();
        tops.sort();
        tops.dedup();
        assert_eq!(tops.len(), 6, "profiles collapsed: {tops:?}");
    }

    #[test]
    fn fit_threaded_bit_identical_across_thread_counts() {
        let am = attention();
        let base = UserClustering::fit_threaded(&am, config(), 1).unwrap();
        assert_eq!(
            serde_json::to_string(&base.sweep).unwrap(),
            serde_json::to_string(&UserClustering::fit(&am, config()).unwrap().sweep).unwrap()
        );
        for threads in [2, 4, 0] {
            let uc = UserClustering::fit_threaded(&am, config(), threads).unwrap();
            assert_eq!(base.chosen_k, uc.chosen_k, "threads = {threads}");
            assert_eq!(base.model.labels, uc.model.labels, "threads = {threads}");
            assert_eq!(
                base.model.inertia.to_bits(),
                uc.model.inertia.to_bits(),
                "threads = {threads}"
            );
            for (a, b) in base.sweep.iter().zip(&uc.sweep) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.silhouette.to_bits(), b.silhouette.to_bits());
                assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
                assert_eq!(a.iterations, b.iterations);
            }
        }
    }

    #[test]
    fn invalid_ranges_rejected() {
        let am = attention();
        let mut cfg = config();
        cfg.k_min = 1;
        assert!(UserClustering::fit(&am, cfg).is_err());
        let mut cfg = config();
        cfg.k_min = 10;
        cfg.k_max = 5;
        assert!(UserClustering::fit(&am, cfg).is_err());
        let mut cfg = config();
        cfg.k_max = 500; // more than users
        assert!(UserClustering::fit(&am, cfg).is_err());
    }
}
