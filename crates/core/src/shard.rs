//! The sharded consumer group: scale-out for the streaming front-half.
//!
//! [`run_sharded_stream`] partitions the faulted stream **by user id**
//! across N worker threads, each owning its own
//! [`IncrementalSensor`] behind a bounded mpsc channel (the same
//! backpressure-by-construction pattern as
//! [`crate::stream_consumer::run_faulted_stream`]), and then merges the
//! per-shard states into artifacts **byte-identical** to the
//! single-sensor run — for every shard count, because the identity is
//! structural, not tuned:
//!
//! 1. the router hashes the *user* id, so every tweet of a given user
//!    lands on the same shard, in stream order (the resequenced source
//!    emits strictly increasing tweet ids, and the per-shard channels
//!    are FIFO);
//! 2. the sensor's state is entirely per-user (tracks), so a shard's
//!    tracks equal exactly the single sensor's tracks for the users it
//!    owns;
//! 3. the merge is a disjoint union of track maps
//!    ([`SensorExport::absorb`] rejects overlap) and every snapshot
//!    function sorts before emitting — so the merged artifacts cannot
//!    depend on N. `docs/SCALING.md` gives the full argument.
//!
//! **Checkpointing** uses marker messages for a consistent cut: every
//! `checkpoint_every` routed tweets the router broadcasts a checkpoint
//! marker down each FIFO channel; a shard's state at
//! marker receipt reflects precisely the tweets routed before the
//! marker, so the set of epoch-`e` [`SensorCheckpoint`]s is a
//! crash-consistent snapshot of the whole group. Resume loads the
//! newest epoch *complete across all shards*, restores each sensor and
//! its park residue, and seeks the source past the cut's high-water
//! mark — no full-stream replay, and the finished run's fingerprint
//! equals the uninterrupted one (the sensor's id-idempotence plus a
//! router-side replay guard make any residual overlap harmless).
//! With [`ShardConfig::checkpoint_retain`] set, the router compacts
//! the store as it goes — keeping only the newest K cuts that are
//! complete across every shard — so a long run's checkpoint directory
//! stays bounded.
//!
//! **Elastic re-sharding** ([`ShardConfig::reshard_at`]): after K
//! routed tweets the router freezes the group at a dedicated cut
//! epoch by sending each worker a drain message, collects the workers'
//! in-memory state, re-keys every track and parked tweet by the new
//! user-hash modulus (the same split the offline `repro reshard` verb
//! — [`crate::reshard`] — applies to a stored cut), rewrites
//! the checkpoint store to the new layout when one is attached, and
//! respawns the worker topology at M shards — all without stopping
//! the source. The identity argument above is what makes the swap
//! artifact-invariant: tracks are per-user and the merge is a sorted
//! disjoint union, so *where* a user's track lives between the swap
//! point and the end of the stream cannot be observed in the output.

use crate::campaign::CampaignSet;
use crate::checkpoint::{
    compact_checkpoints, latest_complete_epoch, CampaignSection, CheckpointStore, DeadLetter,
    DeadLetterLog, SensorCheckpoint,
};
use crate::incremental::{IncrementalSensor, SensorExport};
use crate::pipeline::RunMetrics;
use crate::reshard;
use crate::stream_consumer::{pump_source, GeoAdmission, SourceOutcome, StreamPipelineConfig};
use crate::{CoreError, Result};
use donorpulse_geo::service::LocationService;
use donorpulse_geo::Geocoder;
use donorpulse_twitter::fault::{FaultConfig, FaultStats};
use donorpulse_twitter::time::VirtualClock;
use donorpulse_twitter::{Tweet, TweetId, TwitterSimulation, UserId};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::thread;

/// Hard ceiling on the shard count — bounds the per-shard metric name
/// table and keeps `--shards 0` (auto) from oversubscribing.
pub const MAX_SHARDS: usize = 16;

/// Per-shard routed-tweet gauge names (`MetricsRegistry` wants
/// `&'static str`, so the table is spelled out).
pub(crate) const SHARD_TWEETS_NAMES: [&str; MAX_SHARDS] = [
    "shard_0_tweets_total",
    "shard_1_tweets_total",
    "shard_2_tweets_total",
    "shard_3_tweets_total",
    "shard_4_tweets_total",
    "shard_5_tweets_total",
    "shard_6_tweets_total",
    "shard_7_tweets_total",
    "shard_8_tweets_total",
    "shard_9_tweets_total",
    "shard_10_tweets_total",
    "shard_11_tweets_total",
    "shard_12_tweets_total",
    "shard_13_tweets_total",
    "shard_14_tweets_total",
    "shard_15_tweets_total",
];

/// Resolves a requested shard count: 0 means "auto" (available
/// parallelism), and everything is clamped to `1..=MAX_SHARDS`.
pub fn resolve_shards(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, MAX_SHARDS)
}

/// Which shard owns a user: a SplitMix64 hash of the user id, reduced
/// mod the shard count. Stable across runs and processes — the routing
/// function is part of the checkpoint contract (resume re-routes with
/// the same modulus, which is why [`SensorCheckpoint::shard_count`] is
/// validated).
pub fn route_shard(user: UserId, shards: usize) -> usize {
    let mut z = user.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

/// What the router sends down a shard channel.
enum ShardMsg {
    /// A run of routed tweets, in stream order for this shard — one
    /// channel send covers the whole run, which is what keeps the
    /// group's per-tweet synchronization cost amortized under wire v2
    /// batching.
    Batch(Vec<Tweet>),
    /// A checkpoint marker: freeze state as of `high_water` and write
    /// epoch `epoch` to the store. The router flushes **every**
    /// shard's buffered batch before broadcasting a marker, so a cut
    /// still reflects exactly the tweets routed before it.
    Marker {
        epoch: u64,
        high_water: Option<TweetId>,
    },
    /// Online re-shard drain: stop consuming, skip the end-of-stream
    /// drain/abandon path, and hand the complete in-memory state
    /// (exports and park residue) back to the router so it can re-key
    /// the group to a new modulus. Always the last message on a
    /// channel.
    Drain,
}

/// Tweets a router buffers per shard before forcing a batch send —
/// bounds both latency and the memory held outside the channels.
pub(crate) const ROUTER_BATCH: usize = 64;

/// Configuration for [`run_sharded_stream`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker count; 0 = auto ([`resolve_shards`]).
    pub shards: usize,
    /// Routed tweets between checkpoint markers; 0 disables markers.
    pub checkpoint_every: u64,
    /// Crash simulation: the router stops routing after this many
    /// tweets (this run), as if the process died. The run returns with
    /// no merged sensor; whatever checkpoints were written are the
    /// run's legacy.
    pub kill_after: Option<u64>,
    /// Resume from the newest complete checkpoint epoch instead of
    /// starting from the head of the stream. Requires a store.
    pub resume: bool,
    /// Retention: keep only the newest this-many **complete** epochs
    /// in the store, compacting older ones away after each marker and
    /// at the end of the run. `0` (the default) keeps everything.
    /// Partial epochs never count toward the kept set
    /// ([`compact_checkpoints`]).
    pub checkpoint_retain: usize,
    /// Flush one final checkpoint marker after the stream drains (and
    /// the run was not killed), so the store always ends on a cut that
    /// is complete across every shard at exactly the end of the
    /// stream. Periodic markers alone leave the tail beyond the last
    /// full `checkpoint_every` window unrecoverable; with this set, a
    /// finished run — in particular a serving daemon shutting down —
    /// is resumable and verifiable from its store alone. No-op without
    /// a store or with markers disabled (`checkpoint_every == 0`).
    pub checkpoint_final: bool,
    /// Online elastic re-shard: after this many routed tweets (first
    /// element), drain the group at a consistent cut and swap the
    /// worker topology to the target shard count (second element)
    /// in-process — the CLI's `--reshard-at K:M`. The services must be
    /// [`ShardServices::Shared`] or [`ShardServices::Phased`] (a
    /// per-shard table is specific to one modulus). With a store, the
    /// cut is persisted in the new layout before routing resumes.
    pub reshard_at: Option<(u64, usize)>,
    /// The underlying per-stage streaming configuration (channel
    /// capacity, retry schedules, park capacity, metrics).
    pub stream: StreamPipelineConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            checkpoint_every: 0,
            kill_after: None,
            resume: false,
            checkpoint_retain: 0,
            checkpoint_final: false,
            reshard_at: None,
            stream: StreamPipelineConfig::default(),
        }
    }
}

/// Everything a sharded streaming run produces.
pub struct ShardedStreamRun<'a> {
    /// The merged **primary-campaign** sensor — byte-identical
    /// snapshots to the single-sensor run. `None` when the run was
    /// killed ([`ShardConfig::kill_after`]): a crashed group has no
    /// final artifacts, only its checkpoints.
    pub sensor: Option<IncrementalSensor<'a>>,
    /// Merged sensors for the non-primary campaigns, in
    /// [`CampaignSet::extras`] order. Empty for a single-campaign run
    /// and for a killed run.
    pub extra_sensors: Vec<IncrementalSensor<'a>>,
    /// Fault counters from the stream adapter (this run only — a
    /// resumed run counts from the seek point).
    pub fault_stats: FaultStats,
    /// Observability snapshot.
    pub metrics: RunMetrics,
    /// On-topic tweets the clean stream would deliver end to end.
    pub expected_tweets: u64,
    /// Unique tweets in the merged sensor (prefix restored from
    /// checkpoints plus everything delivered this run).
    pub delivered_tweets: u64,
    /// True when the source gave up reconnecting.
    pub source_aborted: bool,
    /// Tweets unresolvable when the stream ended, summed over shards.
    pub parked_at_end: u64,
    /// Everything the group abandoned, shard-major order.
    pub dead_letters: DeadLetterLog,
    /// Resolved shard count.
    pub shards: usize,
    /// Tweets routed to each shard (this run).
    pub shard_tweets: Vec<u64>,
    /// The checkpoint epoch this run restored from, if resuming.
    pub resumed_from_epoch: Option<u64>,
    /// Highest checkpoint epoch written during this run.
    pub last_epoch: u64,
    /// True when the router was killed mid-run.
    pub killed: bool,
    /// `(cut_epoch, new_shard_count)` when an online re-shard swap
    /// ([`ShardConfig::reshard_at`]) completed during the run.
    /// [`ShardedStreamRun::shards`] and
    /// [`ShardedStreamRun::shard_tweets`] then describe the post-swap
    /// topology.
    pub resharded: Option<(u64, usize)>,
}

/// The per-run state restored from a checkpoint store. Shared with
/// [`crate::procgroup`], which resumes a process group from the same
/// directory layout.
#[derive(Debug)]
pub(crate) struct ResumePoint {
    pub(crate) epoch: u64,
    pub(crate) high_water: Option<TweetId>,
    /// Per-shard restored state, indexed by shard id, then by campaign
    /// in registry order (primary first). Single-campaign cuts — and
    /// every pre-campaign v2 checkpoint — restore as one-element inner
    /// vectors.
    pub(crate) exports: Vec<Vec<SensorExport>>,
    pub(crate) parked: Vec<Vec<Tweet>>,
}

/// Loads and validates the newest complete cut from a store.
///
/// Besides the identity/shape checks, the cut's campaign roster must
/// equal this run's registry exactly (names, order): resuming a
/// two-campaign cut into a one-campaign run would silently drop a
/// tenant's state, and the reverse would fabricate an empty history
/// for a campaign the cut never sensed.
pub(crate) fn load_resume_point(
    store: &dyn CheckpointStore,
    shards: usize,
    campaigns: &CampaignSet,
) -> Result<ResumePoint> {
    let io = |e: std::io::Error| CoreError::Checkpoint(format!("checkpoint store: {e}"));
    let epoch = latest_complete_epoch(store, shards as u32)
        .map_err(io)?
        .ok_or_else(|| {
            CoreError::Checkpoint(format!(
                "no checkpoint epoch is complete across all {shards} shards"
            ))
        })?;
    let mut exports = Vec::with_capacity(shards);
    let mut parked = Vec::with_capacity(shards);
    let mut high_water: Option<Option<TweetId>> = None;
    for shard in 0..shards as u32 {
        let bytes = store.load(shard, epoch).map_err(io)?.ok_or_else(|| {
            CoreError::Checkpoint(format!(
                "shard {shard} epoch {epoch} vanished from the store"
            ))
        })?;
        let ckpt = SensorCheckpoint::decode(&bytes)?;
        if ckpt.shard_id != shard || ckpt.epoch != epoch {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint identity mismatch: file for shard {shard} epoch {epoch} \
                 claims shard {} epoch {}",
                ckpt.shard_id, ckpt.epoch
            )));
        }
        if ckpt.shard_count != shards as u32 {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint was taken with {} shards but this run has {shards}: \
                 re-routing would split user histories — run `repro reshard \
                 --checkpoint-dir <dir> --to-shards {shards}` to repartition \
                 the cut first",
                ckpt.shard_count
            )));
        }
        if ckpt.campaign_names() != campaigns.names() {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint was taken for campaigns {:?} but this run senses {:?}: \
                 resuming across rosters would drop or fabricate tenant state",
                ckpt.campaign_names(),
                campaigns.names()
            )));
        }
        match high_water {
            None => high_water = Some(ckpt.router_high_water),
            Some(hw) if hw != ckpt.router_high_water => {
                return Err(CoreError::Checkpoint(format!(
                    "inconsistent cut: shard {shard} recorded high-water {:?}, \
                     group recorded {:?}",
                    ckpt.router_high_water, hw
                )));
            }
            Some(_) => {}
        }
        let mut shard_exports = Vec::with_capacity(1 + ckpt.extra_campaigns.len());
        shard_exports.push(ckpt.export);
        shard_exports.extend(ckpt.extra_campaigns.into_iter().map(|c| c.export));
        exports.push(shard_exports);
        parked.push(ckpt.parked);
    }
    Ok(ResumePoint {
        epoch,
        high_water: high_water.flatten(),
        exports,
        parked,
    })
}

/// What one shard worker reports back after its thread joins.
struct WorkerReport {
    /// Per-campaign exports in registry order (primary first).
    exports: Vec<SensorExport>,
    parked_at_end: u64,
    dead: Vec<DeadLetter>,
    /// Park contents at a re-shard drain, in queue order — the state
    /// the router re-keys to the new topology. Empty at end-of-stream
    /// (the final drain/abandon path consumed the park instead).
    residue: Vec<Tweet>,
}

/// How the group's shards see the geocoding service.
///
/// A group sharing one [`LocationService`] shares its internal call
/// counter too, and the interleaving of that counter across worker
/// threads (or processes) depends on scheduling — which makes a
/// degraded run nondeterministic and its dead-letter log
/// unreconstructible. `PerShard` gives every worker its own service
/// (callers derive the schedules with
/// [`donorpulse_geo::service::FlakyConfig::for_shard`]), restoring
/// purity: each shard's failure schedule is a function of its own
/// admission sequence alone. `Shared` remains correct for services
/// with no internal state (e.g. a reliable geocoder).
pub enum ShardServices<'s> {
    /// Every shard calls the same service instance.
    Shared(&'s (dyn LocationService + Sync)),
    /// Shard `i` calls `services[i]`; the length must cover the
    /// resolved shard count.
    PerShard(Vec<&'s (dyn LocationService + Sync)>),
    /// An online re-shard run ([`ShardConfig::reshard_at`]) with
    /// per-shard services: `before[i]` serves shard `i` under the
    /// starting modulus, `after[j]` serves shard `j` once the group
    /// has swapped to the target modulus (callers derive the two
    /// tables with `FlakyConfig::for_shard` at each count).
    Phased {
        /// Services for the starting topology.
        before: Vec<&'s (dyn LocationService + Sync)>,
        /// Services for the post-swap topology.
        after: Vec<&'s (dyn LocationService + Sync)>,
    },
}

impl<'s> ShardServices<'s> {
    /// The service shard `shard` must call.
    fn get(&self, shard: usize) -> Result<&'s (dyn LocationService + Sync)> {
        let table = match self {
            ShardServices::Shared(s) => return Ok(*s),
            ShardServices::PerShard(v) => v,
            ShardServices::Phased { before, .. } => before,
        };
        table.get(shard).copied().ok_or_else(|| {
            CoreError::Checkpoint(format!(
                "per-shard service table has {} entries but shard {shard} was requested \
                 (resolve the shard count with resolve_shards before building the table)",
                table.len()
            ))
        })
    }

    /// The service shard `shard` must call after an online re-shard
    /// swap. `PerShard` is refused: its table is specific to one
    /// modulus, and silently reusing it would change a degraded run's
    /// failure schedules mid-stream.
    fn get_after(&self, shard: usize) -> Result<&'s (dyn LocationService + Sync)> {
        match self {
            ShardServices::Shared(s) => Ok(*s),
            ShardServices::PerShard(_) => Err(CoreError::Checkpoint(
                "an online re-shard needs ShardServices::Shared or ShardServices::Phased: \
                 a per-shard service table is specific to one modulus"
                    .into(),
            )),
            ShardServices::Phased { after, .. } => after.get(shard).copied().ok_or_else(|| {
                CoreError::Checkpoint(format!(
                    "post-swap service table has {} entries but shard {shard} was requested \
                     (it must cover the re-shard target count)",
                    after.len()
                ))
            }),
        }
    }
}

/// What the routing scope hands back to the merge phase: source
/// outcome, per-shard routed counts, last epoch, killed flag, worker
/// reports, dead letters carried over a re-shard drain, and the swap
/// that happened (if any).
type ScopeOut = (
    SourceOutcome,
    Vec<u64>,
    u64,
    bool,
    Vec<Result<WorkerReport>>,
    Vec<DeadLetter>,
    Option<(u64, usize)>,
);

/// Runs the consumer group end to end. See the module docs for the
/// determinism and checkpoint-consistency arguments.
///
/// `geocoder`/`services` split exactly as in
/// [`crate::stream_consumer::run_faulted_stream`]: the sensor resolves
/// with `geocoder`, the admission stage survives the location service
/// ([`ShardServices`] says which instance each shard calls).
pub fn run_sharded_stream<'a>(
    sim: &'a TwitterSimulation,
    geocoder: &'a Geocoder,
    services: ShardServices<'_>,
    faults: FaultConfig,
    store: Option<&dyn CheckpointStore>,
    config: ShardConfig,
) -> Result<ShardedStreamRun<'a>> {
    let shards = resolve_shards(config.shards);
    let before_services: Vec<&(dyn LocationService + Sync)> = (0..shards)
        .map(|s| services.get(s))
        .collect::<Result<_>>()?;
    // An online re-shard resolves its post-swap service table up
    // front, so a bad target or an unusable service shape fails before
    // any thread spawns.
    let reshard_at = config.reshard_at;
    let after_services: Vec<&(dyn LocationService + Sync)> = match reshard_at {
        None => Vec::new(),
        Some((_, to)) => {
            reshard::validate_target(to)?;
            (0..to)
                .map(|s| services.get_after(s))
                .collect::<Result<_>>()?
        }
    };
    let metrics = config.stream.metrics.clone();
    metrics.gauge("shard_count").set(shards as u64);
    let campaigns = std::sync::Arc::clone(&config.stream.campaigns);
    let n_campaigns = campaigns.len();

    let resume = if config.resume {
        let store = store.ok_or_else(|| {
            CoreError::Checkpoint("resume requires a checkpoint store (--checkpoint-dir)".into())
        })?;
        Some(load_resume_point(store, shards, &campaigns)?)
    } else {
        None
    };
    let resume_hw = resume.as_ref().and_then(|r| r.high_water);
    let start_epoch = resume.as_ref().map_or(0, |r| r.epoch);
    let resumed_from_epoch = resume.as_ref().map(|r| r.epoch);
    let (mut resume_exports, mut resume_parked) = match resume {
        Some(r) => (r.exports, r.parked),
        None => (
            vec![vec![SensorExport::default(); n_campaigns]; shards],
            vec![Vec::new(); shards],
        ),
    };

    let (src_tx, src_rx) = mpsc::sync_channel::<Vec<Tweet>>(config.stream.channel_capacity);
    let mut shard_txs = Vec::with_capacity(shards);
    let mut shard_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::sync_channel::<ShardMsg>(config.stream.channel_capacity);
        shard_txs.push(tx);
        shard_rxs.push(rx);
    }

    let profile_of = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    };
    // Borrowed variant for the admission hot loop (no per-tweet clone).
    let profile_ref = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.as_str())
    };

    let (outcome, routed, last_epoch, killed, reports, carried_dead, resharded) =
        thread::scope(|scope| -> Result<ScopeOut> {
            let source = scope.spawn({
                let config = &config;
                move || {
                    let mut span = config.stream.metrics.stage("stream_source");
                    let outcome = pump_source(sim, faults, &config.stream, resume_hw, src_tx);
                    span.set_items(outcome.stats.delivered);
                    span.finish();
                    outcome
                }
            });

            // Worker factory — used for the starting topology and again
            // after an online re-shard swap. One worker per shard:
            // geocode admission in front of one owned sensor per
            // campaign, checkpoint writes at markers, state handoff at
            // a drain. `group` is the modulus the worker checkpoints
            // under; `after` selects the post-swap service table.
            let spawn_worker = {
                let metrics = metrics.clone();
                let campaigns = std::sync::Arc::clone(&campaigns);
                let config = &config;
                move |shard_id: usize,
                      group: usize,
                      rx: mpsc::Receiver<ShardMsg>,
                      exports: Vec<SensorExport>,
                      residue: Vec<Tweet>,
                      after: bool| {
                    let service = if after {
                        after_services[shard_id]
                    } else {
                        before_services[shard_id]
                    };
                    let metrics = metrics.clone();
                    let campaigns = std::sync::Arc::clone(&campaigns);
                    let geo_policy = config.stream.geo_retry.for_consumer(shard_id as u64);
                    let park_capacity = config.stream.park_capacity;
                    let final_drain_attempts = config.stream.final_drain_attempts;
                    scope.spawn(move || -> Result<WorkerReport> {
                        let mut span = metrics.stage("stream_shard_worker");
                        // Sensor `i` owns campaign `i` (primary first); the
                        // admitted batch is re-matched against each campaign
                        // because membership is a pure function of the text.
                        let mut sensors: Vec<IncrementalSensor<'_>> = campaigns
                            .campaigns()
                            .iter()
                            .zip(exports)
                            .map(|(c, export)| {
                                IncrementalSensor::restore_with_extractor(
                                    geocoder,
                                    profile_of,
                                    export,
                                    c.extractor().clone(),
                                )
                            })
                            .collect();
                        let mut admission = GeoAdmission {
                            service,
                            profile_of: Box::new(profile_ref),
                            policy: geo_policy,
                            park: VecDeque::from(residue),
                            park_capacity,
                            peak_depth: 0,
                            clock: VirtualClock::new(),
                            metrics: metrics.clone(),
                            dead: Vec::new(),
                        };
                        let ckpt_bytes = metrics.counter("checkpoint_bytes_total");
                        let ckpt_written = metrics.counter("checkpoints_written_total");
                        let ingested = metrics.counter("sensor_ingested_total");
                        let single = campaigns.len() == 1;
                        let mut out: Vec<Tweet> = Vec::new();
                        let mut routed: Vec<Vec<Tweet>> = vec![Vec::new(); campaigns.len()];
                        let mut n = 0u64;
                        let mut drained = false;
                        for msg in rx {
                            match msg {
                                ShardMsg::Batch(batch) => {
                                    n += batch.len() as u64;
                                    out.clear();
                                    for tweet in batch {
                                        // Primary-class traffic only through
                                        // the fallible gate — extra tenants
                                        // must not shift the service's call
                                        // schedule or displace parked primary
                                        // tweets (see stream_consumer's geo
                                        // stage / docs/CAMPAIGNS.md).
                                        if single || campaigns.primary().matches(&tweet.text) {
                                            admission.admit(tweet, &mut out);
                                        } else {
                                            out.push(tweet);
                                        }
                                    }
                                    if single {
                                        ingested.add(sensors[0].ingest_batch(&out));
                                    } else {
                                        for buf in &mut routed {
                                            buf.clear();
                                        }
                                        for tweet in out.drain(..) {
                                            let mask = campaigns.mask_of(&tweet.text);
                                            for (i, buf) in routed.iter_mut().enumerate() {
                                                if mask & (1 << i) != 0 {
                                                    buf.push(tweet.clone());
                                                }
                                            }
                                        }
                                        ingested.add(sensors[0].ingest_batch(&routed[0]));
                                        for (s, buf) in sensors[1..].iter_mut().zip(&routed[1..]) {
                                            s.ingest_batch(buf);
                                        }
                                    }
                                }
                                ShardMsg::Marker { epoch, high_water } => {
                                    let Some(store) = store else { continue };
                                    let ckpt = SensorCheckpoint {
                                        shard_id: shard_id as u32,
                                        shard_count: group as u32,
                                        epoch,
                                        router_high_water: high_water,
                                        export: sensors[0].export(),
                                        parked: admission.park.iter().cloned().collect(),
                                        campaign: campaigns.primary().name().to_string(),
                                        extra_campaigns: campaigns
                                            .extras()
                                            .iter()
                                            .zip(&sensors[1..])
                                            .map(|(c, s)| CampaignSection {
                                                name: c.name().to_string(),
                                                export: s.export(),
                                            })
                                            .collect(),
                                    };
                                    let bytes = ckpt.encode();
                                    store.save(shard_id as u32, epoch, &bytes).map_err(|e| {
                                        CoreError::Checkpoint(format!(
                                            "saving shard {shard_id} epoch {epoch}: {e}"
                                        ))
                                    })?;
                                    ckpt_bytes.add(bytes.len() as u64);
                                    ckpt_written.incr();
                                }
                                ShardMsg::Drain => {
                                    drained = true;
                                    break;
                                }
                            }
                        }
                        if drained {
                            // Re-shard handoff: the router re-keys this
                            // state onto the new topology. Gap and
                            // duplicate accounting waits for the final
                            // owners at end of stream — the park travels
                            // as residue instead of being abandoned.
                            span.set_items(n);
                            span.finish();
                            return Ok(WorkerReport {
                                exports: sensors.iter().map(|s| s.export()).collect(),
                                parked_at_end: 0,
                                dead: admission.dead,
                                residue: Vec::from(admission.park),
                            });
                        }
                        // End of stream: recovery-sized drain, then abandon.
                        out.clear();
                        admission.drain(final_drain_attempts, &mut out);
                        if single {
                            ingested.add(sensors[0].ingest_batch(&out));
                        } else {
                            for buf in &mut routed {
                                buf.clear();
                            }
                            for tweet in out.drain(..) {
                                let mask = campaigns.mask_of(&tweet.text);
                                for (i, buf) in routed.iter_mut().enumerate() {
                                    if mask & (1 << i) != 0 {
                                        buf.push(tweet.clone());
                                    }
                                }
                            }
                            ingested.add(sensors[0].ingest_batch(&routed[0]));
                            for (s, buf) in sensors[1..].iter_mut().zip(&routed[1..]) {
                                s.ingest_batch(buf);
                            }
                        }
                        let parked_at_end = admission.abandon_leftovers();
                        metrics
                            .counter("stream_gap_tweets_total")
                            .add(parked_at_end);
                        metrics
                            .counter("sensor_duplicates_ignored_total")
                            .add(sensors[0].duplicates_ignored());
                        span.set_items(n);
                        span.finish();
                        Ok(WorkerReport {
                            exports: sensors.iter().map(|s| s.export()).collect(),
                            parked_at_end,
                            dead: admission.dead,
                            residue: Vec::new(),
                        })
                    })
                }
            };

            let mut workers = Vec::with_capacity(shards);
            for (shard_id, rx) in shard_rxs.into_iter().enumerate() {
                let exports = std::mem::take(&mut resume_exports[shard_id]);
                let residue = std::mem::take(&mut resume_parked[shard_id]);
                workers.push(spawn_worker(shard_id, shards, rx, exports, residue, false));
            }

            // The router, inline on the scope's own thread so it can
            // join, re-key, and respawn the worker topology mid-run:
            // keyword filter (defense in depth, mirroring the
            // single-consumer filter stage), resume replay guard,
            // user-hash routing, checkpoint markers, crash simulation,
            // online re-shard swap.
            let mut span = metrics.stage("stream_router");
            let rejected = metrics.counter("consumer_filter_rejected_total");
            let passed = metrics.counter("consumer_filter_passed_total");
            let matched: Option<Vec<_>> = (!campaigns.is_default_single()).then(|| {
                campaigns
                    .campaigns()
                    .iter()
                    .map(|c| metrics.counter(c.metric_name("matched_total")))
                    .collect()
            });
            let routed_total = metrics.counter("shard_tweets_total");
            let replayed = metrics.counter("resume_replayed_total");
            let compacted = metrics.counter("checkpoints_compacted_total");
            let compact_errors = metrics.counter("checkpoint_compact_errors_total");
            let batch_sends = metrics.counter("stream_batch_sends_total");
            let checkpoint_every = config.checkpoint_every;
            let checkpoint_retain = config.checkpoint_retain;
            let checkpoint_final = config.checkpoint_final;
            let kill_after = config.kill_after;
            let mut group = shards;
            let mut per_shard = vec![0u64; group];
            let mut bufs: Vec<Vec<Tweet>> = vec![Vec::new(); group];
            let mut routed = 0u64;
            let mut routed_at_swap = 0u64;
            let mut epoch = start_epoch;
            let mut high_water: Option<TweetId> = resume_hw;
            let mut killed = false;
            let mut n = 0u64;
            let mut carried_dead: Vec<DeadLetter> = Vec::new();
            let mut resharded: Option<(u64, usize)> = None;
            let mut pending_reshard = reshard_at;
            // Sends one shard's buffered run. `false` = channel gone.
            let flush_one = |txs: &[mpsc::SyncSender<ShardMsg>],
                             bufs: &mut Vec<Vec<Tweet>>,
                             shard: usize|
             -> bool {
                if bufs[shard].is_empty() {
                    return true;
                }
                batch_sends.incr();
                txs[shard]
                    .send(ShardMsg::Batch(std::mem::take(&mut bufs[shard])))
                    .is_ok()
            };
            let flush_all =
                |txs: &[mpsc::SyncSender<ShardMsg>], bufs: &mut Vec<Vec<Tweet>>| -> bool {
                    (0..txs.len()).all(|s| flush_one(txs, bufs, s))
                };
            'route: for batch in src_rx {
                for tweet in batch {
                    n += 1;
                    let mask = campaigns.mask_of(&tweet.text);
                    if mask == 0 {
                        rejected.incr();
                        continue;
                    }
                    passed.incr();
                    if let Some(matched) = &matched {
                        for (i, handle) in matched.iter().enumerate() {
                            if mask & (1 << i) != 0 {
                                handle.incr();
                            }
                        }
                    }
                    // Resume guard: anything at or below the restored
                    // cut is already inside a shard's checkpoint. The
                    // seek makes this rare; the sensors' idempotence
                    // would absorb it anyway — this counts it.
                    if resume_hw.is_some_and(|hw| tweet.id <= hw) {
                        replayed.incr();
                        continue;
                    }
                    let shard = route_shard(tweet.user, group);
                    high_water = Some(high_water.map_or(tweet.id, |hw| hw.max(tweet.id)));
                    bufs[shard].push(tweet);
                    if bufs[shard].len() >= ROUTER_BATCH
                        && !flush_one(&shard_txs, &mut bufs, shard)
                    {
                        break 'route;
                    }
                    per_shard[shard] += 1;
                    routed += 1;
                    routed_total.incr();
                    if checkpoint_every > 0 && routed % checkpoint_every == 0 {
                        // A cut must reflect everything routed before
                        // it, including runs still sitting in buffers.
                        if !flush_all(&shard_txs, &mut bufs) {
                            break 'route;
                        }
                        epoch += 1;
                        for tx in &shard_txs {
                            if tx.send(ShardMsg::Marker { epoch, high_water }).is_err() {
                                break 'route;
                            }
                        }
                        // Retention: sweep epochs behind the newest
                        // `retain` complete cuts. Safe to run while
                        // workers write: shards write epochs in
                        // ascending order, so a pending write can
                        // never land below a complete cutoff. Errors
                        // are counted, not fatal — compaction is
                        // housekeeping, not correctness.
                        if checkpoint_retain > 0 {
                            if let Some(store) = store {
                                match compact_checkpoints(store, group as u32, checkpoint_retain)
                                {
                                    Ok(n) => compacted.add(n),
                                    Err(_) => compact_errors.incr(),
                                }
                            }
                        }
                    }
                    // Online elastic re-shard: drain the group at a
                    // consistent cut, re-key its state by the target
                    // modulus, and respawn the topology — the stream
                    // never stops, the process never restarts.
                    if pending_reshard.is_some_and(|(k, _)| routed >= k) {
                        let (_, to) = pending_reshard.take().expect("swap point just matched");
                        if !flush_all(&shard_txs, &mut bufs) {
                            break 'route;
                        }
                        // The swap cut gets its own epoch: a drain is a
                        // consistent cut exactly like a marker — the
                        // state just travels in memory instead of
                        // through the store.
                        epoch += 1;
                        for tx in shard_txs.drain(..) {
                            let _ = tx.send(ShardMsg::Drain);
                        }
                        let mut cut_exports = Vec::with_capacity(group);
                        let mut cut_parked = Vec::with_capacity(group);
                        for worker in workers.drain(..) {
                            let report = worker.join().expect("shard worker panicked")?;
                            cut_exports.push(report.exports);
                            cut_parked.push(report.residue);
                            carried_dead.extend(report.dead);
                        }
                        let cut = reshard::split_cut(cut_exports, cut_parked, to);
                        if let Some(store) = store {
                            // Persist the cut in the new layout before
                            // the shard_count gauge flips: the serving
                            // watcher keys its probes off that gauge
                            // and must never see the new count without
                            // the new layout.
                            let names: Vec<String> =
                                campaigns.names().iter().map(|s| s.to_string()).collect();
                            let (removed, bytes) =
                                reshard::rewrite_store(store, epoch, high_water, &names, &cut)?;
                            metrics.counter("reshard_runs_total").incr();
                            metrics.counter("reshard_files_removed_total").add(removed);
                            metrics.counter("checkpoint_bytes_total").add(bytes);
                        }
                        metrics.counter("reshard_swaps_total").incr();
                        metrics
                            .counter("reshard_tracks_moved_total")
                            .add(cut.tracks_moved);
                        metrics
                            .counter("reshard_parked_moved_total")
                            .add(cut.parked_moved);
                        metrics.gauge("reshard_from_shards").set(group as u64);
                        metrics.gauge("reshard_to_shards").set(to as u64);
                        metrics.gauge("reshard_epoch").set(epoch);
                        let mut new_rxs = Vec::with_capacity(to);
                        for _ in 0..to {
                            let (tx, rx) =
                                mpsc::sync_channel::<ShardMsg>(config.stream.channel_capacity);
                            shard_txs.push(tx);
                            new_rxs.push(rx);
                        }
                        for (shard_id, (rx, (exports, residue))) in new_rxs
                            .into_iter()
                            .zip(cut.exports.into_iter().zip(cut.parked))
                            .enumerate()
                        {
                            workers.push(spawn_worker(shard_id, to, rx, exports, residue, true));
                        }
                        group = to;
                        per_shard = vec![0; group];
                        bufs = vec![Vec::new(); group];
                        routed_at_swap = routed;
                        resharded = Some((epoch, to));
                        metrics.gauge("shard_count").set(group as u64);
                    }
                    if kill_after.is_some_and(|k| routed >= k) {
                        killed = true;
                        // Everything already counted as routed reaches
                        // its shard, matching the pre-batching "sent
                        // then died" semantics.
                        let _ = flush_all(&shard_txs, &mut bufs);
                        break 'route;
                    }
                }
            }
            if !killed {
                let _ = flush_all(&shard_txs, &mut bufs);
            }
            // Closing cut: the stream drained (not a crash), so
            // freeze the group exactly at end-of-stream. The store
            // then always holds a complete final epoch — the
            // property that makes a daemon shutdown resumable.
            if checkpoint_final && checkpoint_every > 0 && !killed && store.is_some() {
                epoch += 1;
                for tx in &shard_txs {
                    let _ = tx.send(ShardMsg::Marker { epoch, high_water });
                }
            }
            drop(shard_txs);
            for (i, &count) in per_shard.iter().enumerate() {
                metrics.gauge(SHARD_TWEETS_NAMES[i]).set(count);
            }
            // Imbalance: busiest shard over the ideal even share, in
            // permille (1000 = perfectly balanced) — measured over the
            // current topology's share of the stream.
            let max = per_shard.iter().copied().max().unwrap_or(0);
            if let Some(ratio) =
                (max * group as u64 * 1_000).checked_div(routed - routed_at_swap)
            {
                metrics.gauge("shard_imbalance_ratio_permille").set(ratio);
            }
            span.set_items(n);
            span.finish();

            let outcome = source.join().expect("source stage panicked");
            let reports: Vec<Result<WorkerReport>> = workers
                .into_iter()
                .map(|w| w.join().expect("shard worker panicked"))
                .collect();
            Ok((outcome, per_shard, epoch, killed, reports, carried_dead, resharded))
        })?;

    // Merge per campaign: shard exports are user-disjoint within each
    // campaign, so each campaign's union is exactly its single-sensor
    // state.
    let mut merged: Vec<SensorExport> = vec![SensorExport::default(); n_campaigns];
    let mut dead_letters = DeadLetterLog::new();
    for d in outcome.dead.iter().cloned() {
        dead_letters.push(d);
    }
    // Dead letters surrendered by pre-swap workers at the re-shard
    // drain — they belong between the source's and the final owners'.
    for d in carried_dead {
        dead_letters.push(d);
    }
    let mut parked_at_end = 0u64;
    for report in reports {
        let report = report?;
        for (m, e) in merged.iter_mut().zip(report.exports) {
            m.absorb(e)?;
        }
        parked_at_end += report.parked_at_end;
        for d in report.dead {
            dead_letters.push(d);
        }
    }

    let delivered_tweets = merged[0].tweet_count();
    let mut merged = merged.into_iter();
    let primary_export = merged.next().expect("registry has a primary campaign");
    let (sensor, extra_sensors) = if killed {
        (None, Vec::new())
    } else {
        (
            Some(IncrementalSensor::restore_with_extractor(
                geocoder,
                profile_of,
                primary_export,
                campaigns.primary().extractor().clone(),
            )),
            campaigns
                .extras()
                .iter()
                .zip(merged)
                .map(|(c, export)| {
                    IncrementalSensor::restore_with_extractor(
                        geocoder,
                        profile_of,
                        export,
                        c.extractor().clone(),
                    )
                })
                .collect(),
        )
    };

    // Final retention pass: every worker has joined, so the last epoch
    // is as complete as it will ever get. Here an error has a Result
    // context and is surfaced instead of merely counted.
    let final_shards = resharded.map_or(shards, |(_, m)| m);
    if config.checkpoint_retain > 0 {
        if let Some(store) = store {
            let n = compact_checkpoints(store, final_shards as u32, config.checkpoint_retain)
                .map_err(|e| CoreError::Checkpoint(format!("compacting checkpoints: {e}")))?;
            metrics.counter("checkpoints_compacted_total").add(n);
        }
    }

    Ok(ShardedStreamRun {
        sensor,
        extra_sensors,
        fault_stats: outcome.stats,
        metrics: metrics.snapshot(),
        expected_tweets: sim.on_topic_len() as u64,
        delivered_tweets,
        source_aborted: outcome.aborted,
        parked_at_end,
        dead_letters,
        shards: final_shards,
        shard_tweets: routed,
        resumed_from_epoch,
        last_epoch,
        killed,
        resharded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        // Stability: the same user always routes to the same shard.
        for user in 0..500u64 {
            let a = route_shard(UserId(user), 4);
            let b = route_shard(UserId(user), 4);
            assert_eq!(a, b);
            assert!(a < 4);
        }
        // Coverage: with enough users every shard gets work.
        let hit: HashSet<usize> = (0..500u64).map(|u| route_shard(UserId(u), 4)).collect();
        assert_eq!(hit.len(), 4, "500 users must touch all 4 shards");
        // Degenerate modulus never panics.
        assert_eq!(route_shard(UserId(7), 1), 0);
        assert_eq!(route_shard(UserId(7), 0), 0);
    }

    #[test]
    fn shard_resolution_clamps() {
        assert_eq!(resolve_shards(1), 1);
        assert_eq!(resolve_shards(4), 4);
        assert_eq!(resolve_shards(MAX_SHARDS + 50), MAX_SHARDS);
        let auto = resolve_shards(0);
        assert!((1..=MAX_SHARDS).contains(&auto));
    }

    #[test]
    fn resume_point_validation_rejects_mismatched_groups() {
        use crate::checkpoint::MemCheckpointStore;
        let campaigns = CampaignSet::default_single();
        let store = MemCheckpointStore::new();
        // Nothing written yet: no complete epoch.
        let err = load_resume_point(&store, 2, &campaigns).unwrap_err();
        assert!(err.to_string().contains("complete"));
        // A cut taken with a different shard count is refused.
        let ckpt = SensorCheckpoint {
            shard_id: 0,
            shard_count: 4,
            epoch: 1,
            router_high_water: Some(TweetId(10)),
            export: SensorExport::default(),
            parked: Vec::new(),
            campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: Vec::new(),
        };
        store.save(0, 1, &ckpt.encode()).unwrap();
        let mut other = ckpt.clone();
        other.shard_id = 1;
        store.save(1, 1, &other.encode()).unwrap();
        let err = load_resume_point(&store, 2, &campaigns).unwrap_err();
        assert!(err.to_string().contains("re-routing"), "{err}");
        // The refusal names the remedy: the message is part of the
        // operator contract (tests/reshard.rs pins the CLI side).
        assert!(err.to_string().contains("repro reshard"), "{err}");
    }

    #[test]
    fn resume_point_validation_rejects_campaign_roster_changes() {
        use crate::checkpoint::{CampaignSection, MemCheckpointStore};
        let store = MemCheckpointStore::new();
        let ckpt = SensorCheckpoint {
            shard_id: 0,
            shard_count: 1,
            epoch: 1,
            router_high_water: Some(TweetId(10)),
            export: SensorExport::default(),
            parked: Vec::new(),
            campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: vec![CampaignSection {
                name: "blood-drive".into(),
                export: SensorExport::default(),
            }],
        };
        store.save(0, 1, &ckpt.encode()).unwrap();
        // A two-campaign cut cannot feed a single-campaign run.
        let err = load_resume_point(&store, 1, &CampaignSet::default_single()).unwrap_err();
        assert!(err.to_string().contains("rosters"), "{err}");
    }
}
