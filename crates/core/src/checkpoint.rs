//! Checkpoint/restore for the streaming sensor: a versioned,
//! dependency-free wire format plus pluggable storage.
//!
//! A [`SensorCheckpoint`] freezes one shard's complete consumer state —
//! the sensor's per-user tracks ([`SensorExport`]), the high-water mark
//! of the router cut it was taken at, and the geocode park-queue
//! residue — so a killed shard can resume without replaying the whole
//! stream. Checkpoints are taken at **router markers** (one marker per
//! epoch, broadcast down every shard channel), so the set of epoch-`e`
//! checkpoints across shards is a consistent cut: every tweet routed
//! before the marker is either inside a shard's export or inside its
//! park residue, and every tweet after it has an id above the recorded
//! high-water mark. `docs/SCALING.md` walks through the argument.
//!
//! The wire format is hand-rolled little-endian (no serde: checkpoints
//! must round-trip in dependency-stubbed environments and stay
//! parseable by operators with `xxd`): a 7-byte header (`DPWF`, kind,
//! version) followed by the payload, closed by an FNV-1a checksum of
//! everything before it. Decoding validates magic, kind, version, and
//! checksum, and refuses trailing garbage. The version is bumped on
//! any layout change; decoders reject versions they do not know
//! instead of guessing (versioning policy: `docs/SCALING.md`).
//!
//! The same envelope carries the [`DeadLetterLog`] (kind 2): tweets
//! abandoned past every park/retry budget are appended there instead of
//! only being counted, so an operator can replay them after an outage
//! (`repro replay-dead-letters`). Unparseable stream frames are stored
//! **verbatim** — the damaged bytes, not a lossy rendering — so the
//! log is also forensic evidence of what the wire actually carried.
//!
//! The embedded tweet record is the same byte layout the stream path's
//! [`TweetFrame`](donorpulse_twitter::wire::TweetFrame) payload uses;
//! both delegate to `donorpulse_twitter::wire`, so the two formats can
//! never drift apart.

use crate::incremental::{SensorExport, TrackExport};
use crate::{CoreError, Result};
use donorpulse_geo::UsState;
use donorpulse_text::extract::MentionCounts;
use donorpulse_text::Organ;
use donorpulse_twitter::{Tweet, TweetId, UserId};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// First bytes of every wire envelope.
const MAGIC: [u8; 4] = *b"DPWF";
/// Envelope kind: a sensor checkpoint.
const KIND_CHECKPOINT: u8 = 1;
/// Envelope kind: a dead-letter log.
const KIND_DEAD_LETTER: u8 = 2;
/// Current layout version, shared by both kinds. Version 2: dead-letter
/// corrupt entries store the verbatim damaged frame bytes (length-
/// prefixed raw bytes) instead of a UTF-8 rendering.
const VERSION: u16 = 2;
/// Checkpoint layout version 3: appends the primary campaign name and
/// per-campaign export sections after the version-2 body. Only written
/// when a run is multi-tenant (or single-tenant under a non-default
/// campaign); the default organ-donation run keeps emitting version-2
/// bytes so existing checkpoints, golden vectors, and operators' `xxd`
/// muscle memory stay valid.
const VERSION_CAMPAIGNS: u16 = 3;

/// FNV-1a over a byte slice — the integrity trailer.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Little-endian encoder for the checkpoint wire format.
struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    fn new(kind: u8) -> Self {
        Self::with_version(kind, VERSION)
    }

    fn with_version(kind: u8, version: u16) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&MAGIC);
        buf.push(kind);
        buf.extend_from_slice(&version.to_le_bytes());
        WireWriter { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }

    fn tweet(&mut self, t: &Tweet) {
        // Same byte layout as a stream frame payload, by construction.
        donorpulse_twitter::wire::encode_tweet_payload(&mut self.buf, t);
    }

    /// Seals the envelope with the checksum trailer.
    fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Little-endian decoder; every read is bounds-checked.
struct WireReader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> WireReader<'b> {
    /// Validates the envelope (magic, kind, version, checksum) and
    /// positions the reader at the start of the payload. `accept` lists
    /// the layout versions the caller knows how to read; the one found
    /// on the wire is returned so the caller can branch on layout.
    fn open(bytes: &'b [u8], want_kind: u8, accept: &[u16]) -> Result<(Self, u16)> {
        if bytes.len() < MAGIC.len() + 1 + 2 + 8 {
            return Err(CoreError::Checkpoint("truncated envelope".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        if fnv1a(body) != stored {
            return Err(CoreError::Checkpoint("checksum mismatch".into()));
        }
        if body[..MAGIC.len()] != MAGIC {
            return Err(CoreError::Checkpoint("bad magic".into()));
        }
        let kind = body[MAGIC.len()];
        if kind != want_kind {
            return Err(CoreError::Checkpoint(format!(
                "wrong envelope kind {kind} (wanted {want_kind})"
            )));
        }
        let version = u16::from_le_bytes([body[MAGIC.len() + 1], body[MAGIC.len() + 2]]);
        if !accept.contains(&version) {
            return Err(CoreError::Checkpoint(format!(
                "unknown wire version {version} (this build reads {accept:?})"
            )));
        }
        Ok((
            WireReader {
                buf: body,
                pos: MAGIC.len() + 3,
            },
            version,
        ))
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(CoreError::Checkpoint("truncated payload".into()));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn bool(&mut self) -> Result<bool> {
        Ok(self.u8()? != 0)
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn string(&mut self) -> Result<String> {
        String::from_utf8(self.bytes()?)
            .map_err(|_| CoreError::Checkpoint("non-UTF-8 string field".into()))
    }

    fn tweet(&mut self) -> Result<Tweet> {
        let (tweet, consumed) =
            donorpulse_twitter::wire::decode_tweet_payload(&self.buf[self.pos..])
                .map_err(|e| CoreError::Checkpoint(format!("tweet record: {e}")))?;
        self.pos += consumed;
        Ok(tweet)
    }

    /// The payload must be fully consumed — trailing bytes mean a
    /// layout mismatch the version check failed to catch.
    fn close(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(CoreError::Checkpoint(format!(
                "{} unread payload bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Writes a [`SensorExport`] section: track map, duplicate counter,
/// high-water mark. This is byte-for-byte the export portion of the
/// version-2 checkpoint body, reused verbatim for the per-campaign
/// sections of version 3 so the two layouts can never drift apart.
fn write_export(w: &mut WireWriter, export: &SensorExport) {
    w.u64(export.tracks.len() as u64);
    for (user, track) in &export.tracks {
        w.u64(user.0);
        match track.state {
            Some(s) => w.u8(s.index() as u8),
            None => w.u8(u8::MAX),
        }
        w.bool(track.geo_locked);
        for organ in Organ::ALL {
            w.u32(track.mentions.count(organ));
        }
        w.u32(track.tweets.len() as u32);
        for t in &track.tweets {
            w.tweet(t);
        }
    }
    w.u64(export.duplicates_ignored);
    match export.high_water {
        Some(id) => {
            w.u8(1);
            w.u64(id.0);
        }
        None => w.u8(0),
    }
}

/// Reads one [`SensorExport`] section (inverse of [`write_export`]).
fn read_export(r: &mut WireReader<'_>) -> Result<SensorExport> {
    let n_tracks = r.u64()?;
    let mut tracks = BTreeMap::new();
    for _ in 0..n_tracks {
        let user = UserId(r.u64()?);
        let state = match r.u8()? {
            u8::MAX => None,
            i => Some(
                UsState::from_index(i as usize)
                    .ok_or_else(|| CoreError::Checkpoint(format!("bad state index {i}")))?,
            ),
        };
        let geo_locked = r.bool()?;
        let mut mentions = MentionCounts::new();
        for organ in Organ::ALL {
            mentions.add(organ, r.u32()?);
        }
        let n_tweets = r.u32()?;
        let mut tweets = Vec::with_capacity(n_tweets as usize);
        for _ in 0..n_tweets {
            tweets.push(r.tweet()?);
        }
        tracks.insert(
            user,
            TrackExport {
                state,
                geo_locked,
                tweets,
                mentions,
            },
        );
    }
    let duplicates_ignored = r.u64()?;
    let high_water = match r.u8()? {
        0 => None,
        _ => Some(TweetId(r.u64()?)),
    };
    Ok(SensorExport {
        tracks,
        duplicates_ignored,
        high_water,
    })
}

/// One extra campaign's section inside a multi-tenant checkpoint: the
/// campaign name and its sensor export at the same marker cut. The
/// primary campaign's export lives in [`SensorCheckpoint::export`]; a
/// single-campaign run has no sections at all (and encodes the legacy
/// version-2 layout).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSection {
    /// Campaign name, as declared in the manifest.
    pub name: String,
    /// That campaign's sensor export at this cut.
    pub export: SensorExport,
}

/// One shard's frozen consumer state at a router marker.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorCheckpoint {
    /// Which shard this is (0-based).
    pub shard_id: u32,
    /// Total shards in the group — resume refuses a mismatched count,
    /// because re-routing with a different modulus would split user
    /// histories across sensors. `repro reshard` (or an online
    /// `--reshard-at` swap) repartitions a cut onto a new modulus;
    /// see [`crate::reshard`].
    pub shard_count: u32,
    /// Router epoch the marker belonged to.
    pub epoch: u64,
    /// Last tweet id the router had routed when it broadcast the
    /// marker — the stream position resume seeks past.
    pub router_high_water: Option<TweetId>,
    /// The primary campaign's exported tracks and counters.
    pub export: SensorExport,
    /// Geocode park-queue residue in FIFO order: tweets at or below
    /// the high-water mark that were admitted but not yet resolved.
    /// Admission is shared across campaigns (one firehose pass), so
    /// the residue is per-shard, not per-campaign.
    pub parked: Vec<Tweet>,
    /// Name of the primary campaign [`Self::export`] belongs to.
    /// `"organ-donation"` for the built-in default.
    pub campaign: String,
    /// Extra campaigns' sections, in run order after the primary.
    /// Empty for a single-campaign run.
    pub extra_campaigns: Vec<CampaignSection>,
}

impl SensorCheckpoint {
    /// The wire version this checkpoint will encode as: the legacy
    /// version for a default single-campaign run (bytes identical to
    /// pre-campaign builds), the campaign-extended version otherwise.
    fn wire_version(&self) -> u16 {
        if self.campaign == crate::campaign::DEFAULT_CAMPAIGN && self.extra_campaigns.is_empty() {
            VERSION
        } else {
            VERSION_CAMPAIGNS
        }
    }

    /// Serializes to the versioned wire format.
    pub fn encode(&self) -> Vec<u8> {
        let version = self.wire_version();
        let mut w = WireWriter::with_version(KIND_CHECKPOINT, version);
        w.u32(self.shard_id);
        w.u32(self.shard_count);
        w.u64(self.epoch);
        match self.router_high_water {
            Some(id) => {
                w.u8(1);
                w.u64(id.0);
            }
            None => w.u8(0),
        }
        write_export(&mut w, &self.export);
        w.u32(self.parked.len() as u32);
        for t in &self.parked {
            w.tweet(t);
        }
        if version == VERSION_CAMPAIGNS {
            w.bytes(self.campaign.as_bytes());
            w.u32(self.extra_campaigns.len() as u32);
            for section in &self.extra_campaigns {
                w.bytes(section.name.as_bytes());
                write_export(&mut w, &section.export);
            }
        }
        w.finish()
    }

    /// Decodes and validates one wire envelope. Both the legacy
    /// single-campaign layout (version 2) and the campaign-extended
    /// layout (version 3) are accepted; a version-2 checkpoint decodes
    /// with the built-in default campaign name and no extra sections,
    /// so pre-campaign checkpoints still resume.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let (mut r, version) =
            WireReader::open(bytes, KIND_CHECKPOINT, &[VERSION, VERSION_CAMPAIGNS])?;
        let shard_id = r.u32()?;
        let shard_count = r.u32()?;
        let epoch = r.u64()?;
        let router_high_water = match r.u8()? {
            0 => None,
            _ => Some(TweetId(r.u64()?)),
        };
        let export = read_export(&mut r)?;
        let n_parked = r.u32()?;
        let mut parked = Vec::with_capacity(n_parked as usize);
        for _ in 0..n_parked {
            parked.push(r.tweet()?);
        }
        let (campaign, extra_campaigns) = if version == VERSION_CAMPAIGNS {
            let campaign = r.string()?;
            let n_extra = r.u32()?;
            let mut extra = Vec::with_capacity(n_extra as usize);
            for _ in 0..n_extra {
                let name = r.string()?;
                let export = read_export(&mut r)?;
                extra.push(CampaignSection { name, export });
            }
            (campaign, extra)
        } else {
            (crate::campaign::DEFAULT_CAMPAIGN.to_string(), Vec::new())
        };
        r.close()?;
        Ok(SensorCheckpoint {
            shard_id,
            shard_count,
            epoch,
            router_high_water,
            export,
            parked,
            campaign,
            extra_campaigns,
        })
    }

    /// The campaign names this checkpoint carries, primary first — what
    /// resume validates against the running set.
    pub fn campaign_names(&self) -> Vec<&str> {
        let mut names = Vec::with_capacity(1 + self.extra_campaigns.len());
        names.push(self.campaign.as_str());
        names.extend(self.extra_campaigns.iter().map(|s| s.name.as_str()));
        names
    }
}

/// Where encoded checkpoints live. Implementations must be shareable
/// across shard threads (`&self` methods, `Send + Sync`).
pub trait CheckpointStore: Send + Sync {
    /// Persists one shard's checkpoint for one epoch (overwrites).
    fn save(&self, shard: u32, epoch: u64, bytes: &[u8]) -> io::Result<()>;
    /// Loads one shard's checkpoint for one epoch, `None` if absent.
    fn load(&self, shard: u32, epoch: u64) -> io::Result<Option<Vec<u8>>>;
    /// Every epoch this shard has a checkpoint for, ascending.
    fn epochs(&self, shard: u32) -> io::Result<Vec<u64>>;
    /// Deletes one shard's checkpoint for one epoch. Removing an
    /// absent checkpoint is not an error (compaction races are benign).
    fn remove(&self, shard: u32, epoch: u64) -> io::Result<()>;
}

/// The newest epoch for which **every** shard in `0..shards` has a
/// checkpoint — the only cut resume may restore from. A shard that
/// died between a marker and its write leaves that epoch incomplete;
/// the group falls back to the previous complete one.
pub fn latest_complete_epoch(store: &dyn CheckpointStore, shards: u32) -> io::Result<Option<u64>> {
    let mut common: Option<Vec<u64>> = None;
    for shard in 0..shards {
        let epochs = store.epochs(shard)?;
        common = Some(match common {
            None => epochs,
            Some(prev) => prev.into_iter().filter(|e| epochs.contains(e)).collect(),
        });
    }
    Ok(common.and_then(|c| c.into_iter().max()))
}

/// Retention: keeps the newest `retain` **complete** epochs and
/// deletes every older checkpoint, returning how many files were
/// removed.
///
/// Only complete epochs (present on every shard) count toward
/// `retain` — a partial epoch is not a resumable cut, so keeping it
/// in the count would silently shrink the real safety margin. Partial
/// epochs *below* the retention cutoff are swept (they can never
/// complete: shards write epochs in order); partial epochs above it
/// are left alone, since their missing shards may still be writing.
/// With no complete epoch, or `retain == 0` (keep everything),
/// nothing is deleted.
pub fn compact_checkpoints(
    store: &dyn CheckpointStore,
    shards: u32,
    retain: usize,
) -> io::Result<u64> {
    if retain == 0 {
        return Ok(0);
    }
    let mut complete: Option<Vec<u64>> = None;
    for shard in 0..shards {
        let epochs = store.epochs(shard)?;
        complete = Some(match complete {
            None => epochs,
            Some(prev) => prev.into_iter().filter(|e| epochs.contains(e)).collect(),
        });
    }
    let complete = complete.unwrap_or_default();
    if complete.is_empty() {
        return Ok(0);
    }
    // Oldest epoch we keep: the `retain`-th newest complete one.
    let cutoff = complete[complete.len().saturating_sub(retain)];
    let mut removed = 0u64;
    for shard in 0..shards {
        for epoch in store.epochs(shard)? {
            if epoch < cutoff {
                store.remove(shard, epoch)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

/// Filesystem-backed [`CheckpointStore`]: one
/// `shard-<s>-epoch-<e>.ckpt` file per checkpoint, written to a
/// temporary name and renamed so a crash mid-write never leaves a
/// half-checkpoint behind a valid name (the checksum trailer catches
/// anything that slips through).
#[derive(Debug)]
pub struct DirCheckpointStore {
    root: PathBuf,
}

impl DirCheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn open(root: impl AsRef<Path>) -> io::Result<Self> {
        std::fs::create_dir_all(root.as_ref())?;
        Ok(DirCheckpointStore {
            root: root.as_ref().to_path_buf(),
        })
    }

    fn path(&self, shard: u32, epoch: u64) -> PathBuf {
        self.root.join(format!("shard-{shard}-epoch-{epoch}.ckpt"))
    }
}

impl CheckpointStore for DirCheckpointStore {
    fn save(&self, shard: u32, epoch: u64, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.root.join(format!(".shard-{shard}-epoch-{epoch}.tmp"));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, self.path(shard, epoch))
    }

    fn load(&self, shard: u32, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(shard, epoch)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn epochs(&self, shard: u32) -> io::Result<Vec<u64>> {
        let prefix = format!("shard-{shard}-epoch-");
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(rest) = name.strip_prefix(&prefix) {
                if let Some(epoch) = rest.strip_suffix(".ckpt") {
                    if let Ok(e) = epoch.parse() {
                        out.push(e);
                    }
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn remove(&self, shard: u32, epoch: u64) -> io::Result<()> {
        match std::fs::remove_file(self.path(shard, epoch)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// In-memory [`CheckpointStore`] for tests and embedding.
#[derive(Debug, Default)]
pub struct MemCheckpointStore {
    slots: Mutex<BTreeMap<(u32, u64), Vec<u8>>>,
}

impl MemCheckpointStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CheckpointStore for MemCheckpointStore {
    fn save(&self, shard: u32, epoch: u64, bytes: &[u8]) -> io::Result<()> {
        self.slots
            .lock()
            .expect("store poisoned")
            .insert((shard, epoch), bytes.to_vec());
        Ok(())
    }

    fn load(&self, shard: u32, epoch: u64) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .slots
            .lock()
            .expect("store poisoned")
            .get(&(shard, epoch))
            .cloned())
    }

    fn epochs(&self, shard: u32) -> io::Result<Vec<u64>> {
        Ok(self
            .slots
            .lock()
            .expect("store poisoned")
            .keys()
            .filter(|(s, _)| *s == shard)
            .map(|&(_, e)| e)
            .collect())
    }

    fn remove(&self, shard: u32, epoch: u64) -> io::Result<()> {
        self.slots
            .lock()
            .expect("store poisoned")
            .remove(&(shard, epoch));
        Ok(())
    }
}

/// One abandoned record.
#[derive(Debug, Clone, PartialEq)]
pub enum DeadLetter {
    /// An intact tweet dropped past every park/retry budget (park
    /// overflow, or unresolvable when the stream ended).
    Tweet(Tweet),
    /// A stream frame that stayed unparseable past the reconnect
    /// budget, stored **verbatim** — the exact damaged bytes the wire
    /// carried, available for offline inspection or replay. Both wire
    /// versions land here unmodified: a v1 tweet frame or a v2
    /// batched frame, in whatever damaged state it arrived
    /// (`replay_dead_letters` sniffs the version on the way back).
    Frame(Vec<u8>),
}

/// A replayable log of everything the consumer gave up on.
///
/// Shares the checkpoint wire envelope (kind 2), so the same tooling
/// reads both. Order is preserved: entries append in abandonment
/// order, which for park-queue leftovers is arrival order — the
/// property that makes replaying them into a sensor reproduce the
/// clean run's per-user history (tested in `tests/sharding.rs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeadLetterLog {
    entries: Vec<DeadLetter>,
}

impl DeadLetterLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one abandoned record.
    pub fn push(&mut self, letter: DeadLetter) {
        self.entries.push(letter);
    }

    /// Entries in abandonment order.
    pub fn entries(&self) -> &[DeadLetter] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was abandoned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the shared wire envelope.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new(KIND_DEAD_LETTER);
        w.u64(self.entries.len() as u64);
        for entry in &self.entries {
            match entry {
                DeadLetter::Tweet(t) => {
                    w.u8(0);
                    w.tweet(t);
                }
                DeadLetter::Frame(bytes) => {
                    w.u8(1);
                    w.bytes(bytes);
                }
            }
        }
        w.finish()
    }

    /// Decodes and validates one wire envelope.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let (mut r, _) = WireReader::open(bytes, KIND_DEAD_LETTER, &[VERSION])?;
        let n = r.u64()?;
        let mut entries = Vec::with_capacity(n as usize);
        for _ in 0..n {
            entries.push(match r.u8()? {
                0 => DeadLetter::Tweet(r.tweet()?),
                1 => DeadLetter::Frame(r.bytes()?),
                other => {
                    return Err(CoreError::Checkpoint(format!(
                        "bad dead-letter tag {other}"
                    )))
                }
            });
        }
        r.close()?;
        Ok(DeadLetterLog { entries })
    }

    /// Writes the encoded log to a file.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.encode())
    }

    /// Reads and decodes a log file.
    pub fn read_from(path: impl AsRef<Path>) -> Result<Self> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| CoreError::Checkpoint(format!("reading dead-letter log: {e}")))?;
        Self::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use donorpulse_twitter::SimInstant;

    fn tweet(id: u64, user: u64, geo: Option<(f64, f64)>) -> Tweet {
        Tweet {
            id: TweetId(id),
            user: UserId(user),
            created_at: SimInstant(id * 3),
            text: format!("kidney tweet {id} ❤"),
            geo,
        }
    }

    fn sample_checkpoint() -> SensorCheckpoint {
        let mut mentions = MentionCounts::new();
        mentions.add(Organ::Kidney, 2);
        mentions.add(Organ::Heart, 1);
        let mut tracks = BTreeMap::new();
        tracks.insert(
            UserId(7),
            TrackExport {
                state: Some(UsState::Kansas),
                geo_locked: true,
                tweets: vec![tweet(4, 7, Some((37.69, -97.34))), tweet(9, 7, None)],
                mentions,
            },
        );
        tracks.insert(
            UserId(12),
            TrackExport {
                state: None,
                geo_locked: false,
                tweets: vec![tweet(5, 12, None)],
                mentions: MentionCounts::new(),
            },
        );
        SensorCheckpoint {
            shard_id: 1,
            shard_count: 4,
            epoch: 3,
            router_high_water: Some(TweetId(9)),
            export: SensorExport {
                tracks,
                duplicates_ignored: 2,
                high_water: Some(TweetId(9)),
            },
            parked: vec![tweet(8, 3, None)],
            campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
            extra_campaigns: Vec::new(),
        }
    }

    #[test]
    fn checkpoint_roundtrips_bytewise() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        let back = SensorCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ckpt);
        // Re-encoding is stable (BTreeMap order is canonical).
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn default_campaign_checkpoint_still_encodes_version_2() {
        // The isolation guarantee includes on-disk bytes: a default
        // single-campaign run must keep producing checkpoints that
        // pre-campaign builds (and golden fixtures) can read.
        let bytes = sample_checkpoint().encode();
        assert_eq!(u16::from_le_bytes([bytes[5], bytes[6]]), VERSION);
    }

    #[test]
    fn multi_campaign_checkpoint_roundtrips_as_version_3() {
        let mut ckpt = sample_checkpoint();
        let mut extra_tracks = BTreeMap::new();
        extra_tracks.insert(
            UserId(42),
            TrackExport {
                state: Some(UsState::Ohio),
                geo_locked: false,
                tweets: vec![tweet(11, 42, None)],
                mentions: MentionCounts::new(),
            },
        );
        ckpt.extra_campaigns.push(CampaignSection {
            name: "blood-drive".to_string(),
            export: SensorExport {
                tracks: extra_tracks,
                duplicates_ignored: 1,
                high_water: Some(TweetId(11)),
            },
        });
        let bytes = ckpt.encode();
        assert_eq!(u16::from_le_bytes([bytes[5], bytes[6]]), VERSION_CAMPAIGNS);
        let back = SensorCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(back, ckpt);
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.campaign_names(), vec!["organ-donation", "blood-drive"]);
        // A primary rename alone also forces the extended layout.
        let mut renamed = sample_checkpoint();
        renamed.campaign = "blood-drive".to_string();
        let rbytes = renamed.encode();
        assert_eq!(
            u16::from_le_bytes([rbytes[5], rbytes[6]]),
            VERSION_CAMPAIGNS
        );
        assert_eq!(SensorCheckpoint::decode(&rbytes).unwrap(), renamed);
    }

    #[test]
    fn version_2_bytes_decode_with_default_campaign_identity() {
        // Simulate a checkpoint written by a pre-campaign build: same
        // body, version stamped 2, no campaign trailer. Decode must
        // attribute it to the built-in default campaign.
        let ckpt = sample_checkpoint();
        let bytes = ckpt.encode();
        assert_eq!(u16::from_le_bytes([bytes[5], bytes[6]]), VERSION);
        let back = SensorCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(back.campaign, crate::campaign::DEFAULT_CAMPAIGN);
        assert!(back.extra_campaigns.is_empty());
    }

    #[test]
    fn decode_rejects_corruption_truncation_and_wrong_kind() {
        let bytes = sample_checkpoint().encode();
        // Flipped payload byte: checksum catches it.
        let mut flipped = bytes.clone();
        flipped[10] ^= 0xFF;
        assert!(SensorCheckpoint::decode(&flipped).is_err());
        // Truncation.
        assert!(SensorCheckpoint::decode(&bytes[..bytes.len() - 3]).is_err());
        // A dead-letter envelope is not a checkpoint.
        let dl = DeadLetterLog::new().encode();
        assert!(SensorCheckpoint::decode(&dl).is_err());
        // Unknown version is refused, not guessed at.
        let mut vbumped = bytes.clone();
        vbumped[5] = 0xEE;
        let body_len = vbumped.len() - 8;
        let sum = fnv1a(&vbumped[..body_len]);
        vbumped[body_len..].copy_from_slice(&sum.to_le_bytes());
        let err = SensorCheckpoint::decode(&vbumped).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn dead_letter_log_roundtrips() {
        let mut log = DeadLetterLog::new();
        log.push(DeadLetter::Tweet(tweet(3, 1, None)));
        // Damaged frames are stored verbatim — including bytes that
        // are not valid UTF-8 and bytes that look like an envelope.
        log.push(DeadLetter::Frame(vec![
            0x44, 0x50, 0x57, 0x46, 0xFF, 0x00, 0x9A,
        ]));
        log.push(DeadLetter::Tweet(tweet(6, 2, Some((40.0, -80.0)))));
        let back = DeadLetterLog::decode(&log.encode()).expect("decode");
        assert_eq!(back, log);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn damaged_v2_batches_are_preserved_byte_for_byte() {
        use donorpulse_twitter::wire::BatchFrame;
        // A v2 batch frame, damaged after encoding exactly as the
        // fault injector would damage it — the log must return the
        // identical bytes, not a re-encoding or a repair.
        let tweets: Vec<Tweet> = (0..5).map(|i| tweet(i, i % 2, None)).collect();
        let mut damaged = BatchFrame::encode(&tweets);
        damaged[BatchFrame::encode(&tweets).len() / 2] ^= 0x40;
        assert!(BatchFrame::decode(&damaged).is_err(), "must be damaged");
        let mut log = DeadLetterLog::new();
        log.push(DeadLetter::Frame(damaged.clone()));
        let back = DeadLetterLog::decode(&log.encode()).expect("decode");
        assert_eq!(back.entries(), &[DeadLetter::Frame(damaged)]);
    }

    #[test]
    fn mem_store_tracks_epochs_and_latest_complete_cut() {
        let store = MemCheckpointStore::new();
        store.save(0, 1, b"a").unwrap();
        store.save(0, 2, b"b").unwrap();
        store.save(1, 1, b"c").unwrap();
        // Epoch 2 is incomplete (shard 1 died before writing it).
        assert_eq!(store.epochs(0).unwrap(), vec![1, 2]);
        assert_eq!(latest_complete_epoch(&store, 2).unwrap(), Some(1));
        assert_eq!(latest_complete_epoch(&store, 3).unwrap(), None);
        store.save(1, 2, b"d").unwrap();
        assert_eq!(latest_complete_epoch(&store, 2).unwrap(), Some(2));
        assert_eq!(store.load(1, 2).unwrap().as_deref(), Some(&b"d"[..]));
        assert_eq!(store.load(5, 1).unwrap(), None);
    }

    #[test]
    fn compaction_keeps_newest_k_complete_epochs() {
        let store = MemCheckpointStore::new();
        // Shard 0 has epochs {1, 2, 3}; shard 1 only {1, 2} — epoch 3
        // is partial and must never count toward K.
        for e in [1, 2, 3] {
            store.save(0, e, b"x").unwrap();
        }
        for e in [1, 2] {
            store.save(1, e, b"y").unwrap();
        }
        let removed = compact_checkpoints(&store, 2, 1).unwrap();
        // Complete epochs are {1, 2}; retain 1 keeps epoch 2 and the
        // still-in-flight partial 3, and deletes epoch 1 on each shard.
        assert_eq!(removed, 2);
        assert_eq!(store.epochs(0).unwrap(), vec![2, 3]);
        assert_eq!(store.epochs(1).unwrap(), vec![2]);
        assert_eq!(latest_complete_epoch(&store, 2).unwrap(), Some(2));
        // Idempotent: nothing older than the cutoff remains.
        assert_eq!(compact_checkpoints(&store, 2, 1).unwrap(), 0);
        // retain == 0 means keep everything.
        assert_eq!(compact_checkpoints(&store, 2, 0).unwrap(), 0);
    }

    #[test]
    fn compaction_sweeps_dead_partials_below_the_cutoff() {
        let store = MemCheckpointStore::new();
        // Shard 0 wrote epoch 1 but shard 1 never did (it died);
        // both wrote epochs 2 and 3.
        store.save(0, 1, b"x").unwrap();
        for e in [2, 3] {
            store.save(0, e, b"x").unwrap();
            store.save(1, e, b"y").unwrap();
        }
        // Complete = {2, 3}; retain 2 keeps both, cutoff = 2, and the
        // dead partial epoch 1 (which can never complete) is swept.
        let removed = compact_checkpoints(&store, 2, 2).unwrap();
        assert_eq!(removed, 1);
        assert_eq!(store.epochs(0).unwrap(), vec![2, 3]);
    }

    #[test]
    fn compaction_without_a_complete_epoch_deletes_nothing() {
        let store = MemCheckpointStore::new();
        store.save(0, 1, b"x").unwrap();
        store.save(0, 2, b"x").unwrap();
        // Shard 1 has nothing: no epoch is complete.
        assert_eq!(compact_checkpoints(&store, 2, 1).unwrap(), 0);
        assert_eq!(store.epochs(0).unwrap(), vec![1, 2]);
    }

    #[test]
    fn stores_remove_tolerates_absent_checkpoints() {
        let store = MemCheckpointStore::new();
        store.save(0, 1, b"x").unwrap();
        store.remove(0, 1).unwrap();
        store.remove(0, 1).unwrap(); // second remove is benign
        assert_eq!(store.epochs(0).unwrap(), Vec::<u64>::new());
        let root =
            std::env::temp_dir().join(format!("donorpulse-ckpt-rm-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dir = DirCheckpointStore::open(&root).expect("open");
        dir.save(3, 9, b"z").unwrap();
        dir.remove(3, 9).unwrap();
        dir.remove(3, 9).unwrap();
        assert_eq!(dir.epochs(3).unwrap(), Vec::<u64>::new());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn dir_store_roundtrips_through_the_filesystem() {
        let root =
            std::env::temp_dir().join(format!("donorpulse-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let store = DirCheckpointStore::open(&root).expect("open");
        let bytes = sample_checkpoint().encode();
        store.save(2, 7, &bytes).unwrap();
        store.save(2, 9, &bytes).unwrap();
        assert_eq!(store.epochs(2).unwrap(), vec![7, 9]);
        assert_eq!(store.load(2, 7).unwrap(), Some(bytes.clone()));
        assert_eq!(store.load(2, 8).unwrap(), None);
        let back = SensorCheckpoint::decode(&store.load(2, 9).unwrap().unwrap()).unwrap();
        assert_eq!(back, sample_checkpoint());
        std::fs::remove_dir_all(&root).ok();
    }
}
