//! The cross-process consumer group: the sharded front-half of
//! [`crate::shard`] lifted onto the DPWF wire, with shard workers as
//! separate OS processes under a supervising router.
//!
//! One **router** process owns the faulted source, the keyword filter,
//! and user-hash routing — exactly the pipeline of
//! [`crate::shard::run_sharded_stream`], in the same operation order —
//! but each shard's tweets leave the process as framed DPWF v2 batches
//! over a unix-domain socket (or the worker's stdin/stdout as a pipe
//! fallback). Each **worker** process runs the same admission + sensor
//! loop as an in-process shard worker and writes its checkpoints into
//! the *shared* [`CheckpointStore`] directory, so the two topologies
//! are interchangeable on disk.
//!
//! Three control frame kinds carry the group protocol
//! ([`donorpulse_twitter::wire`]):
//!
//! * **handshake** — the worker leads with `(shard, shards, none)`;
//!   the router answers `(shard, shards, resume_epoch)`. Version and
//!   slot mismatches fail fast, before any tweet crosses the wire.
//! * **marker** — a Chandy-Lamport cut: the router flushes every
//!   shard's buffered batch, then broadcasts the marker. A worker's
//!   state at marker receipt reflects exactly the tweets routed before
//!   it — the same consistency argument as the in-process group, now
//!   over FIFO byte streams instead of FIFO channels. Markers share
//!   the checksummed envelope of every other frame, so a damaged
//!   marker is a classified decode error that **aborts the connection
//!   before any checkpoint is written** — a corrupt cut can never
//!   commit.
//! * **control** — `Ack` (a checkpoint epoch became durable),
//!   `Report` (the worker's final state), `EndOfStream`.
//!
//! **Supervision.** The router keeps a bounded *retained log* per
//! worker: every batch/marker frame since the worker's last
//! acknowledged checkpoint, verbatim bytes. When a worker dies (EOF on
//! its connection, or an exit noticed at spawn/accept), the supervisor
//! respawns it with `repro shard-worker --shard i`, offers it its own
//! newest durable epoch, and replays the retained frames past that
//! epoch — the surviving workers never notice. An `Ack(e)` trims the
//! log through `e`; durability before trimming is what makes the
//! replay window always sufficient. Without a store (or with markers
//! disabled) there is no durable floor to respawn from, so a worker
//! death is a hard error pointing at `--checkpoint-dir`.
//!
//! **Identity.** A finished N-process run merges per-shard exports
//! exactly as the in-process group does (disjoint union, sorted
//! emission), so its artifacts are byte-identical to `--shards N` and
//! to the single-sensor run — `scripts/verify.sh` diffs all three.
//! Degraded presets stay deterministic because every worker derives a
//! *per-shard* flaky-geocoder schedule
//! ([`donorpulse_geo::service::FlakyConfig::for_shard`]): a shard's
//! failure schedule is a function of its own admission sequence alone,
//! whether that shard is a thread or a process.

use crate::checkpoint::{
    compact_checkpoints, CampaignSection, CheckpointStore, DeadLetterLog, SensorCheckpoint,
};
use crate::incremental::{IncrementalSensor, SensorExport};
use crate::reshard;
use crate::shard::{
    load_resume_point, resolve_shards, route_shard, ShardConfig, ShardedStreamRun, ROUTER_BATCH,
    SHARD_TWEETS_NAMES,
};
use crate::stream_consumer::{pump_source, GeoAdmission};
use crate::{CoreError, Result};
use donorpulse_geo::service::LocationService;
use donorpulse_geo::Geocoder;
use donorpulse_obs::MetricsRegistry;
use donorpulse_twitter::fault::FaultConfig;
use donorpulse_twitter::time::VirtualClock;
use donorpulse_twitter::wire::{
    frame_extent, BatchFrame, ControlFrame, FrameError, HandshakeFrame, MarkerFrame, KIND_CONTROL,
    KIND_HANDSHAKE, KIND_MARKER, KIND_TWEET,
};
use donorpulse_twitter::{Tweet, TweetId, TwitterSimulation, UserId};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

/// How long the router waits for a freshly spawned worker to connect
/// and lead with its handshake before declaring the spawn dead.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(60);

/// How long the router waits, after end of stream, for the remaining
/// workers to drain and report.
const REPORT_TIMEOUT: Duration = Duration::from_secs(600);

/// Socket read chunk for the incremental frame reader.
const READ_CHUNK: usize = 16 * 1024;

/// Default respawn budget per worker slot.
pub const DEFAULT_RESPAWN_LIMIT: u32 = 3;

/// The exit code a worker uses for its simulated crash
/// (`--die-after`): distinguishable from panics and clean exits in
/// supervisor logs.
pub const DIE_EXIT_CODE: i32 = 17;

/// How router and workers are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProcTransport {
    /// One unix-domain socket listener; workers connect to its path.
    /// The default: full-duplex, and a worker keeps its own
    /// stdout/stderr for logs.
    #[default]
    Socket,
    /// The worker's stdin/stdout carry the frames (router holds the
    /// pipe ends). Fallback for filesystems where binding a socket is
    /// not possible.
    Pipe,
}

impl ProcTransport {
    /// Stable label for logs and the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            ProcTransport::Socket => "socket",
            ProcTransport::Pipe => "pipe",
        }
    }
}

/// How the supervisor (re)spawns a shard worker process.
///
/// `program` + `args` must form a command that runs the worker verb
/// with the *same* scale, seed, fault preset, wire mode, and
/// checkpoint directory as the router — the worker regenerates the
/// simulation for profile lookups, and determinism depends on the two
/// sides agreeing. The supervisor appends the per-spawn arguments
/// itself: `--shard i --procs n`, the transport flag
/// (`--connect PATH` or `--stdio`), and `--die-after m` for the
/// kill-one-worker test hook.
#[derive(Debug, Clone)]
pub struct WorkerSpawner {
    /// Binary to execute (typically `std::env::current_exe()`).
    pub program: PathBuf,
    /// Base arguments, ending in the worker verb (e.g.
    /// `["--scale", "0.05", "--seed", "7", "--faults", "recoverable",
    ///   "--checkpoint-dir", "D", "shard-worker"]`).
    pub args: Vec<String>,
    /// Directory for per-worker stderr logs
    /// (`worker-<shard>-gen<g>.log`) and the supervisor log
    /// (`supervisor.log`). `None` = worker stderr is inherited and
    /// supervisor lines go to the router's stderr.
    pub log_dir: Option<PathBuf>,
}

/// Configuration for [`run_proc_group`].
#[derive(Debug, Clone)]
pub struct ProcGroupConfig {
    /// The group shape and stream knobs — `shard.shards` is the
    /// **process** count here; everything else means exactly what it
    /// means in-process ([`ShardConfig`]).
    pub shard: ShardConfig,
    /// Socket (default) or pipe transport.
    pub transport: ProcTransport,
    /// Test hook: worker `i`'s *first* incarnation exits abruptly
    /// (`exit(DIE_EXIT_CODE)`, no checkpoint, no report) after
    /// admitting this many tweets — the kill-one-worker /
    /// respawn / resume gate.
    pub kill_worker: Option<(usize, u64)>,
    /// Respawns allowed per worker slot before the run fails.
    pub respawn_limit: u32,
}

impl Default for ProcGroupConfig {
    fn default() -> Self {
        ProcGroupConfig {
            shard: ShardConfig::default(),
            transport: ProcTransport::Socket,
            kill_worker: None,
            respawn_limit: DEFAULT_RESPAWN_LIMIT,
        }
    }
}

/// How a serving daemon fronts a process group instead of in-process
/// shard threads ([`crate::serve::ServeConfig`]).
#[derive(Debug, Clone)]
pub struct ProcGroupLaunch {
    /// Worker (re)spawn recipe.
    pub spawner: WorkerSpawner,
    /// Socket or pipe transport.
    pub transport: ProcTransport,
    /// Respawns allowed per worker slot.
    pub respawn_limit: u32,
}

fn proc_err(msg: impl Into<String>) -> CoreError {
    CoreError::Proc(msg.into())
}

fn io_invalid(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("wire: {e}"))
}

/// One decoded frame off the inter-process wire.
#[derive(Debug)]
enum ProcFrame {
    Batch(Vec<Tweet>),
    Marker(MarkerFrame),
    Handshake(HandshakeFrame),
    Control(ControlFrame),
}

impl ProcFrame {
    fn label(&self) -> &'static str {
        match self {
            ProcFrame::Batch(_) => "batch",
            ProcFrame::Marker(_) => "marker",
            ProcFrame::Handshake(_) => "handshake",
            ProcFrame::Control(_) => "control",
        }
    }
}

/// Writing half of a worker link: whole frames, flushed eagerly (the
/// peer blocks on frame boundaries, not on buffer luck).
struct FrameWriter {
    inner: Box<dyn Write + Send>,
}

impl FrameWriter {
    fn send(&mut self, frame: &[u8]) -> io::Result<()> {
        self.inner.write_all(frame)?;
        self.inner.flush()
    }
}

/// Reading half of a worker link: buffers socket bytes, uses
/// [`frame_extent`] to learn each frame's length, then strict-decodes
/// the complete frame (checksum and all). The wire is intra-host and
/// trusted, so corruption here is a fatal connection error, not a
/// resync — which is precisely what keeps a bit-flipped marker from
/// ever committing a cut.
struct FrameReaderHalf {
    inner: Box<dyn Read + Send>,
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReaderHalf {
    fn new(inner: Box<dyn Read + Send>) -> Self {
        FrameReaderHalf {
            inner,
            buf: Vec::with_capacity(READ_CHUNK),
            pos: 0,
        }
    }

    /// Next complete frame; `Ok(None)` on a clean EOF at a frame
    /// boundary. EOF mid-frame is `UnexpectedEof` — a half-open peer
    /// is indistinguishable from a crash and is treated as one.
    fn next_frame(&mut self) -> io::Result<Option<ProcFrame>> {
        loop {
            if self.pos > 0 {
                self.buf.drain(..self.pos);
                self.pos = 0;
            }
            if !self.buf.is_empty() {
                match frame_extent(&self.buf) {
                    Ok(extent) if self.buf.len() >= extent.total => {
                        let frame = &self.buf[..extent.total];
                        let parsed = Self::decode(frame, extent.kind)?;
                        self.pos = extent.total;
                        return Ok(Some(parsed));
                    }
                    Ok(_) | Err(FrameError::Truncated { .. }) => {}
                    Err(e) => return Err(io_invalid(e)),
                }
            }
            let start = self.buf.len();
            self.buf.resize(start + READ_CHUNK, 0);
            let n = self.inner.read(&mut self.buf[start..])?;
            self.buf.truncate(start + n);
            if n == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!("peer closed mid-frame ({} bytes buffered)", self.buf.len()),
                    ))
                };
            }
        }
    }

    /// Strict decode of one complete frame, dispatched on the kind the
    /// extent reported.
    fn decode(frame: &[u8], kind: u8) -> io::Result<ProcFrame> {
        match kind {
            KIND_TWEET => donorpulse_twitter::wire::decode_any(frame)
                .map(ProcFrame::Batch)
                .map_err(io_invalid),
            KIND_MARKER => MarkerFrame::decode(frame)
                .map(ProcFrame::Marker)
                .map_err(io_invalid),
            KIND_HANDSHAKE => HandshakeFrame::decode(frame)
                .map(ProcFrame::Handshake)
                .map_err(io_invalid),
            KIND_CONTROL => ControlFrame::decode(frame)
                .map(ProcFrame::Control)
                .map_err(io_invalid),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("wire: unexpected frame kind {other}"),
            )),
        }
    }
}

/// Everything a worker ships back in its final `Control::Report`
/// payload. The payload is opaque to the wire crate — this layout is
/// the process group's own, versioned implicitly by
/// [`donorpulse_twitter::wire::PROC_WIRE_VERSION`].
struct WorkerStreamReport {
    /// Final sensor export riding in a checkpoint record (reusing its
    /// codec and identity fields; `parked` is empty — leftovers are
    /// abandoned to dead letters before reporting).
    ckpt: SensorCheckpoint,
    /// Everything this worker abandoned, in admission order.
    dead: DeadLetterLog,
    /// Tweets still parked when the stream ended.
    parked_at_end: u64,
    /// The worker's `stream_gap_tweets_total` (park overflow +
    /// end-of-stream abandonment).
    gap_tweets: u64,
    /// The worker's `sensor_duplicates_ignored_total`.
    duplicates: u64,
}

impl WorkerStreamReport {
    fn encode(&self) -> Vec<u8> {
        let ckpt = self.ckpt.encode();
        let dead = self.dead.encode();
        let mut out = Vec::with_capacity(4 + ckpt.len() + 4 + dead.len() + 24);
        out.extend_from_slice(&(ckpt.len() as u32).to_le_bytes());
        out.extend_from_slice(&ckpt);
        out.extend_from_slice(&(dead.len() as u32).to_le_bytes());
        out.extend_from_slice(&dead);
        out.extend_from_slice(&self.parked_at_end.to_le_bytes());
        out.extend_from_slice(&self.gap_tweets.to_le_bytes());
        out.extend_from_slice(&self.duplicates.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |what: &str| proc_err(format!("worker report: {what}"));
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8]> {
            let end = pos.checked_add(n).ok_or_else(|| bad("length overflow"))?;
            if end > bytes.len() {
                return Err(bad("truncated"));
            }
            let s = &bytes[pos..end];
            pos = end;
            Ok(s)
        };
        let ckpt_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let ckpt = SensorCheckpoint::decode(take(ckpt_len)?)?;
        let dead_len = u32::from_le_bytes(take(4)?.try_into().expect("4 bytes")) as usize;
        let dead = DeadLetterLog::decode(take(dead_len)?)?;
        let parked_at_end = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let gap_tweets = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        let duplicates = u64::from_le_bytes(take(8)?.try_into().expect("8 bytes"));
        if pos != bytes.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(WorkerStreamReport {
            ckpt,
            dead,
            parked_at_end,
            gap_tweets,
            duplicates,
        })
    }
}

/// A full worker report can outgrow the wire's `MAX_PAYLOAD` sanity
/// bound (the sensor export scales with distinct users), so it travels
/// as a *sequence* of `Control::Report` frames: the first chunk opens
/// with a `u64` little-endian total length, and the router reassembles
/// until exactly that many bytes have arrived. The chunk size leaves
/// generous headroom under the frame cap for the envelope + tag.
const REPORT_CHUNK: usize = donorpulse_twitter::wire::MAX_PAYLOAD - 4096;

/// Splits an encoded report into wire-safe `Control::Report` payloads
/// (first one carrying the length prefix).
fn report_chunks(encoded: &[u8]) -> Vec<Vec<u8>> {
    let mut prefixed = Vec::with_capacity(8 + encoded.len());
    prefixed.extend_from_slice(&(encoded.len() as u64).to_le_bytes());
    prefixed.extend_from_slice(encoded);
    prefixed.chunks(REPORT_CHUNK).map(|c| c.to_vec()).collect()
}

/// Accumulates report chunks; yields the full report once the declared
/// length has arrived. Overshoot is a protocol violation.
#[derive(Default)]
struct ReportAssembly {
    buf: Vec<u8>,
}

impl ReportAssembly {
    fn push(&mut self, chunk: &[u8]) -> Result<Option<WorkerStreamReport>> {
        self.buf.extend_from_slice(chunk);
        if self.buf.len() < 8 {
            return Ok(None);
        }
        let total = u64::from_le_bytes(self.buf[..8].try_into().expect("8 bytes")) as usize;
        match self.buf.len() - 8 {
            have if have < total => Ok(None),
            have if have == total => WorkerStreamReport::decode(&self.buf[8..]).map(Some),
            _ => Err(proc_err("worker report overran its declared length")),
        }
    }
}

/// Uniquifies socket directories within one router process.
static HUB_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bound unix-domain listener in a private temp directory, cleaned
/// up on drop.
struct SocketHub {
    dir: PathBuf,
    path: PathBuf,
    listener: UnixListener,
}

impl SocketHub {
    fn bind() -> io::Result<Self> {
        let dir = std::env::temp_dir().join(format!(
            "dp-procgroup-{}-{}",
            std::process::id(),
            HUB_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let path = dir.join("group.sock");
        let listener = UnixListener::bind(&path)?;
        Ok(SocketHub {
            dir,
            path,
            listener,
        })
    }
}

impl Drop for SocketHub {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
        let _ = std::fs::remove_dir(&self.dir);
    }
}

/// The live transport: a hub workers dial into, or per-child pipes.
enum ActiveTransport {
    Socket(SocketHub),
    Pipe,
}

/// The supervisor's event log: a file under the worker log directory
/// when one is configured, stderr `# supervisor:` lines otherwise.
struct SupLog {
    file: Option<std::fs::File>,
}

impl SupLog {
    fn open(log_dir: Option<&PathBuf>) -> Self {
        let file = log_dir.and_then(|dir| {
            std::fs::create_dir_all(dir).ok()?;
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(dir.join("supervisor.log"))
                .ok()
        });
        SupLog { file }
    }

    fn say(&mut self, msg: &str) {
        match &mut self.file {
            Some(f) => {
                let _ = writeln!(f, "{msg}");
                let _ = f.flush();
            }
            None => eprintln!("# supervisor: {msg}"),
        }
    }
}

/// What a reader thread forwards to the router.
enum EventKind {
    Frame(ProcFrame),
    /// The connection ended: `None` = clean EOF, `Some` = read error.
    Closed(Option<String>),
}

struct Event {
    shard: usize,
    /// Spawn generation the event belongs to — events from a dead
    /// incarnation's reader thread are ignored.
    gen: u32,
    kind: EventKind,
}

/// A frame the router must be able to replay to a respawned worker:
/// the verbatim bytes plus the checkpoint window they commit with.
/// A batch sent while the current epoch is `e` is covered by the
/// *next* cut, so its window is `e + 1`; a marker's window is its own
/// epoch. `Ack(e)` proves everything with `window <= e` durable.
struct Retained {
    window: u64,
    bytes: Vec<u8>,
}

/// One worker slot as the supervisor sees it.
struct Link {
    child: Option<Child>,
    writer: Option<FrameWriter>,
    /// Spawn generation (bumped on every respawn).
    gen: u32,
    respawns: u32,
    alive: bool,
    report: Option<WorkerStreamReport>,
    /// In-flight report chunks (reset on respawn).
    assembly: ReportAssembly,
    /// Why the link died, for the error message if it stays dead.
    last_error: Option<String>,
}

/// The supervising router: spawns workers, pumps frames, heals deaths.
struct GroupRouter<'g> {
    shards: usize,
    spawner: &'g WorkerSpawner,
    transport: ActiveTransport,
    store: Option<&'g dyn CheckpointStore>,
    retention_active: bool,
    respawn_limit: u32,
    kill_worker: Option<(usize, u64)>,
    links: Vec<Link>,
    retained: Vec<VecDeque<Retained>>,
    events_tx: mpsc::Sender<Event>,
    events_rx: mpsc::Receiver<Event>,
    log: SupLog,
    metrics: MetricsRegistry,
}

impl<'g> GroupRouter<'g> {
    /// Spawns one worker incarnation for `shard`, waits for its hello,
    /// answers with `offer`, and wires up its reader thread.
    fn spawn_worker(&mut self, shard: usize, offer: Option<u64>, first: bool) -> Result<()> {
        let gen = self.links[shard].gen + 1;
        let mut cmd = Command::new(&self.spawner.program);
        cmd.args(&self.spawner.args);
        cmd.arg("--shard").arg(shard.to_string());
        cmd.arg("--procs").arg(self.shards.to_string());
        if first {
            if let Some((target, after)) = self.kill_worker {
                if target == shard {
                    cmd.arg("--die-after").arg(after.to_string());
                }
            }
        }
        match &self.transport {
            ActiveTransport::Socket(hub) => {
                cmd.arg("--connect").arg(&hub.path);
                cmd.stdin(Stdio::null());
                cmd.stdout(Stdio::null());
            }
            ActiveTransport::Pipe => {
                cmd.arg("--stdio");
                cmd.stdin(Stdio::piped());
                cmd.stdout(Stdio::piped());
            }
        }
        match &self.spawner.log_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| proc_err(format!("creating {}: {e}", dir.display())))?;
                let log = std::fs::File::create(dir.join(format!("worker-{shard}-gen{gen}.log")))
                    .map_err(|e| proc_err(format!("worker log: {e}")))?;
                cmd.stderr(log);
            }
            None => {
                cmd.stderr(Stdio::inherit());
            }
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| proc_err(format!("spawning worker {shard}: {e}")))?;
        self.metrics.counter("procgroup_spawns_total").incr();

        let (writer, mut reader): (FrameWriter, FrameReaderHalf) = match &self.transport {
            ActiveTransport::Socket(hub) => {
                let stream = accept_worker(&hub.listener, &mut child, shard)?;
                let read_half = stream
                    .try_clone()
                    .map_err(|e| proc_err(format!("worker {shard}: socket clone: {e}")))?;
                (
                    FrameWriter {
                        inner: Box::new(stream),
                    },
                    FrameReaderHalf::new(Box::new(read_half)),
                )
            }
            ActiveTransport::Pipe => {
                let stdin = child.stdin.take().expect("piped stdin");
                let stdout = child.stdout.take().expect("piped stdout");
                (
                    FrameWriter {
                        inner: Box::new(stdin),
                    },
                    FrameReaderHalf::new(Box::new(stdout)),
                )
            }
        };

        // The worker leads with its hello; validate the slot before
        // sending anything.
        let hello = match reader.next_frame() {
            Ok(Some(ProcFrame::Handshake(h))) => h,
            Ok(Some(f)) => {
                let _ = child.kill();
                return Err(proc_err(format!(
                    "worker {shard}: expected handshake, got {} frame",
                    f.label()
                )));
            }
            Ok(None) => {
                let status = child.wait().ok();
                return Err(proc_err(format!(
                    "worker {shard} exited before its handshake (status {status:?})"
                )));
            }
            Err(e) => {
                let _ = child.kill();
                return Err(proc_err(format!("worker {shard} handshake: {e}")));
            }
        };
        if hello.shard as usize != shard || hello.shards as usize != self.shards {
            let _ = child.kill();
            return Err(proc_err(format!(
                "worker hello claims slot {}/{} but the supervisor spawned it as {shard}/{}",
                hello.shard, hello.shards, self.shards
            )));
        }
        let mut writer = writer;
        writer
            .send(&HandshakeFrame::new(shard as u32, self.shards as u32, offer).encode())
            .map_err(|e| proc_err(format!("worker {shard}: sending resume offer: {e}")))?;

        let tx = self.events_tx.clone();
        thread::spawn(move || loop {
            match reader.next_frame() {
                Ok(Some(frame)) => {
                    if tx
                        .send(Event {
                            shard,
                            gen,
                            kind: EventKind::Frame(frame),
                        })
                        .is_err()
                    {
                        break;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Event {
                        shard,
                        gen,
                        kind: EventKind::Closed(None),
                    });
                    break;
                }
                Err(e) => {
                    let _ = tx.send(Event {
                        shard,
                        gen,
                        kind: EventKind::Closed(Some(e.to_string())),
                    });
                    break;
                }
            }
        });

        let link = &mut self.links[shard];
        link.child = Some(child);
        link.writer = Some(writer);
        link.gen = gen;
        link.alive = true;
        link.last_error = None;
        // A prior incarnation may have died mid-report; its partial
        // chunks must never prefix the new incarnation's report.
        link.assembly = ReportAssembly::default();
        self.log.say(&format!(
            "worker {shard} gen {gen} up (offer {offer:?}, transport {})",
            match self.transport {
                ActiveTransport::Socket(_) => "socket",
                ActiveTransport::Pipe => "pipe",
            }
        ));
        Ok(())
    }

    /// Drains every pending event without blocking.
    fn drain_events(&mut self) -> Result<()> {
        while let Ok(ev) = self.events_rx.try_recv() {
            self.handle_event(ev)?;
        }
        Ok(())
    }

    fn handle_event(&mut self, ev: Event) -> Result<()> {
        if ev.shard >= self.links.len() {
            return Ok(()); // straggler from a slot removed by a re-shard
        }
        if ev.gen != self.links[ev.shard].gen {
            return Ok(()); // stale incarnation
        }
        match ev.kind {
            EventKind::Frame(ProcFrame::Control(ControlFrame::Ack { epoch })) => {
                self.metrics.counter("procgroup_acks_total").incr();
                let retained = &mut self.retained[ev.shard];
                while retained.front().is_some_and(|r| r.window <= epoch) {
                    retained.pop_front();
                }
            }
            EventKind::Frame(ProcFrame::Control(ControlFrame::Report { payload })) => {
                if let Some(report) = self.links[ev.shard].assembly.push(&payload)? {
                    self.metrics.counter("procgroup_reports_total").incr();
                    self.links[ev.shard].report = Some(report);
                }
            }
            EventKind::Frame(f) => {
                return Err(proc_err(format!(
                    "worker {} sent an unexpected {} frame",
                    ev.shard,
                    f.label()
                )));
            }
            EventKind::Closed(reason) => {
                self.note_death(ev.shard, reason);
            }
        }
        Ok(())
    }

    /// Marks a link dead and reaps the child. Healing happens lazily,
    /// at the next send (or in the report wait loop).
    fn note_death(&mut self, shard: usize, reason: Option<String>) {
        let link = &mut self.links[shard];
        if !link.alive {
            return;
        }
        link.alive = false;
        link.writer = None;
        let status = link.child.take().and_then(|mut c| c.wait().ok());
        let finished = link.report.is_some();
        if finished {
            self.log.say(&format!(
                "worker {shard} gen {} finished ({status:?})",
                link.gen
            ));
            return;
        }
        link.last_error = Some(match &reason {
            Some(r) => format!("connection error: {r} (exit {status:?})"),
            None => format!("connection EOF (exit {status:?})"),
        });
        self.metrics
            .counter("supervisor_worker_deaths_total")
            .incr();
        self.log.say(&format!(
            "worker {shard} gen {} DIED: {}",
            link.gen,
            link.last_error.as_deref().unwrap_or("?")
        ));
    }

    /// Brings a dead worker back: respawn from its newest durable
    /// epoch and replay the retained window past it.
    fn heal(&mut self, shard: usize) -> Result<()> {
        let link = &self.links[shard];
        if link.report.is_some() {
            return Ok(()); // finished; nothing to heal
        }
        if !self.retention_active {
            return Err(proc_err(format!(
                "worker {shard} died ({}) and the group has no durable checkpoints to respawn \
                 from — run with --checkpoint-dir and --checkpoint-every to make worker death \
                 survivable",
                self.links[shard].last_error.as_deref().unwrap_or("?")
            )));
        }
        if link.respawns >= self.respawn_limit {
            return Err(proc_err(format!(
                "worker {shard} died ({}) after exhausting its respawn budget of {}",
                self.links[shard].last_error.as_deref().unwrap_or("?"),
                self.respawn_limit
            )));
        }
        self.links[shard].respawns += 1;
        self.metrics.counter("procgroup_respawns_total").incr();
        let store = self.store.expect("retention_active implies a store");
        let offer = store
            .epochs(shard as u32)
            .map_err(|e| proc_err(format!("worker {shard}: reading resume epochs: {e}")))?
            .last()
            .copied();
        self.spawn_worker(shard, offer, false)?;
        // Drop retained frames the resumed epoch already covers, then
        // replay the rest verbatim.
        let floor = offer.unwrap_or(0);
        let retained = &mut self.retained[shard];
        while retained
            .front()
            .is_some_and(|r| offer.is_some() && r.window <= floor)
        {
            retained.pop_front();
        }
        let replayed = self.metrics.counter("supervisor_replayed_batches_total");
        let frames: Vec<Vec<u8>> = self.retained[shard]
            .iter()
            .map(|r| r.bytes.clone())
            .collect();
        self.log.say(&format!(
            "worker {shard} gen {} resuming from epoch {offer:?}, replaying {} retained frames",
            self.links[shard].gen,
            frames.len()
        ));
        for bytes in frames {
            replayed.incr();
            self.write_link(shard, &bytes)?;
        }
        Ok(())
    }

    /// Raw write to a link that must be alive.
    fn write_link(&mut self, shard: usize, frame: &[u8]) -> Result<()> {
        let link = &mut self.links[shard];
        let Some(writer) = link.writer.as_mut() else {
            return Err(proc_err(format!("worker {shard}: write to a dead link")));
        };
        match writer.send(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.note_death(shard, Some(format!("write: {e}")));
                Err(proc_err(format!("worker {shard}: write failed: {e}")))
            }
        }
    }

    /// Supervised send: retains the frame (when retention is active),
    /// heals a dead link before writing, and heals + retries once if
    /// the write itself hits a freshly dead pipe.
    fn send_supervised(&mut self, shard: usize, frame: Vec<u8>, window: u64) -> Result<()> {
        self.drain_events()?;
        if self.retention_active {
            self.retained[shard].push_back(Retained {
                window,
                bytes: frame.clone(),
            });
        }
        if !self.links[shard].alive {
            self.heal(shard)?;
            return Ok(()); // heal replayed the retained log, frame included
        }
        match self.write_link(shard, &frame) {
            Ok(()) => Ok(()),
            Err(_) => {
                // The write marked the link dead; one heal replays the
                // retained window (this frame included) to the respawn.
                self.heal(shard)
            }
        }
    }

    /// Broadcasts `EndOfStream` to every live link, tolerating dead
    /// ones (they are healed — or surfaced — by the report wait loop).
    fn broadcast_eos(&mut self) -> Result<()> {
        self.drain_events()?;
        let eos = ControlFrame::EndOfStream.encode();
        for shard in 0..self.shards {
            if self.links[shard].alive {
                let _ = self.write_link(shard, &eos);
            }
        }
        Ok(())
    }

    /// Waits until every worker has reported, healing deaths as they
    /// surface (a healed worker gets the retained replay plus a fresh
    /// `EndOfStream`).
    fn await_reports(&mut self) -> Result<()> {
        let deadline = Instant::now() + REPORT_TIMEOUT;
        loop {
            self.drain_events()?;
            // Heal (or fail on) anything dead without a report.
            for shard in 0..self.shards {
                if !self.links[shard].alive && self.links[shard].report.is_none() {
                    self.heal(shard)?;
                    let eos = ControlFrame::EndOfStream.encode();
                    self.write_link(shard, &eos)?;
                }
            }
            if (0..self.shards).all(|s| self.links[s].report.is_some()) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let missing: Vec<usize> = (0..self.shards)
                    .filter(|&s| self.links[s].report.is_none())
                    .collect();
                return Err(proc_err(format!(
                    "workers {missing:?} never reported within {REPORT_TIMEOUT:?}"
                )));
            }
            match self.events_rx.recv_timeout(Duration::from_millis(200)) {
                Ok(ev) => self.handle_event(ev)?,
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(proc_err("event channel disconnected".to_string()))
                }
            }
        }
    }

    /// Reaps every child still around (normal exit path: they already
    /// closed their connections after reporting).
    fn reap_all(&mut self) {
        for link in &mut self.links {
            if let Some(mut child) = link.child.take() {
                let _ = child.wait();
            }
        }
    }

    /// Online elastic re-shard drill. The route loop has already
    /// frozen the group at a dedicated marker `epoch` and collected
    /// every worker's final report; those reports are superseded by
    /// the epoch cut and discarded here. The store is repartitioned
    /// to `to` shards with the offline repartitioner, then a fresh
    /// set of `to` children comes up resuming from the resharded cut.
    ///
    /// Boundary (docs/SCALING.md): state the old workers accumulated
    /// *after* the marker — their end-of-stream park drain and any
    /// dead letters they were carrying — dies with the reports. The
    /// epoch cut is the single source of truth across the swap,
    /// exactly as in a crash-resume.
    fn retopologize(&mut self, to: usize, epoch: u64) -> Result<()> {
        let from = self.shards;
        self.drain_events()?;
        self.reap_all();
        // Old readers may still be flushing Closed events; absorb
        // what has arrived (handle_event drops stragglers for slots a
        // shrink removes, and generation counters below outlive the
        // swap so a pre-swap event can never claim a post-swap link).
        self.drain_events()?;
        let store = self.store.expect("a proc-group re-shard requires a store");
        let report = reshard::reshard_checkpoints(store, to, &self.metrics)?;
        self.metrics.counter("reshard_swaps_total").incr();
        self.links = (0..to)
            .map(|shard| Link {
                child: None,
                writer: None,
                gen: self.links.get(shard).map_or(0, |l| l.gen),
                respawns: 0,
                alive: false,
                report: None,
                assembly: ReportAssembly::default(),
                last_error: None,
            })
            .collect();
        // Retained windows are superseded too: everything routed
        // before the marker sits inside the epoch cut every new
        // worker resumes from.
        self.retained = (0..to).map(|_| VecDeque::new()).collect();
        self.shards = to;
        self.metrics.gauge("shard_count").set(to as u64);
        self.metrics.gauge("procgroup_workers").set(to as u64);
        self.log.say(&format!(
            "group resharded {from} -> {to} at epoch {epoch}: {} tracks ({} moved), \
             {} parked ({} moved)",
            report.tracks_total, report.tracks_moved, report.parked_total, report.parked_moved
        ));
        for shard in 0..to {
            self.spawn_worker(shard, Some(epoch), false)?;
        }
        Ok(())
    }
}

impl Drop for GroupRouter<'_> {
    fn drop(&mut self) {
        // Error paths must not leak worker processes.
        for link in &mut self.links {
            if let Some(mut child) = link.child.take() {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
}

/// Accepts the one pending worker connection, polling the child so a
/// worker that dies before connecting fails the spawn instead of the
/// timeout.
fn accept_worker(listener: &UnixListener, child: &mut Child, shard: usize) -> Result<UnixStream> {
    listener
        .set_nonblocking(true)
        .map_err(|e| proc_err(format!("listener: {e}")))?;
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| proc_err(format!("worker {shard}: socket: {e}")))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Ok(Some(status)) = child.try_wait() {
                    return Err(proc_err(format!(
                        "worker {shard} exited before connecting (status {status})"
                    )));
                }
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    return Err(proc_err(format!(
                        "worker {shard} did not connect within {CONNECT_TIMEOUT:?}"
                    )));
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(proc_err(format!("accept: {e}"))),
        }
    }
}

/// Runs the multi-process consumer group end to end and merges the
/// workers' reports into a [`ShardedStreamRun`] shaped exactly like
/// the in-process one. See the module docs for the identity and
/// supervision arguments.
///
/// The router performs source pumping, keyword filtering, resume
/// guarding, routing, marker broadcast, and retention compaction in
/// the *same operation order* as
/// [`crate::shard::run_sharded_stream`] — that is what makes the two
/// runs' counters, gauges, and artifacts interchangeable.
pub fn run_proc_group<'a>(
    sim: &'a TwitterSimulation,
    geocoder: &'a Geocoder,
    faults: FaultConfig,
    store: Option<&dyn CheckpointStore>,
    spawner: &WorkerSpawner,
    config: ProcGroupConfig,
) -> Result<ShardedStreamRun<'a>> {
    let shards = resolve_shards(config.shard.shards);
    let metrics = config.shard.stream.metrics.clone();
    metrics.gauge("shard_count").set(shards as u64);
    metrics.gauge("procgroup_workers").set(shards as u64);

    // Online re-shard: a process group moves the cut through the
    // checkpoint store (no shared memory to hand state over in), so
    // the drill needs durable cuts to exist at all.
    if let Some((_, to)) = config.shard.reshard_at {
        reshard::validate_target(to)?;
        if store.is_none() || config.shard.checkpoint_every == 0 {
            return Err(CoreError::Checkpoint(
                "an online re-shard of a process group moves state through the checkpoint \
                 store — run with --checkpoint-dir and --checkpoint-every"
                    .into(),
            ));
        }
    }

    // Resume: validate the newest complete cut up front (exactly the
    // in-process checks), but ship only its epoch — each worker loads
    // its own shard's state from the shared store.
    let (resume_hw, start_epoch, resumed_from_epoch, initial_offer) = if config.shard.resume {
        let store = store.ok_or_else(|| {
            CoreError::Checkpoint("resume requires a checkpoint store (--checkpoint-dir)".into())
        })?;
        let point = load_resume_point(store, shards, &config.shard.stream.campaigns)?;
        (
            point.high_water,
            point.epoch,
            Some(point.epoch),
            Some(point.epoch),
        )
    } else {
        (None, 0, None, None)
    };

    let retention_active = store.is_some() && config.shard.checkpoint_every > 0;
    let transport = match config.transport {
        ProcTransport::Socket => match SocketHub::bind() {
            Ok(hub) => ActiveTransport::Socket(hub),
            Err(e) => {
                eprintln!("# procgroup: socket bind failed ({e}); falling back to pipes");
                ActiveTransport::Pipe
            }
        },
        ProcTransport::Pipe => ActiveTransport::Pipe,
    };

    let (events_tx, events_rx) = mpsc::channel();
    let mut router = GroupRouter {
        shards,
        spawner,
        transport,
        store,
        retention_active,
        respawn_limit: config.respawn_limit,
        kill_worker: config.kill_worker,
        links: (0..shards)
            .map(|_| Link {
                child: None,
                writer: None,
                gen: 0,
                respawns: 0,
                alive: false,
                report: None,
                assembly: ReportAssembly::default(),
                last_error: None,
            })
            .collect(),
        retained: (0..shards).map(|_| VecDeque::new()).collect(),
        events_tx,
        events_rx,
        log: SupLog::open(spawner.log_dir.as_ref()),
        metrics: metrics.clone(),
    };
    for shard in 0..shards {
        router.spawn_worker(shard, initial_offer, true)?;
    }

    let (src_tx, src_rx) = mpsc::sync_channel::<Vec<Tweet>>(config.shard.stream.channel_capacity);

    let (outcome, per_shard, last_epoch, killed, resharded) =
        thread::scope(|scope| -> Result<_> {
        let source = scope.spawn({
            let config = &config;
            move || {
                let mut span = config.shard.stream.metrics.stage("stream_source");
                let outcome = pump_source(sim, faults, &config.shard.stream, resume_hw, src_tx);
                span.set_items(outcome.stats.delivered);
                span.finish();
                outcome
            }
        });

        // The router proper — the same loop as the in-process group,
        // with channel sends replaced by supervised frame sends.
        let route = (|| -> Result<(Vec<u64>, u64, bool, Option<(u64, usize)>)> {
            let mut span = metrics.stage("stream_router");
            let campaigns = &config.shard.stream.campaigns;
            let rejected = metrics.counter("consumer_filter_rejected_total");
            let passed = metrics.counter("consumer_filter_passed_total");
            let matched: Option<Vec<_>> = (!campaigns.is_default_single()).then(|| {
                campaigns
                    .campaigns()
                    .iter()
                    .map(|c| metrics.counter(c.metric_name("matched_total")))
                    .collect()
            });
            let routed_total = metrics.counter("shard_tweets_total");
            let replayed = metrics.counter("resume_replayed_total");
            let compacted = metrics.counter("checkpoints_compacted_total");
            let compact_errors = metrics.counter("checkpoint_compact_errors_total");
            let batch_sends = metrics.counter("stream_batch_sends_total");
            let mut group = shards;
            let mut per_shard = vec![0u64; group];
            let mut bufs: Vec<Vec<Tweet>> = vec![Vec::new(); group];
            let mut routed = 0u64;
            let mut routed_at_swap = 0u64;
            let mut epoch = start_epoch;
            let mut high_water: Option<TweetId> = resume_hw;
            let mut killed = false;
            let mut n = 0u64;
            let mut pending_reshard = config.shard.reshard_at;
            let mut resharded: Option<(u64, usize)> = None;
            'route: for batch in src_rx {
                for tweet in batch {
                    n += 1;
                    let mask = campaigns.mask_of(&tweet.text);
                    if mask == 0 {
                        rejected.incr();
                        continue;
                    }
                    passed.incr();
                    if let Some(matched) = &matched {
                        for (i, handle) in matched.iter().enumerate() {
                            if mask & (1 << i) != 0 {
                                handle.incr();
                            }
                        }
                    }
                    if resume_hw.is_some_and(|hw| tweet.id <= hw) {
                        replayed.incr();
                        continue;
                    }
                    let shard = route_shard(tweet.user, group);
                    high_water = Some(high_water.map_or(tweet.id, |hw| hw.max(tweet.id)));
                    bufs[shard].push(tweet);
                    if bufs[shard].len() >= ROUTER_BATCH {
                        batch_sends.incr();
                        let frame = BatchFrame::encode(&bufs[shard]);
                        bufs[shard].clear();
                        router.send_supervised(shard, frame, epoch + 1)?;
                    }
                    per_shard[shard] += 1;
                    routed += 1;
                    routed_total.incr();
                    if config.shard.checkpoint_every > 0
                        && routed % config.shard.checkpoint_every == 0
                    {
                        // A cut reflects everything routed before it,
                        // including runs still sitting in buffers.
                        for (s, buf) in bufs.iter_mut().enumerate() {
                            if !buf.is_empty() {
                                batch_sends.incr();
                                let frame = BatchFrame::encode(buf);
                                buf.clear();
                                router.send_supervised(s, frame, epoch + 1)?;
                            }
                        }
                        epoch += 1;
                        let marker = MarkerFrame {
                            epoch,
                            high_water: high_water.map(|h| h.0),
                        }
                        .encode();
                        for s in 0..group {
                            router.send_supervised(s, marker.clone(), epoch)?;
                        }
                        if config.shard.checkpoint_retain > 0 {
                            if let Some(store) = store {
                                match compact_checkpoints(
                                    store,
                                    group as u32,
                                    config.shard.checkpoint_retain,
                                ) {
                                    Ok(n) => compacted.add(n),
                                    Err(_) => compact_errors.incr(),
                                }
                            }
                        }
                    }
                    // Online elastic re-shard: freeze the group at a
                    // dedicated cut epoch, retire the old children,
                    // repartition the store, and bring up M new ones —
                    // the source never stops pumping.
                    if pending_reshard.is_some_and(|(k, _)| routed >= k) {
                        let (_, to) = pending_reshard.take().expect("swap point just matched");
                        for (s, buf) in bufs.iter_mut().enumerate() {
                            if !buf.is_empty() {
                                batch_sends.incr();
                                let frame = BatchFrame::encode(buf);
                                buf.clear();
                                router.send_supervised(s, frame, epoch + 1)?;
                            }
                        }
                        epoch += 1;
                        let marker = MarkerFrame {
                            epoch,
                            high_water: high_water.map(|h| h.0),
                        }
                        .encode();
                        for s in 0..group {
                            router.send_supervised(s, marker.clone(), epoch)?;
                        }
                        router.broadcast_eos()?;
                        router.await_reports()?;
                        router.retopologize(to, epoch)?;
                        group = to;
                        per_shard = vec![0; group];
                        bufs = vec![Vec::new(); group];
                        routed_at_swap = routed;
                        resharded = Some((epoch, to));
                    }
                    if config.shard.kill_after.is_some_and(|k| routed >= k) {
                        killed = true;
                        for (s, buf) in bufs.iter_mut().enumerate() {
                            if !buf.is_empty() {
                                batch_sends.incr();
                                let frame = BatchFrame::encode(buf);
                                buf.clear();
                                let _ = router.send_supervised(s, frame, epoch + 1);
                            }
                        }
                        break 'route;
                    }
                }
            }
            if !killed {
                for (s, buf) in bufs.iter_mut().enumerate() {
                    if !buf.is_empty() {
                        batch_sends.incr();
                        let frame = BatchFrame::encode(buf);
                        buf.clear();
                        router.send_supervised(s, frame, epoch + 1)?;
                    }
                }
            }
            // Closing cut: freeze the group exactly at end-of-stream.
            if config.shard.checkpoint_final
                && config.shard.checkpoint_every > 0
                && !killed
                && store.is_some()
            {
                epoch += 1;
                let marker = MarkerFrame {
                    epoch,
                    high_water: high_water.map(|h| h.0),
                }
                .encode();
                for s in 0..group {
                    router.send_supervised(s, marker.clone(), epoch)?;
                }
            }
            for (i, &count) in per_shard.iter().enumerate() {
                metrics.gauge(SHARD_TWEETS_NAMES[i]).set(count);
            }
            // Imbalance over the current topology's share of the
            // stream — counts before a re-shard swap were earned
            // under a different modulus.
            let max = per_shard.iter().copied().max().unwrap_or(0);
            if let Some(ratio) =
                (max * group as u64 * 1_000).checked_div(routed - routed_at_swap)
            {
                metrics.gauge("shard_imbalance_ratio_permille").set(ratio);
            }
            span.set_items(n);
            span.finish();
            Ok((per_shard, epoch, killed, resharded))
        })();

        let outcome = source.join().expect("source stage panicked");
        let (per_shard, last_epoch, killed, resharded) = route?;
        Ok((outcome, per_shard, last_epoch, killed, resharded))
    })?;

    // Shut the group down and collect the final reports.
    router.broadcast_eos()?;
    router.await_reports()?;
    router.reap_all();

    let final_shards = resharded.map_or(shards, |(_, m)| m);
    let campaigns = &config.shard.stream.campaigns;
    let mut merged: Vec<SensorExport> = vec![SensorExport::default(); campaigns.len()];
    let mut dead_letters = DeadLetterLog::new();
    for d in outcome.dead.iter().cloned() {
        dead_letters.push(d);
    }
    let mut parked_at_end = 0u64;
    let mut gap_total = 0u64;
    let mut dup_total = 0u64;
    for shard in 0..final_shards {
        let report = router.links[shard]
            .report
            .take()
            .expect("await_reports returned with every report present");
        if report.ckpt.shard_id != shard as u32 || report.ckpt.shard_count != final_shards as u32
        {
            return Err(proc_err(format!(
                "worker {shard} reported as shard {}/{}",
                report.ckpt.shard_id, report.ckpt.shard_count
            )));
        }
        if report.ckpt.campaign_names() != campaigns.names() {
            return Err(proc_err(format!(
                "worker {shard} reported campaigns {:?} but the router senses {:?} \
                 (--campaigns mismatch between router and worker)",
                report.ckpt.campaign_names(),
                campaigns.names()
            )));
        }
        merged[0].absorb(report.ckpt.export)?;
        for (m, section) in merged[1..].iter_mut().zip(report.ckpt.extra_campaigns) {
            m.absorb(section.export)?;
        }
        parked_at_end += report.parked_at_end;
        gap_total += report.gap_tweets;
        dup_total += report.duplicates;
        for d in report.dead.entries().iter().cloned() {
            dead_letters.push(d);
        }
    }
    // Fold the workers' local accounting into the router registry so
    // the run's snapshot matches the in-process group counter for
    // counter (the source side already contributed directly).
    metrics.counter("stream_gap_tweets_total").add(gap_total);
    metrics
        .counter("sensor_duplicates_ignored_total")
        .add(dup_total);

    let delivered_tweets = merged[0].tweet_count();
    let mut merged = merged.into_iter();
    let primary_export = merged.next().expect("registry has a primary campaign");
    let (sensor, extra_sensors) = if killed {
        (None, Vec::new())
    } else {
        let profile_of = |id: UserId| {
            sim.users()
                .get(id.0 as usize)
                .map(|u| u.profile_location.clone())
        };
        (
            Some(IncrementalSensor::restore_with_extractor(
                geocoder,
                profile_of,
                primary_export,
                campaigns.primary().extractor().clone(),
            )),
            campaigns
                .extras()
                .iter()
                .zip(merged)
                .map(|(c, export)| {
                    IncrementalSensor::restore_with_extractor(
                        geocoder,
                        profile_of,
                        export,
                        c.extractor().clone(),
                    )
                })
                .collect(),
        )
    };

    if config.shard.checkpoint_retain > 0 {
        if let Some(store) = store {
            let n = compact_checkpoints(store, final_shards as u32, config.shard.checkpoint_retain)
                .map_err(|e| CoreError::Checkpoint(format!("compacting checkpoints: {e}")))?;
            metrics.counter("checkpoints_compacted_total").add(n);
        }
    }

    Ok(ShardedStreamRun {
        sensor,
        extra_sensors,
        fault_stats: outcome.stats,
        metrics: metrics.snapshot(),
        expected_tweets: sim.on_topic_len() as u64,
        delivered_tweets,
        source_aborted: outcome.aborted,
        parked_at_end,
        dead_letters,
        shards: final_shards,
        shard_tweets: per_shard,
        resumed_from_epoch,
        last_epoch,
        killed,
        resharded,
    })
}

/// Configuration for [`run_shard_worker`] — the values the supervisor
/// passed on the command line.
#[derive(Debug, Clone)]
pub struct ShardWorkerConfig {
    /// This worker's shard index.
    pub shard: usize,
    /// The group's process count.
    pub shards: usize,
    /// Stream knobs — must match the router's
    /// ([`ShardConfig::stream`]); in particular `geo_retry`, from
    /// which the per-shard consumer policy is derived exactly as
    /// in-process.
    pub stream: crate::stream_consumer::StreamPipelineConfig,
    /// Test hook: exit abruptly (`exit(DIE_EXIT_CODE)`, destructors
    /// skipped — a realistic crash) after admitting this many tweets.
    pub die_after: Option<u64>,
}

/// The worker's end of the link.
pub enum WorkerConn {
    /// Dial the router's unix-domain socket at this path.
    Socket(PathBuf),
    /// Frames ride this process's stdin/stdout (`--stdio`).
    Stdio,
}

/// Runs one shard worker process: handshake, optional resume from the
/// shared store, then the same admission + sensor + checkpoint loop as
/// an in-process shard worker, frame-driven. Returns after
/// `EndOfStream` once the final report is on the wire.
///
/// `service` is this worker's own geocoding service — for degraded
/// presets the caller derives it with
/// [`donorpulse_geo::service::FlakyConfig::for_shard`] so the failure
/// schedule is per-shard pure.
pub fn run_shard_worker(
    sim: &TwitterSimulation,
    geocoder: &Geocoder,
    service: &(dyn LocationService + Sync),
    store: Option<&dyn CheckpointStore>,
    config: ShardWorkerConfig,
    conn: WorkerConn,
) -> Result<()> {
    let shard_id = config.shard;
    let shards = config.shards;
    if shards == 0 || shard_id >= shards {
        return Err(proc_err(format!(
            "worker slot {shard_id}/{shards} is out of range"
        )));
    }
    let metrics = config.stream.metrics.clone();
    let (mut writer, mut reader): (FrameWriter, FrameReaderHalf) = match conn {
        WorkerConn::Socket(path) => {
            let stream = UnixStream::connect(&path)
                .map_err(|e| proc_err(format!("connecting {}: {e}", path.display())))?;
            let read_half = stream
                .try_clone()
                .map_err(|e| proc_err(format!("socket clone: {e}")))?;
            (
                FrameWriter {
                    inner: Box::new(stream),
                },
                FrameReaderHalf::new(Box::new(read_half)),
            )
        }
        WorkerConn::Stdio => (
            FrameWriter {
                inner: Box::new(io::stdout()),
            },
            FrameReaderHalf::new(Box::new(io::stdin())),
        ),
    };

    // Lead with the hello; the router answers with the resume offer.
    writer
        .send(&HandshakeFrame::new(shard_id as u32, shards as u32, None).encode())
        .map_err(|e| proc_err(format!("sending hello: {e}")))?;
    let offer = match reader.next_frame() {
        Ok(Some(ProcFrame::Handshake(h))) => h,
        Ok(Some(f)) => {
            return Err(proc_err(format!(
                "expected the router's handshake, got {} frame",
                f.label()
            )))
        }
        Ok(None) => return Err(proc_err("router hung up before the handshake".to_string())),
        Err(e) => return Err(proc_err(format!("handshake: {e}"))),
    };
    if offer.shard as usize != shard_id || offer.shards as usize != shards {
        return Err(proc_err(format!(
            "router offer addresses slot {}/{} but this worker is {shard_id}/{shards}",
            offer.shard, offer.shards
        )));
    }

    // Resume: load this shard's state at the offered epoch from the
    // shared store, with the same identity checks as in-process.
    let campaigns = std::sync::Arc::clone(&config.stream.campaigns);
    let (exports, residue) = match offer.resume_epoch {
        Some(epoch) => {
            let store = store.ok_or_else(|| {
                proc_err(format!(
                    "router offered resume epoch {epoch} but this worker has no store \
                     (--checkpoint-dir mismatch between router and worker)"
                ))
            })?;
            let bytes = store
                .load(shard_id as u32, epoch)
                .map_err(|e| CoreError::Checkpoint(format!("checkpoint store: {e}")))?
                .ok_or_else(|| {
                    CoreError::Checkpoint(format!(
                        "shard {shard_id} epoch {epoch} vanished from the store"
                    ))
                })?;
            let ckpt = SensorCheckpoint::decode(&bytes)?;
            if ckpt.shard_id != shard_id as u32 || ckpt.epoch != epoch {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint identity mismatch: file for shard {shard_id} epoch {epoch} \
                     claims shard {} epoch {}",
                    ckpt.shard_id, ckpt.epoch
                )));
            }
            if ckpt.shard_count != shards as u32 {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint was taken with {} shards but this group has {shards}: run \
                     `repro reshard --checkpoint-dir <dir> --to-shards {shards}` to \
                     repartition the cut first",
                    ckpt.shard_count
                )));
            }
            if ckpt.campaign_names() != campaigns.names() {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint was taken for campaigns {:?} but this worker senses {:?} \
                     (--campaigns mismatch between router and worker)",
                    ckpt.campaign_names(),
                    campaigns.names()
                )));
            }
            let mut exports = Vec::with_capacity(1 + ckpt.extra_campaigns.len());
            exports.push(ckpt.export);
            exports.extend(ckpt.extra_campaigns.into_iter().map(|c| c.export));
            (exports, ckpt.parked)
        }
        None => (vec![SensorExport::default(); campaigns.len()], Vec::new()),
    };

    let profile_of = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.clone())
    };
    let profile_ref = |id: UserId| {
        sim.users()
            .get(id.0 as usize)
            .map(|u| u.profile_location.as_str())
    };
    let mut span = metrics.stage("stream_shard_worker");
    // Sensor `i` owns campaign `i` (primary first), mirroring the
    // in-process shard worker.
    let mut sensors: Vec<IncrementalSensor<'_>> = campaigns
        .campaigns()
        .iter()
        .zip(exports)
        .map(|(c, export)| {
            IncrementalSensor::restore_with_extractor(
                geocoder,
                profile_of,
                export,
                c.extractor().clone(),
            )
        })
        .collect();
    let mut admission = GeoAdmission {
        service,
        profile_of: Box::new(profile_ref),
        policy: config.stream.geo_retry.for_consumer(shard_id as u64),
        park: VecDeque::from(residue),
        park_capacity: config.stream.park_capacity,
        peak_depth: 0,
        clock: VirtualClock::new(),
        metrics: metrics.clone(),
        dead: Vec::new(),
    };
    let ckpt_bytes = metrics.counter("checkpoint_bytes_total");
    let ckpt_written = metrics.counter("checkpoints_written_total");
    let ingested = metrics.counter("sensor_ingested_total");
    let single = campaigns.len() == 1;
    let mut admitted = 0u64;
    let mut out: Vec<Tweet> = Vec::new();
    let mut routed: Vec<Vec<Tweet>> = vec![Vec::new(); campaigns.len()];
    // Admitted tweets go to every campaign whose matcher accepts them;
    // membership is recomputed from the text, never shipped.
    let mut ingest_admitted = |out: &mut Vec<Tweet>, sensors: &mut Vec<IncrementalSensor<'_>>| {
        if single {
            ingested.add(sensors[0].ingest_batch(out));
            out.clear();
            return;
        }
        for buf in &mut routed {
            buf.clear();
        }
        for tweet in out.drain(..) {
            let mask = campaigns.mask_of(&tweet.text);
            for (i, buf) in routed.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    buf.push(tweet.clone());
                }
            }
        }
        ingested.add(sensors[0].ingest_batch(&routed[0]));
        for (s, buf) in sensors[1..].iter_mut().zip(&routed[1..]) {
            s.ingest_batch(buf);
        }
    };
    let mut n = 0u64;
    let mut last_cut: (u64, Option<u64>) = (0, None);
    loop {
        match reader.next_frame() {
            Ok(Some(ProcFrame::Batch(batch))) => {
                n += batch.len() as u64;
                out.clear();
                for tweet in batch {
                    // Primary-class traffic only through the fallible
                    // gate — extra tenants must not shift the service's
                    // call schedule or displace parked primary tweets
                    // (see stream_consumer's geo stage / docs/CAMPAIGNS.md).
                    if single || campaigns.primary().matches(&tweet.text) {
                        admission.admit(tweet, &mut out);
                    } else {
                        out.push(tweet);
                    }
                    admitted += 1;
                    if config.die_after.is_some_and(|m| admitted >= m) {
                        // The simulated crash: no checkpoint, no
                        // report, no destructors — the supervisor sees
                        // a plain dead process.
                        std::process::exit(DIE_EXIT_CODE);
                    }
                }
                ingest_admitted(&mut out, &mut sensors);
            }
            Ok(Some(ProcFrame::Marker(marker))) => {
                last_cut = (marker.epoch, marker.high_water);
                let Some(store) = store else { continue };
                let ckpt = SensorCheckpoint {
                    shard_id: shard_id as u32,
                    shard_count: shards as u32,
                    epoch: marker.epoch,
                    router_high_water: marker.high_water.map(TweetId),
                    export: sensors[0].export(),
                    parked: admission.park.iter().cloned().collect(),
                    campaign: campaigns.primary().name().to_string(),
                    extra_campaigns: campaigns
                        .extras()
                        .iter()
                        .zip(&sensors[1..])
                        .map(|(c, s)| CampaignSection {
                            name: c.name().to_string(),
                            export: s.export(),
                        })
                        .collect(),
                };
                let bytes = ckpt.encode();
                store
                    .save(shard_id as u32, marker.epoch, &bytes)
                    .map_err(|e| {
                        CoreError::Checkpoint(format!(
                            "saving shard {shard_id} epoch {}: {e}",
                            marker.epoch
                        ))
                    })?;
                ckpt_bytes.add(bytes.len() as u64);
                ckpt_written.incr();
                // Ack only after the save returned: durability is what
                // lets the router trim its retained replay log.
                writer
                    .send(
                        &ControlFrame::Ack {
                            epoch: marker.epoch,
                        }
                        .encode(),
                    )
                    .map_err(|e| proc_err(format!("sending ack: {e}")))?;
            }
            Ok(Some(ProcFrame::Control(ControlFrame::EndOfStream))) => break,
            Ok(Some(f)) => {
                return Err(proc_err(format!(
                    "unexpected {} frame mid-stream",
                    f.label()
                )))
            }
            Ok(None) => {
                return Err(proc_err(
                    "router hung up mid-stream (no EndOfStream)".to_string(),
                ))
            }
            Err(e) => return Err(proc_err(format!("reading stream: {e}"))),
        }
    }

    // End of stream: recovery-sized drain, then abandon — exactly the
    // in-process worker's ending.
    out.clear();
    admission.drain(config.stream.final_drain_attempts, &mut out);
    ingest_admitted(&mut out, &mut sensors);
    let parked_at_end = admission.abandon_leftovers();
    let gap = metrics.counter("stream_gap_tweets_total");
    gap.add(parked_at_end);
    metrics
        .counter("sensor_duplicates_ignored_total")
        .add(sensors[0].duplicates_ignored());
    span.set_items(n);
    span.finish();

    let mut dead = DeadLetterLog::new();
    for d in admission.dead.drain(..) {
        dead.push(d);
    }
    let report = WorkerStreamReport {
        ckpt: SensorCheckpoint {
            shard_id: shard_id as u32,
            shard_count: shards as u32,
            epoch: last_cut.0,
            router_high_water: last_cut.1.map(TweetId),
            export: sensors[0].export(),
            parked: Vec::new(),
            campaign: campaigns.primary().name().to_string(),
            extra_campaigns: campaigns
                .extras()
                .iter()
                .zip(&sensors[1..])
                .map(|(c, s)| CampaignSection {
                    name: c.name().to_string(),
                    export: s.export(),
                })
                .collect(),
        },
        dead,
        parked_at_end,
        gap_tweets: gap.value(),
        duplicates: sensors[0].duplicates_ignored(),
    };
    for chunk in report_chunks(&report.encode()) {
        writer
            .send(&ControlFrame::Report { payload: chunk }.encode())
            .map_err(|e| proc_err(format!("sending final report: {e}")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::MemCheckpointStore;
    use crate::stream_consumer::StreamPipelineConfig;
    use donorpulse_twitter::GeneratorConfig;

    fn sim() -> TwitterSimulation {
        let mut cfg = GeneratorConfig::paper_scaled(0.01);
        cfg.seed = 808;
        TwitterSimulation::generate(cfg).expect("sim")
    }

    #[test]
    fn report_roundtrips() {
        let mut dead = DeadLetterLog::new();
        dead.push(crate::checkpoint::DeadLetter::Frame(vec![1, 2, 3]));
        let report = WorkerStreamReport {
            ckpt: SensorCheckpoint {
                shard_id: 1,
                shard_count: 4,
                epoch: 9,
                router_high_water: Some(TweetId(77)),
                export: SensorExport::default(),
                parked: Vec::new(),
                campaign: crate::campaign::DEFAULT_CAMPAIGN.to_string(),
                extra_campaigns: vec![CampaignSection {
                    name: "blood-drive".into(),
                    export: SensorExport::default(),
                }],
            },
            dead,
            parked_at_end: 3,
            gap_tweets: 5,
            duplicates: 2,
        };
        let bytes = report.encode();
        let back = WorkerStreamReport::decode(&bytes).expect("roundtrip");
        assert_eq!(back.ckpt.shard_id, 1);
        assert_eq!(back.ckpt.epoch, 9);
        assert_eq!(back.ckpt.router_high_water, Some(TweetId(77)));
        // The embedded checkpoint carries the campaign roster, so the
        // report codec is multi-tenant for free.
        assert_eq!(
            back.ckpt.campaign_names(),
            vec![crate::campaign::DEFAULT_CAMPAIGN, "blood-drive"]
        );
        assert_eq!(back.dead.len(), 1);
        assert_eq!(
            (back.parked_at_end, back.gap_tweets, back.duplicates),
            (3, 5, 2)
        );
        // Truncations and trailing garbage are refused, never
        // misread.
        for cut in 0..bytes.len() {
            assert!(
                WorkerStreamReport::decode(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(WorkerStreamReport::decode(&long).is_err());

        // The chunked transport reassembles to the same report even
        // when the chunks arrive one byte at a time, and refuses
        // overruns past the declared length.
        let mut assembly = ReportAssembly::default();
        let mut out = None;
        for b in report_chunks(&bytes).concat() {
            assert!(out.is_none(), "report completed before the last byte");
            out = assembly.push(&[b]).expect("chunk");
        }
        let back = out.expect("reassembled");
        assert_eq!(back.ckpt.epoch, 9);
        assert_eq!(back.dead.len(), 1);
        let mut over = ReportAssembly::default();
        let mut prefixed = report_chunks(&bytes).concat();
        prefixed.push(0);
        assert!(over.push(&prefixed).is_err(), "overrun must be refused");
    }

    #[test]
    fn reader_handles_clean_eof_half_open_and_garbage() {
        use std::net::Shutdown;
        // Clean close at a frame boundary -> Ok(None).
        let (a, b) = UnixStream::pair().expect("pair");
        let mut reader = FrameReaderHalf::new(Box::new(a));
        let mut tx = FrameWriter { inner: Box::new(b) };
        tx.send(
            &MarkerFrame {
                epoch: 4,
                high_water: Some(10),
            }
            .encode(),
        )
        .unwrap();
        drop(tx);
        match reader.next_frame().expect("frame") {
            Some(ProcFrame::Marker(m)) => assert_eq!((m.epoch, m.high_water), (4, Some(10))),
            other => panic!("expected marker, got {:?}", other.map(|f| f.label())),
        }
        assert!(reader.next_frame().expect("clean eof").is_none());

        // Half-open: the peer dies mid-frame -> UnexpectedEof, never a
        // partial decode.
        let (a, b) = UnixStream::pair().expect("pair");
        let mut reader = FrameReaderHalf::new(Box::new(a));
        let frame = MarkerFrame {
            epoch: 5,
            high_water: None,
        }
        .encode();
        (&b).write_all(&frame[..frame.len() / 2]).unwrap();
        b.shutdown(Shutdown::Both).unwrap();
        let err = reader.next_frame().expect_err("mid-frame EOF");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // Garbage bytes -> InvalidData (fatal, no resync on the
        // trusted intra-host wire).
        let (a, b) = UnixStream::pair().expect("pair");
        let mut reader = FrameReaderHalf::new(Box::new(a));
        (&b).write_all(b"not a frame at all").unwrap();
        drop(b);
        let err = reader.next_frame().expect_err("garbage");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn bit_flipped_marker_never_reaches_the_worker_loop() {
        // The worker-side guarantee behind "a damaged marker never
        // commits a cut": every single-bit corruption of a marker
        // frame is a connection error, so the save-then-ack path is
        // unreachable.
        let frame = MarkerFrame {
            epoch: 12,
            high_water: Some(99_999),
        }
        .encode();
        for bit in 0..frame.len() * 8 {
            let mut damaged = frame.clone();
            damaged[bit / 8] ^= 1 << (bit % 8);
            let (a, b) = UnixStream::pair().expect("pair");
            let mut reader = FrameReaderHalf::new(Box::new(a));
            (&b).write_all(&damaged).unwrap();
            drop(b);
            match reader.next_frame() {
                Ok(Some(ProcFrame::Marker(_))) => {
                    panic!("bit {bit}: damaged marker decoded as a marker")
                }
                Ok(Some(_)) | Ok(None) | Err(_) => {}
            }
        }
    }

    /// Drives `run_shard_worker` in-thread with a hand-rolled router
    /// side over the socket transport: handshake, a batch, a marker
    /// (checking the ack and the durable cut), end of stream, report.
    #[test]
    fn worker_end_to_end_over_a_socket() {
        let sim = sim();
        let geocoder = Geocoder::new();
        let store = MemCheckpointStore::new();
        let hub = SocketHub::bind().expect("bind");

        let tweets: Vec<Tweet> = sim
            .stream()
            .filter(|t| route_shard(t.user, 2) == 0)
            .take(40)
            .collect();
        assert!(!tweets.is_empty());

        thread::scope(|scope| {
            let path = hub.path.clone();
            let worker = scope.spawn({
                let sim = &sim;
                let geocoder = &geocoder;
                let store = &store;
                move || {
                    run_shard_worker(
                        sim,
                        geocoder,
                        geocoder,
                        Some(store as &dyn CheckpointStore),
                        ShardWorkerConfig {
                            shard: 0,
                            shards: 2,
                            stream: StreamPipelineConfig::default(),
                            die_after: None,
                        },
                        WorkerConn::Socket(path),
                    )
                }
            });

            let (conn, _) = hub.listener.accept().expect("worker dials in");
            let read_half = conn.try_clone().expect("clone");
            let mut reader = FrameReaderHalf::new(Box::new(read_half));
            let mut writer = FrameWriter {
                inner: Box::new(conn),
            };

            // Hello, then offer.
            match reader.next_frame().expect("hello").expect("frame") {
                ProcFrame::Handshake(h) => {
                    assert_eq!((h.shard, h.shards, h.resume_epoch), (0, 2, None))
                }
                f => panic!("expected hello, got {}", f.label()),
            }
            writer
                .send(&HandshakeFrame::new(0, 2, None).encode())
                .unwrap();

            // A batch, then a cut.
            writer.send(&BatchFrame::encode(&tweets)).unwrap();
            writer
                .send(
                    &MarkerFrame {
                        epoch: 1,
                        high_water: tweets.last().map(|t| t.id.0),
                    }
                    .encode(),
                )
                .unwrap();
            match reader.next_frame().expect("ack").expect("frame") {
                ProcFrame::Control(ControlFrame::Ack { epoch }) => assert_eq!(epoch, 1),
                f => panic!("expected ack, got {}", f.label()),
            }
            // The ack means the cut is durable *now*.
            let saved = store.load(0, 1).expect("store").expect("epoch 1 present");
            let ckpt = SensorCheckpoint::decode(&saved).expect("decodes");
            assert_eq!((ckpt.shard_id, ckpt.shard_count, ckpt.epoch), (0, 2, 1));

            // End of stream -> final report (chunked: reassemble until
            // the declared length is complete).
            writer.send(&ControlFrame::EndOfStream.encode()).unwrap();
            let mut assembly = ReportAssembly::default();
            let report = loop {
                match reader.next_frame().expect("report").expect("frame") {
                    ProcFrame::Control(ControlFrame::Report { payload }) => {
                        if let Some(r) = assembly.push(&payload).expect("report decodes") {
                            break r;
                        }
                    }
                    f => panic!("expected report, got {}", f.label()),
                }
            };
            assert_eq!(report.ckpt.shard_id, 0);
            assert!(report.ckpt.export.tweet_count() > 0, "sensor saw the batch");
            assert!(reader.next_frame().expect("clean close").is_none());

            worker.join().expect("worker thread").expect("worker ok");
        });
    }
}
