//! Property-based tests for the paper's core algebra: Û construction,
//! membership building, Eq. 3 aggregation, and relative risk.

use donorpulse_core::aggregate::Aggregation;
use donorpulse_core::membership::{by_dominant_organ, by_region};
use donorpulse_core::relative_risk::RiskMap;
use donorpulse_core::AttentionMatrix;
use donorpulse_geo::UsState;
use donorpulse_text::extract::MentionCounts;
use donorpulse_text::Organ;
use donorpulse_twitter::UserId;
use proptest::prelude::*;
use std::collections::HashMap;

/// Strategy: a random population of users with nonzero mention vectors
/// and optional state assignments.
fn population(
    max_users: usize,
) -> impl Strategy<Value = (HashMap<UserId, MentionCounts>, HashMap<UserId, UsState>)> {
    prop::collection::vec(
        (
            prop::collection::vec(0u32..6, 6),
            prop::option::of(0usize..UsState::COUNT),
        ),
        1..max_users,
    )
    .prop_map(|users| {
        let mut mentions = HashMap::new();
        let mut states = HashMap::new();
        for (i, (counts, state)) in users.into_iter().enumerate() {
            let mut mc = MentionCounts::new();
            for (oi, &c) in counts.iter().enumerate() {
                mc.add(Organ::from_index(oi).unwrap(), c);
            }
            if mc.is_empty() {
                mc.add(Organ::Heart, 1); // keep every user usable
            }
            mentions.insert(UserId(i as u64), mc);
            if let Some(s) = state {
                states.insert(UserId(i as u64), UsState::from_index(s).unwrap());
            }
        }
        (mentions, states)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u_hat_rows_are_stochastic((mentions, _) in population(40)) {
        let am = AttentionMatrix::from_mentions(&mentions).unwrap();
        prop_assert_eq!(am.user_count(), mentions.len());
        for i in 0..am.user_count() {
            let s: f64 = am.matrix().row(i).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-9);
            prop_assert!(am.matrix().row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        // Users are sorted ascending.
        for pair in am.users().windows(2) {
            prop_assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn organ_membership_partitions_users((mentions, _) in population(40)) {
        let am = AttentionMatrix::from_mentions(&mentions).unwrap();
        let m = by_dominant_organ(&am).unwrap();
        // Every row has exactly one 1; group sizes sum to m.
        prop_assert_eq!(m.sizes.iter().sum::<usize>(), am.user_count());
        for i in 0..am.user_count() {
            let s: f64 = m.matrix.row(i).iter().sum();
            prop_assert_eq!(s, 1.0);
        }
        // No empty groups.
        prop_assert!(m.sizes.iter().all(|&s| s > 0));
        // The assigned organ always attains the row maximum of Û.
        for i in 0..am.user_count() {
            let col = m.matrix.row(i).iter().position(|&v| v == 1.0).unwrap();
            let organ = m.groups[col];
            let row = am.matrix().row(i);
            let max = row.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(row[organ.index()] == max);
        }
    }

    #[test]
    fn aggregation_rows_are_group_means((mentions, _) in population(30)) {
        let am = AttentionMatrix::from_mentions(&mentions).unwrap();
        let m = by_dominant_organ(&am).unwrap();
        let k = Aggregation::compute(&m, am.matrix()).unwrap();
        // K rows are stochastic.
        for g in 0..k.matrix.rows() {
            let s: f64 = k.matrix.row(g).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-8, "row {} sums to {}", g, s);
        }
        // Against a direct group-mean computation.
        for (g, &_organ) in k.groups.iter().enumerate() {
            let members: Vec<usize> = (0..am.user_count())
                .filter(|&i| m.matrix.get(i, g) == 1.0)
                .collect();
            prop_assert_eq!(members.len(), k.sizes[g]);
            for j in 0..Organ::COUNT {
                let mean: f64 = members
                    .iter()
                    .map(|&i| am.matrix().get(i, j))
                    .sum::<f64>()
                    / members.len() as f64;
                prop_assert!((k.matrix.get(g, j) - mean).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn region_aggregation_consistent((mentions, states) in population(40)) {
        let am = AttentionMatrix::from_mentions(&mentions).unwrap();
        match by_region(&am, &states) {
            Ok((m, rows)) => {
                prop_assert_eq!(rows.len(), m.matrix.rows());
                prop_assert_eq!(m.sizes.iter().sum::<usize>(), rows.len());
                // Groups listed in canonical state order.
                for pair in m.groups.windows(2) {
                    prop_assert!(pair[0] < pair[1]);
                }
            }
            Err(_) => prop_assert!(states.is_empty() ||
                !am.users().iter().any(|id| states.contains_key(id))),
        }
    }

    #[test]
    fn risk_map_internally_consistent((mentions, states) in population(60)) {
        let am = AttentionMatrix::from_mentions(&mentions).unwrap();
        if states.is_empty() || !am.users().iter().any(|id| states.contains_key(id)) {
            prop_assert!(RiskMap::compute(&am, &states, 0.05).is_err());
            return Ok(());
        }
        let rm = RiskMap::compute(&am, &states, 0.05).unwrap();
        let located = am.users().iter().filter(|id| states.contains_key(id)).count() as u64;
        for e in &rm.entries {
            prop_assert!(e.cases_in <= e.total_in);
            prop_assert!(e.total_in <= located);
            if let Some(r) = e.risk {
                prop_assert!(r.rr > 0.0);
                prop_assert!(r.ci_low <= r.rr && r.rr <= r.ci_high);
            }
        }
        // Per state: totals agree across organs.
        for w in rm.entries.windows(2) {
            if w[0].state == w[1].state {
                prop_assert_eq!(w[0].total_in, w[1].total_in);
            }
        }
    }
}
